"""Values: the SSA object model of the IR.

Everything an instruction can consume is a :class:`Value`.  Values track
their users so passes can query use-def chains and call
:meth:`Value.replace_all_uses_with` -- the primitive nearly every
transformation is built from.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.llvmir.types import (
    ArrayType,
    DoubleType,
    IntType,
    IRType,
    PointerType,
    ptr,
    i8,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.llvmir.instructions import Instruction
    from repro.llvmir.function import Function


class Value:
    """Base class of the SSA value hierarchy."""

    __slots__ = ("type", "name", "_users")

    def __init__(self, type_: IRType, name: Optional[str] = None):
        self.type = type_
        self.name = name
        # Multiset of using instructions: an instruction that uses the same
        # value twice (e.g. ``add %x, %x``) appears with count 2.
        self._users: Dict["Instruction", int] = {}

    # -- use-def maintenance ----------------------------------------------
    def add_user(self, inst: "Instruction") -> None:
        self._users[inst] = self._users.get(inst, 0) + 1

    def remove_user(self, inst: "Instruction") -> None:
        count = self._users.get(inst, 0)
        if count <= 1:
            self._users.pop(inst, None)
        else:
            self._users[inst] = count - 1

    @property
    def users(self) -> List["Instruction"]:
        return list(self._users)

    @property
    def num_uses(self) -> int:
        return sum(self._users.values())

    def is_used(self) -> bool:
        return bool(self._users)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to ``new``."""
        if new is self:
            return
        for inst in list(self._users):
            inst.replace_operand(self, new)

    # -- printing helpers ---------------------------------------------------
    def ref(self) -> str:
        """How this value is written when used as an operand."""
        if self.name is None:
            raise ValueError(
                f"unnamed {type(self).__name__} of type {self.type} used as "
                "operand; assign names first"
            )
        return f"%{self.name}"

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"

    def __repr__(self) -> str:
        try:
            r = self.ref()
        except ValueError:
            r = "<unnamed>"
        return f"<{type(self).__name__} {self.type} {r}>"


class Constant(Value):
    """Base class for constants.  Constants do not track users by identity
    sharing semantics (two equal ConstantInts may or may not be the same
    object), so passes must not rely on constant use lists being complete;
    they are maintained best-effort for symmetry."""

    __slots__ = ()

    def is_zero(self) -> bool:
        return False


class ConstantInt(Constant):
    __slots__ = ("value",)

    def __init__(self, type_: IntType, value: int):
        if not isinstance(type_, IntType):
            raise TypeError(f"ConstantInt requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = type_.wrap(int(value))

    def ref(self) -> str:
        if self.type == IntType(1):
            return "true" if self.value else "false"
        return str(self.value)

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"

    def is_zero(self) -> bool:
        return self.value == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


def _format_double(value: float) -> str:
    """Format a double the way LLVM does: decimal when exact, hex otherwise."""
    if math.isnan(value) or math.isinf(value):
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        return f"0x{bits:016X}"
    text = repr(float(value))
    if float(text) == value and ("e" in text or "." in text):
        # LLVM prints e.g. 1.000000e+00; our round-trip only requires that
        # the printed text re-parses to the identical bit pattern.
        return f"{value:e}" if float(f"{value:e}") == value else _hex_double(value)
    return _hex_double(value)


def _hex_double(value: float) -> str:
    bits = struct.unpack("<Q", struct.pack("<d", value))[0]
    return f"0x{bits:016X}"


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, type_: DoubleType, value: float):
        super().__init__(type_)
        self.value = float(value)

    def ref(self) -> str:
        return _format_double(self.value)

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"

    def is_zero(self) -> bool:
        return self.value == 0.0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and struct.pack("<d", other.value) == struct.pack("<d", self.value)
        )

    def __hash__(self) -> int:
        return hash(("cfloat", struct.pack("<d", self.value)))


class ConstantNull(Constant):
    """``null`` pointer constant -- QIR's static qubit 0 / result 0."""

    __slots__ = ()

    def __init__(self, type_: Optional[PointerType] = None):
        super().__init__(type_ or ptr)

    def ref(self) -> str:
        return "null"

    def typed_ref(self) -> str:
        return f"{self.type} null"

    def is_zero(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantNull)

    def __hash__(self) -> int:
        return hash("cnull")


class ConstantUndef(Constant):
    __slots__ = ()

    def ref(self) -> str:
        return "undef"

    def typed_ref(self) -> str:
        return f"{self.type} undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantUndef) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("cundef", self.type))


class ConstantPointerInt(Constant):
    """The constant expression ``inttoptr (i64 N to ptr)``.

    This is how QIR spells *static qubit addresses* (paper, Example 6 and
    Section IV-A).  It is a genuine LLVM constant expression but common
    enough in QIR that it gets a dedicated node, which also lets the
    runtime map it straight to a qubit/result id without evaluation.
    """

    __slots__ = ("address", "source_type")

    def __init__(self, address: int, source_type: Optional[IntType] = None):
        super().__init__(ptr)
        self.address = int(address)
        from repro.llvmir.types import i64 as _i64

        self.source_type = source_type or _i64

    def ref(self) -> str:
        return f"inttoptr ({self.source_type} {self.address} to ptr)"

    def typed_ref(self) -> str:
        return f"ptr {self.ref()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantPointerInt)
            and other.address == self.address
            and other.source_type == self.source_type
        )

    def __hash__(self) -> int:
        return hash(("cptrint", self.address, self.source_type))


class ConstantString(Constant):
    """``c"...\\00"`` array-of-i8 initialiser (QIR output labels)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        super().__init__(ArrayType(len(data), i8))
        self.data = bytes(data)

    @classmethod
    def from_text(cls, text: str, null_terminate: bool = True) -> "ConstantString":
        data = text.encode("utf-8")
        if null_terminate:
            data += b"\x00"
        return cls(data)

    def text(self) -> str:
        return self.data.rstrip(b"\x00").decode("utf-8", errors="replace")

    def ref(self) -> str:
        out = []
        for b in self.data:
            ch = chr(b)
            if ch in ('"', "\\"):
                out.append(f"\\{b:02X}")
            elif 0x20 <= b < 0x7F:
                out.append(ch)
            else:
                out.append(f"\\{b:02X}")
        return 'c"' + "".join(out) + '"'

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantString) and other.data == self.data

    def __hash__(self) -> int:
        return hash(("cstr", self.data))


class ConstantArray(Constant):
    __slots__ = ("elements",)

    def __init__(self, element_type: IRType, elements: Sequence[Constant]):
        super().__init__(ArrayType(len(elements), element_type))
        self.elements = tuple(elements)

    def ref(self) -> str:
        inner = ", ".join(e.typed_ref() for e in self.elements)
        return f"[{inner}]"

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"


class ConstantExpr(Constant):
    """General constant expression, e.g.
    ``getelementptr inbounds ([3 x i8], ptr @0, i32 0, i32 0)``.

    Only the handful of opcodes QIR modules contain are supported:
    ``getelementptr``, ``inttoptr``, ``ptrtoint``, ``bitcast``.
    """

    __slots__ = ("opcode", "operands", "extra")

    def __init__(
        self,
        opcode: str,
        type_: IRType,
        operands: Sequence[Value],
        extra: Optional[Tuple] = None,
    ):
        super().__init__(type_)
        self.opcode = opcode
        self.operands = tuple(operands)
        self.extra = extra or ()

    def ref(self) -> str:
        if self.opcode == "getelementptr":
            source_type = self.extra[0]
            ops = ", ".join(o.typed_ref() for o in self.operands)
            return f"getelementptr inbounds ({source_type}, {ops})"
        if self.opcode in ("inttoptr", "ptrtoint", "bitcast"):
            (op,) = self.operands
            return f"{self.opcode} ({op.typed_ref()} to {self.type})"
        raise ValueError(f"unprintable constant expression: {self.opcode}")

    def typed_ref(self) -> str:
        return f"{self.type} {self.ref()}"


class GlobalVariable(Value):
    """Module-level global; QIR uses these for label strings."""

    __slots__ = ("initializer", "is_constant", "linkage")

    def __init__(
        self,
        name: str,
        initializer: Optional[Constant] = None,
        is_constant: bool = True,
        linkage: str = "internal",
    ):
        super().__init__(ptr, name)
        self.initializer = initializer
        self.is_constant = is_constant
        self.linkage = linkage

    def ref(self) -> str:
        return f"@{_quote_name(self.name or '')}"

    def typed_ref(self) -> str:
        return f"ptr {self.ref()}"

    @property
    def value_type(self) -> Optional[IRType]:
        return self.initializer.type if self.initializer is not None else None


class Argument(Value):
    """Formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type_: IRType, name: str, parent: "Function", index: int):
        super().__init__(type_, name)
        self.parent = parent
        self.index = index


# ---------------------------------------------------------------------------
# Metadata (just enough for QIR module flags).
# ---------------------------------------------------------------------------
class Metadata:
    __slots__ = ()


class MetadataString(Metadata):
    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def ref(self) -> str:
        escaped = self.text.replace("\\", "\\5C").replace('"', "\\22")
        return f'!"{escaped}"'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MetadataString) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("mdstr", self.text))


class MetadataNode(Metadata):
    """``!{ ... }`` tuple node; elements are Metadata or constant Values."""

    __slots__ = ("elements", "index")

    def __init__(self, elements: Sequence[object]):
        self.elements = tuple(elements)
        self.index: Optional[int] = None  # assigned at print time

    def element_refs(self) -> Iterable[str]:
        for el in self.elements:
            if isinstance(el, MetadataString):
                yield el.ref()
            elif isinstance(el, MetadataNode):
                yield f"!{el.index}"
            elif isinstance(el, Value):
                yield el.typed_ref()
            else:
                raise TypeError(f"bad metadata element: {el!r}")


def _quote_name(name: str) -> str:
    """Quote an identifier if it contains characters outside [A-Za-z0-9._$-]."""
    if name and all(c.isalnum() or c in "._$-" for c in name):
        return name
    return '"' + name.replace("\\", "\\5C").replace('"', "\\22") + '"'
