"""Recursive-descent parser for the ``.ll`` subset QIR programs use.

Supports both modern opaque-pointer syntax (``ptr``) and the legacy typed
pointer syntax used in the original QIR specification (``%Qubit*``,
``%Array*``); legacy pointers are normalised to opaque ``ptr`` as the paper's
footnote 1 does.

Forward references (phi nodes or branches to later definitions) are handled
with placeholder values patched at end-of-function.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BINARY_OPCODES,
    BinaryInst,
    BranchInst,
    CallInst,
    CAST_OPCODES,
    CastInst,
    CondBranchInst,
    FCMP_PREDICATES,
    FCmpInst,
    GetElementPtrInst,
    ICMP_PREDICATES,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
    WRAP_FLAGS,
)
from repro.llvmir.lexer import Lexer, Token
from repro.llvmir.module import AttributeGroup, Module
from repro.llvmir.types import (
    ArrayType,
    DoubleType,
    FunctionType,
    IntType,
    IRType,
    LabelType,
    PointerType,
    StructType,
    VoidType,
    double,
    label,
    ptr,
    void,
)
from repro.llvmir.values import (
    ConstantArray,
    ConstantExpr,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    ConstantString,
    ConstantUndef,
    GlobalVariable,
    MetadataNode,
    MetadataString,
    Value,
)


class ParseError(ValueError):
    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column} (near {token.text!r})"
        super().__init__(message)


# Parameter/return attributes that may decorate call arguments; QIR emits
# ``writeonly`` on result pointers (paper, Example 6).
_PARAM_ATTRS = {
    "writeonly", "readonly", "readnone", "nocapture", "noalias", "nonnull",
    "signext", "zeroext", "inreg", "returned", "noundef", "immarg", "captures",
}

_FAST_MATH_FLAGS = {"fast", "nnan", "ninf", "nsz", "arcp", "contract", "afn", "reassoc"}

_LINKAGES = {
    "private", "internal", "external", "linkonce", "linkonce_odr", "weak",
    "weak_odr", "common", "appending", "extern_weak", "available_externally",
}


class _Forward(Value):
    """Placeholder for a not-yet-defined local value."""

    __slots__ = ("ref_name",)

    def __init__(self, type_: IRType, ref_name: str):
        super().__init__(type_, ref_name)
        self.ref_name = ref_name


class Parser:
    def __init__(
        self,
        source: str,
        module_name: str = "module",
        tokens: Optional[List[Token]] = None,
    ):
        # A caller that already lexed (e.g. to time lexing separately, see
        # parse_assembly's observer path) can hand the token stream in.
        self.tokens = tokens if tokens is not None else Lexer(source).tokenize()
        self.index = 0
        self.module = Module(module_name)
        # Metadata bookkeeping: numbered nodes may be referenced before they
        # are defined, so collect raw element lists first.
        self._md_nodes: Dict[str, MetadataNode] = {}
        self._md_named: Dict[str, List[str]] = {}
        self._pending_fn_groups: List[Tuple[Function, int]] = []

    # -- token helpers ---------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind != "EOF":
            self.index += 1
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(f"expected {want}", tok)
        return self._next()

    def _accept_word(self, *words: str) -> Optional[str]:
        tok = self._peek()
        if tok.kind == "WORD" and tok.text in words:
            self._next()
            return tok.text
        return None

    # -- types ---------------------------------------------------------------
    def _looks_like_type(self) -> bool:
        tok = self._peek()
        if tok.kind == "LOCAL":
            # %Name could be a struct type only at positions where a type is
            # expected; callers use this in unambiguous contexts.
            return tok.text in self.module.struct_types
        if tok.kind == "PUNCT" and tok.text == "[":
            return True
        if tok.kind != "WORD":
            return False
        t = tok.text
        if t in ("void", "double", "float", "ptr", "label"):
            return True
        return len(t) > 1 and t[0] == "i" and t[1:].isdigit()

    def parse_type(self) -> IRType:
        tok = self._next()
        base: IRType
        if tok.kind == "WORD":
            text = tok.text
            if text == "void":
                base = void
            elif text == "double" or text == "float":
                base = double
            elif text == "ptr":
                base = ptr
            elif text == "label":
                base = label
            elif text.startswith("i") and text[1:].isdigit():
                base = IntType(int(text[1:]))
            else:
                raise ParseError(f"unknown type {text!r}", tok)
        elif tok.kind == "PUNCT" and tok.text == "[":
            count_tok = self._expect("INT")
            self._expect("WORD", "x")
            element = self.parse_type()
            self._expect("PUNCT", "]")
            base = ArrayType(int(count_tok.text), element)
        elif tok.kind == "LOCAL":
            struct = self.module.struct_types.get(tok.text)
            if struct is None:
                struct = StructType(tok.text, opaque=True)
                self.module.declare_struct(struct)
            base = struct
        else:
            raise ParseError("expected a type", tok)

        # Legacy typed pointers: any number of '*' suffixes collapse to ptr.
        stars = 0
        while self._accept("PUNCT", "*"):
            stars += 1
        if stars:
            hint = base.name if isinstance(base, StructType) else None
            return PointerType(hint)
        return base

    # -- values ---------------------------------------------------------------
    def _parse_int_constant(self, type_: IRType, tok: Token) -> ConstantInt:
        if not isinstance(type_, IntType):
            raise ParseError(f"integer literal with non-integer type {type_}", tok)
        return ConstantInt(type_, int(tok.text))

    def _parse_float_constant(self, type_: IRType, tok: Token) -> ConstantFloat:
        if not isinstance(type_, DoubleType):
            raise ParseError(f"float literal with non-float type {type_}", tok)
        text = tok.text
        if text.lower().startswith("0x") or (
            text.startswith("-0x") or text.startswith("-0X")
        ):
            bits = int(text, 16)
            value = struct.unpack("<d", struct.pack("<Q", bits))[0]
        else:
            value = float(text)
        return ConstantFloat(double, value)

    def parse_value(
        self, type_: IRType, locals_: Optional[Dict[str, Value]] = None
    ) -> Value:
        """Parse an operand of known type."""
        tok = self._peek()
        if tok.kind == "LOCAL":
            self._next()
            if locals_ is None:
                raise ParseError("local value in constant context", tok)
            value = locals_.get(tok.text)
            if value is None:
                value = _Forward(type_, tok.text)
                locals_[tok.text] = value
            return value
        if tok.kind == "GLOBAL":
            self._next()
            fn = self.module.get_function(tok.text)
            if fn is not None:
                return fn
            gv = self.module.get_global(tok.text)
            if gv is not None:
                return gv
            # forward global reference: create a placeholder global
            gv = GlobalVariable(tok.text, None)
            self.module.add_global(gv)
            return gv
        if tok.kind == "INT":
            self._next()
            if isinstance(type_, DoubleType):
                return ConstantFloat(double, float(tok.text))
            return self._parse_int_constant(type_, tok)
        if tok.kind == "FLOAT":
            self._next()
            return self._parse_float_constant(type_, tok)
        if tok.kind == "CSTRING":
            self._next()
            return ConstantString(tok.text.encode("latin-1"))
        if tok.kind == "WORD":
            if tok.text == "true":
                self._next()
                return ConstantInt(IntType(1), 1)
            if tok.text == "false":
                self._next()
                return ConstantInt(IntType(1), 0)
            if tok.text == "null":
                self._next()
                return ConstantNull(type_ if isinstance(type_, PointerType) else ptr)
            if tok.text == "undef" or tok.text == "poison":
                self._next()
                return ConstantUndef(type_)
            if tok.text == "zeroinitializer":
                self._next()
                return self._zero_constant(type_, tok)
            if tok.text == "inttoptr":
                return self._parse_inttoptr_expr()
            if tok.text == "ptrtoint":
                return self._parse_cast_expr("ptrtoint")
            if tok.text == "bitcast":
                return self._parse_cast_expr("bitcast")
            if tok.text == "getelementptr":
                return self._parse_gep_expr()
        if tok.kind == "PUNCT" and tok.text == "[":
            return self._parse_array_constant(type_, tok)
        raise ParseError(f"cannot parse value of type {type_}", tok)

    def _zero_constant(self, type_: IRType, tok: Token) -> Value:
        if isinstance(type_, IntType):
            return ConstantInt(type_, 0)
        if isinstance(type_, DoubleType):
            return ConstantFloat(double, 0.0)
        if isinstance(type_, PointerType):
            return ConstantNull(type_)
        if isinstance(type_, ArrayType) and type_.element == IntType(8):
            return ConstantString(b"\x00" * type_.count)
        raise ParseError(f"zeroinitializer unsupported for {type_}", tok)

    def _parse_array_constant(self, type_: IRType, tok: Token) -> ConstantArray:
        if not isinstance(type_, ArrayType):
            raise ParseError(f"array constant with non-array type {type_}", tok)
        self._expect("PUNCT", "[")
        elements = []
        if not self._accept("PUNCT", "]"):
            while True:
                el_type = self.parse_type()
                elements.append(self.parse_value(el_type))
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", "]")
        return ConstantArray(type_.element, elements)

    def _parse_inttoptr_expr(self) -> ConstantPointerInt:
        self._expect("WORD", "inttoptr")
        self._expect("PUNCT", "(")
        src_type = self.parse_type()
        if not isinstance(src_type, IntType):
            raise ParseError("inttoptr source must be integer", self._peek())
        value_tok = self._expect("INT")
        self._expect("WORD", "to")
        self.parse_type()  # destination pointer type
        self._expect("PUNCT", ")")
        return ConstantPointerInt(int(value_tok.text), src_type)

    def _parse_cast_expr(self, opcode: str) -> ConstantExpr:
        self._expect("WORD", opcode)
        self._expect("PUNCT", "(")
        src_type = self.parse_type()
        operand = self.parse_value(src_type)
        self._expect("WORD", "to")
        dest_type = self.parse_type()
        self._expect("PUNCT", ")")
        return ConstantExpr(opcode, dest_type, [operand])

    def _parse_gep_expr(self) -> ConstantExpr:
        self._expect("WORD", "getelementptr")
        self._accept_word("inbounds")
        self._expect("PUNCT", "(")
        source_type = self.parse_type()
        self._expect("PUNCT", ",")
        operands: List[Value] = []
        while True:
            op_type = self.parse_type()
            operands.append(self.parse_value(op_type))
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ")")
        return ConstantExpr("getelementptr", ptr, operands, extra=(source_type,))

    # -- top level ---------------------------------------------------------------
    def parse_module(self) -> Module:
        while True:
            tok = self._peek()
            if tok.kind == "EOF":
                break
            if tok.kind == "WORD":
                if tok.text == "define":
                    self._parse_define()
                    continue
                if tok.text == "declare":
                    self._parse_declare()
                    continue
                if tok.text == "attributes":
                    self._parse_attribute_group()
                    continue
                if tok.text == "source_filename":
                    self._next()
                    self._expect("PUNCT", "=")
                    self.module.source_filename = self._expect("STRING").text
                    continue
                if tok.text == "target":
                    self._next()
                    self._next()  # datalayout | triple
                    self._expect("PUNCT", "=")
                    self._expect("STRING")
                    continue
            if tok.kind == "LOCAL":
                self._parse_struct_decl()
                continue
            if tok.kind == "GLOBAL":
                self._parse_global()
                continue
            if tok.kind == "METADATA":
                self._parse_metadata_def()
                continue
            raise ParseError("unexpected top-level construct", tok)

        self._finalize_metadata()
        self._resolve_attribute_groups()
        return self.module

    def _parse_struct_decl(self) -> None:
        name_tok = self._expect("LOCAL")
        self._expect("PUNCT", "=")
        self._expect("WORD", "type")
        if self._accept_word("opaque"):
            self.module.declare_struct(StructType(name_tok.text, opaque=True))
            return
        self._expect("PUNCT", "{")
        fields: List[IRType] = []
        if not self._accept("PUNCT", "}"):
            while True:
                fields.append(self.parse_type())
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", "}")
        self.module.declare_struct(StructType(name_tok.text, fields))

    def _parse_global(self) -> None:
        name_tok = self._expect("GLOBAL")
        self._expect("PUNCT", "=")
        linkage = ""
        while True:
            word = self._peek()
            if word.kind == "WORD" and word.text in _LINKAGES:
                linkage = word.text
                self._next()
            elif word.kind == "WORD" and word.text in (
                "unnamed_addr", "local_unnamed_addr", "dso_local",
            ):
                self._next()
            else:
                break
        kind = self._accept_word("constant", "global")
        if kind is None:
            raise ParseError("expected 'constant' or 'global'", self._peek())
        value_type = self.parse_type()
        initializer = None
        tok = self._peek()
        if not (tok.kind == "PUNCT" and tok.text == ",") and tok.kind != "EOF":
            if self._could_start_value():
                initializer = self.parse_value(value_type)
        while self._accept("PUNCT", ","):
            self._accept_word("align")
            self._accept("INT")

        existing = self.module.get_global(name_tok.text)
        if existing is not None:
            # was forward-referenced; fill in
            existing.initializer = initializer  # type: ignore[assignment]
            existing.is_constant = kind == "constant"
            existing.linkage = linkage
        else:
            self.module.add_global(
                GlobalVariable(name_tok.text, initializer, kind == "constant", linkage)
            )

    def _could_start_value(self) -> bool:
        tok = self._peek()
        if tok.kind in ("INT", "FLOAT", "CSTRING", "GLOBAL", "LOCAL"):
            return True
        if tok.kind == "PUNCT" and tok.text == "[":
            return True
        return tok.kind == "WORD" and tok.text in (
            "true", "false", "null", "undef", "poison", "zeroinitializer",
            "inttoptr", "ptrtoint", "bitcast", "getelementptr",
        )

    def _parse_fn_attrs(self, fn: Function) -> None:
        while True:
            tok = self._peek()
            if tok.kind == "ATTRGROUP":
                self._next()
                self._pending_fn_groups.append((fn, int(tok.text)))
            elif tok.kind == "STRING":
                self._next()
                key = tok.text
                value = None
                if self._accept("PUNCT", "="):
                    value = self._expect("STRING").text
                fn.attributes[key] = value
            elif tok.kind == "WORD" and tok.text in (
                "nounwind", "readnone", "readonly", "willreturn", "norecurse",
                "alwaysinline", "noinline", "mustprogress", "local_unnamed_addr",
            ):
                self._next()
                fn.attributes[tok.text] = None
            else:
                break

    def _parse_declare(self) -> None:
        self._expect("WORD", "declare")
        return_type = self.parse_type()
        name_tok = self._expect("GLOBAL")
        self._expect("PUNCT", "(")
        param_types: List[IRType] = []
        vararg = False
        if not self._accept("PUNCT", ")"):
            while True:
                if self._accept_word("..."):
                    vararg = True
                else:
                    param_types.append(self.parse_type())
                    while self._accept_word(*_PARAM_ATTRS):
                        pass
                    self._accept("LOCAL")  # optional dummy arg name
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ")")
        fn = self.module.declare_function(
            name_tok.text, FunctionType(return_type, param_types, vararg)
        )
        self._parse_fn_attrs(fn)

    def _parse_define(self) -> None:
        self._expect("WORD", "define")
        while self._accept_word("internal", "external", "dso_local", "private", "weak"):
            pass
        return_type = self.parse_type()
        name_tok = self._expect("GLOBAL")
        self._expect("PUNCT", "(")
        param_types: List[IRType] = []
        arg_names: List[Optional[str]] = []
        if not self._accept("PUNCT", ")"):
            while True:
                param_types.append(self.parse_type())
                while self._accept_word(*_PARAM_ATTRS):
                    pass
                name = self._accept("LOCAL")
                arg_names.append(name.text if name else None)
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ")")
        fn = self.module.define_function(
            name_tok.text, FunctionType(return_type, param_types), arg_names
        )
        self._parse_fn_attrs(fn)
        self._expect("PUNCT", "{")
        self._parse_function_body(fn)
        self._expect("PUNCT", "}")

    # -- function bodies ---------------------------------------------------------
    def _parse_function_body(self, fn: Function) -> None:
        locals_: Dict[str, Value] = {}
        blocks: Dict[str, BasicBlock] = {}
        for arg in fn.arguments:
            if arg.name is not None:
                locals_[arg.name] = arg

        def get_block(name: str) -> BasicBlock:
            block = blocks.get(name)
            if block is None:
                block = BasicBlock(name)
                blocks[name] = block
            return block

        current: Optional[BasicBlock] = None
        order: List[BasicBlock] = []

        while True:
            tok = self._peek()
            if tok.kind == "PUNCT" and tok.text == "}":
                break
            # Label line: WORD/INT followed by ':'
            if tok.kind in ("WORD", "INT") and self._peek(1).kind == "PUNCT" and self._peek(1).text == ":":
                self._next()
                self._next()
                current = get_block(tok.text)
                if current in order:
                    raise ParseError(f"duplicate block label {tok.text}", tok)
                order.append(current)
                continue
            if current is None:
                current = BasicBlock(None)
                order.append(current)
            inst = self._parse_instruction(locals_, get_block)
            current.append(inst)

        for block in order:
            fn.append_block(block)
        # blocks referenced but never defined
        for name, block in blocks.items():
            if block.parent is None:
                raise ParseError(f"branch to undefined label %{name}")

        # Patch forward references.
        for name, value in list(locals_.items()):
            if isinstance(value, _Forward):
                if not value.is_used():
                    continue
                raise ParseError(f"use of undefined local %{name}")

    def _parse_instruction(self, locals_, get_block) -> Instruction:
        tok = self._peek()
        result_name: Optional[str] = None
        if tok.kind == "LOCAL":
            result_name = tok.text
            self._next()
            self._expect("PUNCT", "=")
            tok = self._peek()

        if tok.kind != "WORD":
            raise ParseError("expected instruction opcode", tok)
        opcode = tok.text

        inst: Instruction
        try:
            inst = self._dispatch_instruction(opcode, tok, locals_, get_block)
        except TypeError as error:
            # Instruction constructors type-check their operands (operand
            # mismatch, wrong arity) with TypeError; at parse time that is
            # a *source* problem and must surface as a structured
            # diagnostic, not an internal exception.
            raise ParseError(f"invalid {opcode!r} instruction: {error}", tok)

        if result_name is not None:
            if inst.type.is_void:
                raise ParseError(f"void instruction cannot be named %{result_name}", tok)
            inst.name = result_name
            placeholder = locals_.get(result_name)
            if isinstance(placeholder, _Forward):
                placeholder.replace_all_uses_with(inst)
            elif placeholder is not None:
                raise ParseError(f"redefinition of %{result_name}", tok)
            locals_[result_name] = inst
        return inst

    def _dispatch_instruction(
        self, opcode: str, tok, locals_, get_block
    ) -> Instruction:
        inst: Instruction
        if opcode in BINARY_OPCODES:
            inst = self._parse_binary(opcode, locals_)
        elif opcode == "icmp":
            inst = self._parse_icmp(locals_)
        elif opcode == "fcmp":
            inst = self._parse_fcmp(locals_)
        elif opcode in CAST_OPCODES:
            inst = self._parse_cast(opcode, locals_)
        elif opcode == "select":
            inst = self._parse_select(locals_)
        elif opcode == "alloca":
            inst = self._parse_alloca()
        elif opcode == "load":
            inst = self._parse_load(locals_)
        elif opcode == "store":
            inst = self._parse_store(locals_)
        elif opcode == "getelementptr":
            inst = self._parse_gep(locals_)
        elif opcode in ("call", "tail"):
            inst = self._parse_call(locals_)
        elif opcode == "phi":
            inst = self._parse_phi(locals_, get_block)
        elif opcode == "ret":
            inst = self._parse_ret(locals_)
        elif opcode == "br":
            inst = self._parse_br(locals_, get_block)
        elif opcode == "switch":
            inst = self._parse_switch(locals_, get_block)
        elif opcode == "unreachable":
            self._next()
            inst = UnreachableInst()
        else:
            raise ParseError(f"unsupported instruction {opcode!r}", tok)
        return inst

    def _parse_binary(self, opcode: str, locals_) -> BinaryInst:
        self._next()
        flags = []
        if opcode in ("add", "sub", "mul", "shl"):
            while True:
                flag = self._accept_word(*WRAP_FLAGS)
                if flag is None:
                    break
                flags.append(flag)
        elif opcode in ("sdiv", "udiv", "lshr", "ashr"):
            if self._accept_word("exact"):
                flags.append("exact")
        elif opcode.startswith("f"):
            while self._accept_word(*_FAST_MATH_FLAGS):
                pass
        type_ = self.parse_type()
        lhs = self.parse_value(type_, locals_)
        self._expect("PUNCT", ",")
        rhs = self.parse_value(type_, locals_)
        return BinaryInst(opcode, lhs, rhs, flags)

    def _parse_icmp(self, locals_) -> ICmpInst:
        self._next()
        pred = self._accept_word(*ICMP_PREDICATES)
        if pred is None:
            raise ParseError("expected icmp predicate", self._peek())
        type_ = self.parse_type()
        lhs = self.parse_value(type_, locals_)
        self._expect("PUNCT", ",")
        rhs = self.parse_value(type_, locals_)
        return ICmpInst(pred, lhs, rhs)

    def _parse_fcmp(self, locals_) -> FCmpInst:
        self._next()
        while self._accept_word(*_FAST_MATH_FLAGS):
            pass
        pred = self._accept_word(*FCMP_PREDICATES)
        if pred is None:
            raise ParseError("expected fcmp predicate", self._peek())
        type_ = self.parse_type()
        lhs = self.parse_value(type_, locals_)
        self._expect("PUNCT", ",")
        rhs = self.parse_value(type_, locals_)
        return FCmpInst(pred, lhs, rhs)

    def _parse_cast(self, opcode: str, locals_) -> CastInst:
        self._next()
        src_type = self.parse_type()
        value = self.parse_value(src_type, locals_)
        self._expect("WORD", "to")
        dest_type = self.parse_type()
        return CastInst(opcode, value, dest_type)

    def _parse_select(self, locals_) -> SelectInst:
        self._next()
        cond_type = self.parse_type()
        cond = self.parse_value(cond_type, locals_)
        self._expect("PUNCT", ",")
        true_type = self.parse_type()
        iftrue = self.parse_value(true_type, locals_)
        self._expect("PUNCT", ",")
        false_type = self.parse_type()
        iffalse = self.parse_value(false_type, locals_)
        return SelectInst(cond, iftrue, iffalse)

    def _parse_alloca(self) -> AllocaInst:
        self._next()
        allocated = self.parse_type()
        align = None
        while self._accept("PUNCT", ","):
            if self._accept_word("align"):
                align = int(self._expect("INT").text)
            else:
                raise ParseError("unsupported alloca suffix", self._peek())
        return AllocaInst(allocated, align)

    def _parse_load(self, locals_) -> LoadInst:
        self._next()
        loaded = self.parse_type()
        self._expect("PUNCT", ",")
        ptr_type = self.parse_type()
        pointer = self.parse_value(ptr_type, locals_)
        align = None
        while self._accept("PUNCT", ","):
            if self._accept_word("align"):
                align = int(self._expect("INT").text)
            else:
                raise ParseError("unsupported load suffix", self._peek())
        return LoadInst(loaded, pointer, align)

    def _parse_store(self, locals_) -> StoreInst:
        self._next()
        value_type = self.parse_type()
        value = self.parse_value(value_type, locals_)
        self._expect("PUNCT", ",")
        ptr_type = self.parse_type()
        pointer = self.parse_value(ptr_type, locals_)
        align = None
        while self._accept("PUNCT", ","):
            if self._accept_word("align"):
                align = int(self._expect("INT").text)
            else:
                raise ParseError("unsupported store suffix", self._peek())
        return StoreInst(value, pointer, align)

    def _parse_gep(self, locals_) -> GetElementPtrInst:
        self._next()
        inbounds = bool(self._accept_word("inbounds"))
        source_type = self.parse_type()
        self._expect("PUNCT", ",")
        ptr_type = self.parse_type()
        pointer = self.parse_value(ptr_type, locals_)
        indices: List[Value] = []
        while self._accept("PUNCT", ","):
            idx_type = self.parse_type()
            indices.append(self.parse_value(idx_type, locals_))
        return GetElementPtrInst(source_type, pointer, indices, inbounds)

    def _parse_call(self, locals_) -> CallInst:
        tail = bool(self._accept_word("tail", "musttail", "notail"))
        self._expect("WORD", "call")
        return_type = self.parse_type()
        # A full function type may appear for vararg callees: `call void (...)`
        callee_param_types: Optional[List[IRType]] = None
        if self._peek().kind == "PUNCT" and self._peek().text == "(" and self._peek(1).kind != "PUNCT":
            # lookahead: '(' immediately followed by a type word = function type
            save = self.index
            try:
                self._expect("PUNCT", "(")
                callee_param_types = []
                if not self._accept("PUNCT", ")"):
                    while True:
                        if self._accept_word("..."):
                            pass
                        else:
                            callee_param_types.append(self.parse_type())
                        if not self._accept("PUNCT", ","):
                            break
                    self._expect("PUNCT", ")")
                if self._peek().kind != "GLOBAL":
                    raise ParseError("not a function type", self._peek())
            except ParseError:
                self.index = save
                callee_param_types = None
        name_tok = self._expect("GLOBAL")
        callee = self.module.get_function(name_tok.text)
        self._expect("PUNCT", "(")
        args: List[Value] = []
        arg_types: List[IRType] = []
        arg_attrs: List[Tuple[str, ...]] = []
        if not self._accept("PUNCT", ")"):
            while True:
                arg_type = self.parse_type()
                attrs = []
                while True:
                    attr = self._accept_word(*_PARAM_ATTRS)
                    if attr is None:
                        break
                    attrs.append(attr)
                args.append(self.parse_value(arg_type, locals_))
                arg_types.append(arg_type)
                arg_attrs.append(tuple(attrs))
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ")")
        while self._accept("ATTRGROUP"):
            pass
        if callee is None:
            # Implicit declaration from the call site (QIR files routinely
            # place declares after uses; also tolerates missing declares).
            callee = self.module.declare_function(
                name_tok.text, FunctionType(return_type, arg_types)
            )
        return CallInst(callee, args, arg_attrs, tail)

    def _parse_phi(self, locals_, get_block) -> PhiInst:
        self._next()
        type_ = self.parse_type()
        phi = PhiInst(type_)
        while True:
            self._expect("PUNCT", "[")
            value = self.parse_value(type_, locals_)
            self._expect("PUNCT", ",")
            block_tok = self._expect("LOCAL")
            self._expect("PUNCT", "]")
            phi.add_incoming(value, get_block(block_tok.text))
            if not self._accept("PUNCT", ","):
                break
        return phi

    def _parse_ret(self, locals_) -> ReturnInst:
        self._next()
        type_ = self.parse_type()
        if type_.is_void:
            return ReturnInst(None)
        return ReturnInst(self.parse_value(type_, locals_))

    def _parse_br(self, locals_, get_block) -> Instruction:
        self._next()
        if self._accept_word("label"):
            target = self._expect("LOCAL")
            return BranchInst(get_block(target.text))
        cond_type = self.parse_type()
        cond = self.parse_value(cond_type, locals_)
        self._expect("PUNCT", ",")
        self._expect("WORD", "label")
        true_tok = self._expect("LOCAL")
        self._expect("PUNCT", ",")
        self._expect("WORD", "label")
        false_tok = self._expect("LOCAL")
        return CondBranchInst(cond, get_block(true_tok.text), get_block(false_tok.text))

    def _parse_switch(self, locals_, get_block) -> SwitchInst:
        self._next()
        value_type = self.parse_type()
        value = self.parse_value(value_type, locals_)
        self._expect("PUNCT", ",")
        self._expect("WORD", "label")
        default_tok = self._expect("LOCAL")
        inst = SwitchInst(value, get_block(default_tok.text))
        self._expect("PUNCT", "[")
        while not self._accept("PUNCT", "]"):
            case_type = self.parse_type()
            const = self.parse_value(case_type, locals_)
            self._expect("PUNCT", ",")
            self._expect("WORD", "label")
            case_tok = self._expect("LOCAL")
            inst.add_case(const, get_block(case_tok.text))
        return inst

    # -- attribute groups & metadata -----------------------------------------
    def _parse_attribute_group(self) -> None:
        self._expect("WORD", "attributes")
        group_tok = self._expect("ATTRGROUP")
        self._expect("PUNCT", "=")
        self._expect("PUNCT", "{")
        attrs: Dict[str, Optional[str]] = {}
        while not self._accept("PUNCT", "}"):
            tok = self._next()
            if tok.kind == "STRING":
                key = tok.text
                value = None
                if self._accept("PUNCT", "="):
                    value = self._expect("STRING").text
                attrs[key] = value
            elif tok.kind == "WORD":
                attrs[tok.text] = None
            else:
                raise ParseError("bad attribute", tok)
        group_id = int(group_tok.text)
        self.module.attribute_groups[group_id] = AttributeGroup(group_id, attrs)

    def _resolve_attribute_groups(self) -> None:
        for fn, group_id in self._pending_fn_groups:
            group = self.module.attribute_groups.get(group_id)
            if group is None:
                group = AttributeGroup(group_id)
                self.module.attribute_groups[group_id] = group
            fn.attribute_group = group

    def _parse_metadata_def(self) -> None:
        name_tok = self._expect("METADATA")
        self._expect("PUNCT", "=")
        distinct = bool(self._accept_word("distinct"))
        self._expect("PUNCT", "!{")
        elements: List[object] = []
        refs: List[str] = []
        if not self._accept("PUNCT", "}"):
            while True:
                tok = self._peek()
                if tok.kind == "METADATA":
                    self._next()
                    refs.append(tok.text)
                    elements.append(("ref", tok.text))
                elif tok.kind == "MDSTRING":
                    self._next()
                    elements.append(MetadataString(tok.text))
                else:
                    el_type = self.parse_type()
                    elements.append(self.parse_value(el_type))
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", "}")

        if name_tok.text.isdigit():
            node = MetadataNode([])
            node.elements = tuple(elements)  # refs resolved later
            self._md_nodes[name_tok.text] = node
        else:
            self._md_named[name_tok.text] = [
                el[1] for el in elements if isinstance(el, tuple) and el[0] == "ref"
            ]

    def _finalize_metadata(self) -> None:
        # Resolve ("ref", n) placeholders inside numbered nodes.
        for node in self._md_nodes.values():
            resolved = []
            for el in node.elements:
                if isinstance(el, tuple) and el[0] == "ref":
                    target = self._md_nodes.get(el[1])
                    if target is None:
                        raise ParseError(f"undefined metadata !{el[1]}")
                    resolved.append(target)
                else:
                    resolved.append(el)
            node.elements = tuple(resolved)

        for name, ref_list in self._md_named.items():
            nodes = []
            for ref in ref_list:
                target = self._md_nodes.get(ref)
                if target is None:
                    raise ParseError(f"undefined metadata !{ref}")
                nodes.append(target)
            if name == "llvm.module.flags":
                for node in nodes:
                    if len(node.elements) != 3:
                        raise ParseError("malformed module flag")
                    behavior, key, value = node.elements
                    if not isinstance(behavior, ConstantInt) or not isinstance(
                        key, MetadataString
                    ):
                        raise ParseError("malformed module flag")
                    if not isinstance(value, Value):
                        raise ParseError("module flag values must be constants")
                    self.module.add_module_flag(behavior.value, key.text, value)  # type: ignore[arg-type]
            else:
                self.module.named_metadata[name] = nodes


def parse_assembly(
    source: str, module_name: str = "module", observer=None
) -> Module:
    """Parse ``.ll`` text into a :class:`Module`.

    ``observer`` (a :class:`repro.obs.Observer`) records Example-3 profile
    data -- lex/parse spans plus bytes, token counts and throughput.  The
    default ``None`` takes the uninstrumented path.
    """
    if observer is None or not observer.enabled:
        return Parser(source, module_name).parse_module()

    from time import perf_counter

    with observer.span("parse_assembly", module=module_name, bytes=len(source)):
        t0 = perf_counter()
        with observer.span("lex"):
            tokens = Lexer(source).tokenize()
        t1 = perf_counter()
        with observer.span("parse", tokens=len(tokens)):
            module = Parser(source, module_name, tokens=tokens).parse_module()
        t2 = perf_counter()
    observer.inc("parse.modules")
    observer.inc("parse.bytes", len(source))
    observer.inc("parse.tokens", len(tokens))
    observer.inc("parse.lex_seconds", t1 - t0)
    observer.inc("parse.parse_seconds", t2 - t1)
    total = t2 - t0
    if total > 0:
        observer.set_gauge("parse.bytes_per_second", len(source) / total)
        observer.set_gauge("parse.tokens_per_second", len(tokens) / total)
    return module
