"""Tokenizer for the ``.ll`` assembly subset.

LLVM assembly is whitespace-insensitive apart from comments; the lexer
therefore produces a flat token stream and the parser never needs to see
line boundaries.
"""

from __future__ import annotations

from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str  # LOCAL GLOBAL METADATA ATTRGROUP WORD INT FLOAT STRING CSTRING PUNCT EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.column})"


class LexError(ValueError):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


_PUNCT_CHARS = "=,(){}[]<>*:"

_WORD_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_.$")
_WORD_CHARS = _WORD_START | set("0123456789-")
_IDENT_CHARS = _WORD_START | set("0123456789-")


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == ";":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                break

    def _lex_quoted(self) -> str:
        """Read a double-quoted string with LLVM's ``\\XX`` hex escapes."""
        assert self._peek() == '"'
        self._advance()
        out: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated string")
            if ch == '"':
                self._advance()
                return "".join(out)
            if ch == "\\":
                self._advance()
                nxt = self._peek()
                if nxt == "\\":
                    self._advance()
                    out.append("\\")
                else:
                    hexpair = self._advance(2)
                    if len(hexpair) != 2:
                        raise self._error("bad escape in string")
                    out.append(chr(int(hexpair, 16)))
            else:
                out.append(self._advance())

    def _lex_sigil_ident(self, kind: str) -> Token:
        """Lex %name / @name / !name after the sigil has been consumed."""
        line, column = self.line, self.column
        if self._peek() == '"':
            text = self._lex_quoted()
            return Token(kind, text, line, column)
        chars: List[str] = []
        while self._peek() and self._peek() in _IDENT_CHARS:
            chars.append(self._advance())
        if not chars:
            raise self._error(f"empty identifier after sigil for {kind}")
        return Token(kind, "".join(chars), line, column)

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        chars: List[str] = []
        if self._peek() == "-":
            chars.append(self._advance())
        if self._peek() == "0" and self._peek(1) in "xX":
            chars.append(self._advance())
            chars.append(self._advance())
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                chars.append(self._advance())
            return Token("FLOAT", "".join(chars), line, column)
        is_float = False
        while self._peek().isdigit():
            chars.append(self._advance())
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            chars.append(self._advance())
            while self._peek().isdigit():
                chars.append(self._advance())
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            chars.append(self._advance())
            if self._peek() in "+-":
                chars.append(self._advance())
            while self._peek().isdigit():
                chars.append(self._advance())
        text = "".join(chars)
        if text in ("-",):
            raise self._error("stray '-'")
        return Token("FLOAT" if is_float else "INT", text, line, column)

    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token("EOF", "", line, column)
        ch = self._peek()

        if ch == "%":
            self._advance()
            return self._lex_sigil_ident("LOCAL")
        if ch == "@":
            self._advance()
            return self._lex_sigil_ident("GLOBAL")
        if ch == "!":
            self._advance()
            if self._peek() == '"':
                text = self._lex_quoted()
                return Token("MDSTRING", text, line, column)
            if self._peek() == "{":
                return Token("PUNCT", "!{", line, column) if self._advance() else None  # type: ignore[return-value]
            return self._lex_sigil_ident("METADATA")
        if ch == "#":
            self._advance()
            tok = self._lex_sigil_ident("ATTRGROUP")
            return tok
        if ch == '"':
            text = self._lex_quoted()
            return Token("STRING", text, line, column)
        if ch == "c" and self._peek(1) == '"':
            self._advance()
            text = self._lex_quoted()
            return Token("CSTRING", text, line, column)
        if ch.isdigit() or (ch == "-" and self._peek(1).isdigit()):
            return self._lex_number()
        if ch in _PUNCT_CHARS:
            # '...' for varargs is handled via WORD of '.' chars below; other
            # multi-char punctuation does not occur in the subset.
            self._advance()
            return Token("PUNCT", ch, line, column)
        if ch in _WORD_START:
            chars = []
            while self._peek() and self._peek() in _WORD_CHARS:
                chars.append(self._advance())
            return Token("WORD", "".join(chars), line, column)
        raise self._error(f"unexpected character {ch!r}")

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind == "EOF":
                return tokens
