"""Assembly printer: serialise a Module back to ``.ll`` text.

The printer and parser form a round-trip pair; the property-based tests
assert ``parse(print(parse(text)))`` is a fixpoint.
"""

from __future__ import annotations

from typing import List

from repro.llvmir.function import Function
from repro.llvmir.module import Module
from repro.llvmir.values import MetadataNode, MetadataString, _quote_name


def print_function(fn: Function) -> str:
    fn.assign_names()
    lines: List[str] = []
    params = ", ".join(
        f"{arg.type} %{arg.name}" for arg in fn.arguments
    )
    if fn.function_type.vararg:
        params = f"{params}, ..." if params else "..."
    attrs = ""
    if fn.attribute_group is not None:
        attrs += f" #{fn.attribute_group.group_id}"
    for key, value in fn.attributes.items():
        if value is None:
            attrs += f' "{key}"'
        else:
            attrs += f' "{key}"="{value}"'

    if fn.is_declaration:
        # declarations use prototype parameter list (types only)
        proto = ", ".join(str(t) for t in fn.function_type.param_types)
        if fn.function_type.vararg:
            proto = f"{proto}, ..." if proto else "..."
        lines.append(f"declare {fn.return_type} {fn.ref()}({proto}){attrs}")
        return "\n".join(lines)

    lines.append(f"define {fn.return_type} {fn.ref()}({params}){attrs} {{")
    for i, block in enumerate(fn.blocks):
        if i > 0:
            lines.append("")
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst.format()}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    sections: List[str] = []

    header: List[str] = []
    if module.source_filename:
        header.append(f'source_filename = "{module.source_filename}"')
    if header:
        sections.append("\n".join(header))

    if module.struct_types:
        decls = [
            f"%{name} = type {st.body_str()}"
            for name, st in module.struct_types.items()
        ]
        sections.append("\n".join(decls))

    if module.globals:
        lines = []
        for gv in module.globals.values():
            kind = "constant" if gv.is_constant else "global"
            init = gv.initializer.typed_ref() if gv.initializer is not None else "ptr null"
            linkage = f"{gv.linkage} " if gv.linkage else ""
            lines.append(f"@{_quote_name(gv.name or '')} = {linkage}{kind} {init}")
        sections.append("\n".join(lines))

    defined = [f for f in module.functions.values() if not f.is_declaration]
    declared = [f for f in module.functions.values() if f.is_declaration]
    for fn in defined:
        sections.append(print_function(fn))
    if declared:
        sections.append("\n".join(print_function(fn) for fn in declared))

    if module.attribute_groups:
        sections.append(
            "\n".join(g.format() for g in module.attribute_groups.values())
        )

    metadata_lines: List[str] = []
    node_counter = 0
    all_nodes: List[MetadataNode] = []

    def register(node: MetadataNode) -> int:
        nonlocal node_counter
        if node.index is None:
            node.index = node_counter
            node_counter += 1
            all_nodes.append(node)
        return node.index

    flag_nodes: List[MetadataNode] = []
    for behavior, key, value in module.module_flags:
        from repro.llvmir.values import ConstantInt
        from repro.llvmir.types import i32

        node = MetadataNode([ConstantInt(i32, behavior), MetadataString(key), value])
        flag_nodes.append(node)
    named = dict(module.named_metadata)
    if flag_nodes:
        named = {"llvm.module.flags": flag_nodes, **named}

    for node_list in named.values():
        for node in node_list:
            node.index = None  # reset stale indices from a previous print
    for node_list in named.values():
        for node in node_list:
            register(node)

    for name, node_list in named.items():
        refs = ", ".join(f"!{register(n)}" for n in node_list)
        metadata_lines.append(f"!{name} = !{{{refs}}}")
    for node in all_nodes:
        body = ", ".join(node.element_refs())
        metadata_lines.append(f"!{node.index} = !{{{body}}}")
    if metadata_lines:
        sections.append("\n".join(metadata_lines))

    return "\n\n".join(sections) + "\n"
