"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.llvmir.instructions import Instruction, PhiInst

if TYPE_CHECKING:  # pragma: no cover
    from repro.llvmir.function import Function


class BasicBlock:
    __slots__ = ("name", "parent", "instructions")

    def __init__(self, name: Optional[str] = None, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure -----------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), inst)

    def remove(self, inst: Instruction) -> None:
        """Detach ``inst`` from this block and drop its operand uses."""
        self.instructions.remove(inst)
        inst.drop_all_references()
        inst.parent = None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    # -- queries ---------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        assert self.parent is not None
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def phis(self) -> List[PhiInst]:
        out = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                out.append(inst)
            else:
                break
        return out

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    def is_entry(self) -> bool:
        return self.parent is not None and self.parent.blocks and self.parent.blocks[0] is self

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"
