"""Type system for the LLVM-IR subset.

Types are interned where practical so that identity comparison works for the
common scalar types (``i1 is i1``), while structural equality (``__eq__``)
is always available.  QIR relies on only a handful of types: integers,
``double``, the opaque pointer ``ptr``, arrays (for string constants used as
output labels), and opaque named structs for the legacy ``%Qubit*`` /
``%Result*`` spelling.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


class IRType:
    """Base class for all IR types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"

    # -- classification helpers -------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, DoubleType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_label(self) -> bool:
        return isinstance(self, LabelType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_first_class(self) -> bool:
        """First-class types may be produced by instructions."""
        return not isinstance(self, (VoidType, FunctionType, LabelType))


class VoidType(IRType):
    __slots__ = ()

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class LabelType(IRType):
    __slots__ = ()

    def __str__(self) -> str:
        return "label"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")


class IntType(IRType):
    """Arbitrary-width integer type ``iN``."""

    __slots__ = ("bits",)
    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        if bits < 1 or bits > 128:
            raise ValueError(f"unsupported integer width: i{bits}")
        inst = super().__new__(cls)
        inst.bits = bits
        cls._cache[bits] = inst
        return inst

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int to this width's signed two's-complement range."""
        mask = (1 << self.bits) - 1
        value &= mask
        if value > self.max_signed:
            value -= 1 << self.bits
        return value

    def to_unsigned(self, value: int) -> int:
        return value & ((1 << self.bits) - 1)


class DoubleType(IRType):
    """IEEE-754 binary64 (``double``) -- the only float type QIR uses."""

    __slots__ = ()
    _instance: Optional["DoubleType"] = None

    def __new__(cls) -> "DoubleType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "double"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DoubleType)

    def __hash__(self) -> int:
        return hash("double")


class PointerType(IRType):
    """Opaque pointer.

    Modern LLVM (>= 16) has a single opaque ``ptr`` type.  The legacy QIR
    spelling ``%Qubit*`` is parsed and normalised to an opaque pointer that
    *remembers* its pointee name purely for diagnostics and pretty-printing
    (``pointee_hint``); the hint never participates in equality, mirroring
    how opaque pointers erased pointee types.
    """

    __slots__ = ("pointee_hint",)
    _plain: Optional["PointerType"] = None

    def __new__(cls, pointee_hint: Optional[str] = None) -> "PointerType":
        if pointee_hint is None:
            if cls._plain is None:
                inst = super().__new__(cls)
                inst.pointee_hint = None
                cls._plain = inst
            return cls._plain
        inst = super().__new__(cls)
        inst.pointee_hint = pointee_hint
        return inst

    def __str__(self) -> str:
        return "ptr"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType)

    def __hash__(self) -> int:
        return hash("ptr")


class ArrayType(IRType):
    """``[N x T]`` -- used by QIR for i8 string constants (output labels)."""

    __slots__ = ("count", "element")

    def __init__(self, count: int, element: IRType):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.count = count
        self.element = element

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.count == self.count
            and other.element == self.element
        )

    def __hash__(self) -> int:
        return hash(("array", self.count, self.element))


class StructType(IRType):
    """Named (possibly opaque) or literal struct type.

    QIR declares ``%Qubit = type opaque`` and ``%Result = type opaque`` in
    legacy modules; we keep those as named opaque structs.
    """

    __slots__ = ("name", "fields", "opaque")

    def __init__(
        self,
        name: Optional[str] = None,
        fields: Optional[Sequence[IRType]] = None,
        opaque: bool = False,
    ):
        self.name = name
        self.opaque = opaque
        self.fields: Optional[Tuple[IRType, ...]]
        if opaque:
            if fields:
                raise ValueError("opaque struct cannot have fields")
            self.fields = None
        else:
            self.fields = tuple(fields or ())

    def __str__(self) -> str:
        if self.name is not None:
            return f"%{self.name}"
        assert self.fields is not None
        inner = ", ".join(str(f) for f in self.fields)
        return "{ " + inner + " }" if inner else "{}"

    def body_str(self) -> str:
        """The right-hand side of a ``%name = type ...`` declaration."""
        if self.opaque:
            return "opaque"
        assert self.fields is not None
        inner = ", ".join(str(f) for f in self.fields)
        return "{ " + inner + " }" if inner else "{}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return False
        if self.name is not None or other.name is not None:
            return self.name == other.name
        return self.fields == other.fields

    def __hash__(self) -> int:
        if self.name is not None:
            return hash(("struct", self.name))
        return hash(("struct", self.fields))


class FunctionType(IRType):
    """``ret (params...)`` with optional varargs."""

    __slots__ = ("return_type", "param_types", "vararg")

    def __init__(
        self,
        return_type: IRType,
        param_types: Sequence[IRType],
        vararg: bool = False,
    ):
        self.return_type = return_type
        self.param_types = tuple(param_types)
        self.vararg = vararg

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, self.param_types, self.vararg))


# ---------------------------------------------------------------------------
# Interned singletons for the types QIR actually touches.
# ---------------------------------------------------------------------------
void = VoidType()
label = LabelType()
i1 = IntType(1)
i8 = IntType(8)
i16 = IntType(16)
i32 = IntType(32)
i64 = IntType(64)
double = DoubleType()
ptr = PointerType()

QUBIT_PTR = PointerType("Qubit")
RESULT_PTR = PointerType("Result")
ARRAY_PTR = PointerType("Array")
STRING_PTR = PointerType("String")
TUPLE_PTR = PointerType("Tuple")
CALLABLE_PTR = PointerType("Callable")
