"""Instruction classes for the LLVM-IR subset.

Every instruction is itself a :class:`~repro.llvmir.values.Value` (its
result); ``void``-typed instructions simply have no users.  Operands are
kept in a flat list with automatic use-list maintenance; block operands of
terminators and phi nodes are held separately from value operands because
CFG edges and dataflow edges are updated by different transformations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.llvmir.types import (
    DoubleType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    i1,
    ptr,
    void,
)
from repro.llvmir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.llvmir.block import BasicBlock
    from repro.llvmir.function import Function


BINARY_OPCODES = {
    # integer arithmetic
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    # bitwise
    "and", "or", "xor", "shl", "lshr", "ashr",
    # floating point
    "fadd", "fsub", "fmul", "fdiv", "frem",
}

FLOAT_BINARY_OPCODES = {"fadd", "fsub", "fmul", "fdiv", "frem"}

ICMP_PREDICATES = {"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}

FCMP_PREDICATES = {
    "false", "oeq", "ogt", "oge", "olt", "ole", "one", "ord",
    "ueq", "ugt", "uge", "ult", "ule", "une", "uno", "true",
}

CAST_OPCODES = {
    "trunc", "zext", "sext", "fptosi", "fptoui", "sitofp", "uitofp",
    "inttoptr", "ptrtoint", "bitcast",
}

# Integer wrap flags accepted (and preserved) on arithmetic; semantically we
# treat overflow as wrapping, which is a refinement of poison semantics.
WRAP_FLAGS = ("nuw", "nsw")


class Instruction(Value):
    __slots__ = ("parent", "operands")

    opcode: str = "?"

    def __init__(self, type_: IRType, operands: Sequence[Value] = ()):
        super().__init__(type_)
        self.parent: Optional["BasicBlock"] = None
        self.operands: List[Value] = []
        for op in operands:
            self.append_operand(op)

    # -- operand management -------------------------------------------------
    def append_operand(self, op: Value) -> None:
        if not isinstance(op, Value):
            raise TypeError(f"operand must be a Value, got {op!r}")
        self.operands.append(op)
        op.add_user(self)

    def set_operand(self, index: int, op: Value) -> None:
        old = self.operands[index]
        old.remove_user(self)
        self.operands[index] = op
        op.add_user(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.set_operand(i, new)

    def drop_all_references(self) -> None:
        """Detach from use lists; called when erasing the instruction."""
        for op in self.operands:
            op.remove_user(self)
        self.operands.clear()

    def erase_from_parent(self) -> None:
        assert self.parent is not None, "instruction not attached to a block"
        self.parent.remove(self)

    # -- classification ------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return isinstance(
            self, (ReturnInst, BranchInst, CondBranchInst, SwitchInst, UnreachableInst)
        )

    def successors(self) -> List["BasicBlock"]:
        return []

    def replace_block_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Rewrite CFG edges; overridden by terminators and phi nodes."""

    def has_side_effects(self) -> bool:
        """Conservative: may the instruction be observed beyond its result?"""
        return isinstance(self, (StoreInst, CallInst)) or self.is_terminator

    # -- printing -------------------------------------------------------------
    def format(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def _lhs(self) -> str:
        return f"{self.ref()} = "

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode}>"


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------
class BinaryInst(Instruction):
    __slots__ = ("opcode", "flags")

    def __init__(self, opcode: str, lhs: Value, rhs: Value, flags: Sequence[str] = ()):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode: {opcode}")
        if lhs.type != rhs.type:
            raise TypeError(f"binary operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs])
        self.opcode = opcode
        self.flags = tuple(flags)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        flags = "".join(f" {f}" for f in self.flags)
        return (
            f"{self._lhs()}{self.opcode}{flags} {self.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class ICmpInst(Instruction):
    __slots__ = ("predicate",)

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(i1, [lhs, rhs])
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return (
            f"{self._lhs()}icmp {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class FCmpInst(Instruction):
    __slots__ = ("predicate",)

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"fcmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(i1, [lhs, rhs])
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        return (
            f"{self._lhs()}fcmp {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


class CastInst(Instruction):
    __slots__ = ("opcode",)

    def __init__(self, opcode: str, value: Value, dest_type: IRType):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__(dest_type, [value])
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        return f"{self._lhs()}{self.opcode} {self.value.typed_ref()} to {self.type}"


class SelectInst(Instruction):
    __slots__ = ()

    opcode = "select"

    def __init__(self, cond: Value, iftrue: Value, iffalse: Value):
        if iftrue.type != iffalse.type:
            raise TypeError("select arm type mismatch")
        super().__init__(iftrue.type, [cond, iftrue, iffalse])

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]

    def format(self) -> str:
        return (
            f"{self._lhs()}select {self.condition.typed_ref()}, "
            f"{self.true_value.typed_ref()}, {self.false_value.typed_ref()}"
        )


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------
class AllocaInst(Instruction):
    __slots__ = ("allocated_type", "align")

    opcode = "alloca"

    def __init__(self, allocated_type: IRType, align: Optional[int] = None):
        super().__init__(ptr, [])
        self.allocated_type = allocated_type
        self.align = align

    def format(self) -> str:
        suffix = f", align {self.align}" if self.align else ""
        return f"{self._lhs()}alloca {self.allocated_type}{suffix}"


class LoadInst(Instruction):
    __slots__ = ("align",)

    opcode = "load"

    def __init__(self, loaded_type: IRType, pointer: Value, align: Optional[int] = None):
        super().__init__(loaded_type, [pointer])
        self.align = align

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def format(self) -> str:
        suffix = f", align {self.align}" if self.align else ""
        return f"{self._lhs()}load {self.type}, {self.pointer.typed_ref()}{suffix}"


class StoreInst(Instruction):
    __slots__ = ("align",)

    opcode = "store"

    def __init__(self, value: Value, pointer: Value, align: Optional[int] = None):
        super().__init__(void, [value, pointer])
        self.align = align

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def format(self) -> str:
        suffix = f", align {self.align}" if self.align else ""
        return f"store {self.value.typed_ref()}, {self.pointer.typed_ref()}{suffix}"


class GetElementPtrInst(Instruction):
    __slots__ = ("source_type", "inbounds")

    opcode = "getelementptr"

    def __init__(
        self,
        source_type: IRType,
        pointer: Value,
        indices: Sequence[Value],
        inbounds: bool = False,
    ):
        super().__init__(ptr, [pointer, *indices])
        self.source_type = source_type
        self.inbounds = inbounds

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def format(self) -> str:
        ib = " inbounds" if self.inbounds else ""
        idx = ", ".join(op.typed_ref() for op in self.indices)
        return (
            f"{self._lhs()}getelementptr{ib} {self.source_type}, "
            f"{self.pointer.typed_ref()}, {idx}"
        )


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------
class CallInst(Instruction):
    """Direct call.  QIR programs only ever call declared/defined symbols
    directly, so the callee is a :class:`Function`, never a pointer value."""

    __slots__ = ("callee", "arg_attrs", "tail")

    opcode = "call"

    def __init__(
        self,
        callee: "Function",
        args: Sequence[Value],
        arg_attrs: Optional[Sequence[Tuple[str, ...]]] = None,
        tail: bool = False,
    ):
        ftype = callee.function_type
        if not ftype.vararg and len(args) != len(ftype.param_types):
            raise TypeError(
                f"call to {callee.name} expects {len(ftype.param_types)} args, "
                f"got {len(args)}"
            )
        super().__init__(ftype.return_type, list(args))
        self.callee = callee
        self.arg_attrs: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(a) for a in (arg_attrs or [()] * len(args))
        )
        self.tail = tail
        callee.callers.add(self)

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def drop_all_references(self) -> None:
        super().drop_all_references()
        self.callee.callers.discard(self)

    def format(self) -> str:
        parts = []
        for attrs, arg in zip(self.arg_attrs, self.operands):
            prefix = "".join(f"{a} " for a in attrs)
            parts.append(f"{arg.type} {prefix}{arg.ref()}")
        args = ", ".join(parts)
        lhs = "" if self.type.is_void else self._lhs()
        tail = "tail " if self.tail else ""
        return f"{lhs}{tail}call {self.callee.function_type.return_type} {self.callee.ref()}({args})"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------
class PhiInst(Instruction):
    __slots__ = ("incoming_blocks",)

    opcode = "phi"

    def __init__(self, type_: IRType):
        super().__init__(type_, [])
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, b in zip(self.operands, self.incoming_blocks):
            if b is block:
                return value
        raise KeyError(f"no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        keep_ops: List[Value] = []
        keep_blocks: List["BasicBlock"] = []
        for value, b in zip(self.operands, self.incoming_blocks):
            if b is block:
                value.remove_user(self)
            else:
                keep_ops.append(value)
                keep_blocks.append(b)
        self.operands = keep_ops
        self.incoming_blocks = keep_blocks

    def replace_block_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming_blocks = [new if b is old else b for b in self.incoming_blocks]

    def format(self) -> str:
        arms = ", ".join(
            f"[ {v.ref()}, %{b.name} ]" for v, b in self.incoming
        )
        return f"{self._lhs()}phi {self.type} {arms}"


class ReturnInst(Instruction):
    __slots__ = ()

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(void, [value] if value is not None else [])

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def format(self) -> str:
        if self.return_value is None:
            return "ret void"
        return f"ret {self.return_value.typed_ref()}"


class BranchInst(Instruction):
    __slots__ = ("target",)

    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(void, [])
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_block_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new

    def format(self) -> str:
        return f"br label %{self.target.name}"


class CondBranchInst(Instruction):
    __slots__ = ("true_target", "false_target")

    opcode = "br"

    def __init__(self, cond: Value, true_target: "BasicBlock", false_target: "BasicBlock"):
        super().__init__(void, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.true_target, self.false_target]

    def replace_block_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_target is old:
            self.true_target = new
        if self.false_target is old:
            self.false_target = new

    def format(self) -> str:
        return (
            f"br {self.condition.typed_ref()}, label %{self.true_target.name}, "
            f"label %{self.false_target.name}"
        )


class SwitchInst(Instruction):
    __slots__ = ("default", "cases")

    opcode = "switch"

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: Optional[Sequence[Tuple[Value, "BasicBlock"]]] = None,
    ):
        super().__init__(void, [value])
        self.default = default
        self.cases: List[Tuple[Value, "BasicBlock"]] = []
        for const, block in cases or []:
            self.add_case(const, block)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def add_case(self, const: Value, block: "BasicBlock") -> None:
        self.cases.append((const, block))

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [b for _, b in self.cases]

    def replace_block_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]

    def format(self) -> str:
        body = " ".join(
            f"{c.typed_ref()}, label %{b.name}" for c, b in self.cases
        )
        return (
            f"switch {self.value.typed_ref()}, label %{self.default.name} "
            f"[ {body} ]" if self.cases
            else f"switch {self.value.typed_ref()}, label %{self.default.name} [ ]"
        )


class UnreachableInst(Instruction):
    __slots__ = ()

    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(void, [])

    def format(self) -> str:
        return "unreachable"
