"""Modules: the top-level IR container (functions, globals, metadata)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.llvmir.function import Function
from repro.llvmir.types import FunctionType, StructType
from repro.llvmir.values import (
    Constant,
    ConstantInt,
    GlobalVariable,
    MetadataNode,
    MetadataString,
)
from repro.llvmir.types import i1, i32


class AttributeGroup:
    """``attributes #N = { ... }`` -- QIR entry points hang their profile
    metadata (``entry_point``, ``required_num_qubits`` ...) off these."""

    __slots__ = ("group_id", "attributes")

    def __init__(self, group_id: int, attributes: Optional[Dict[str, Optional[str]]] = None):
        self.group_id = group_id
        self.attributes: Dict[str, Optional[str]] = dict(attributes or {})

    def format(self) -> str:
        parts = []
        for key, value in self.attributes.items():
            if value is None:
                parts.append(f'"{key}"')
            else:
                parts.append(f'"{key}"="{value}"')
        return f"attributes #{self.group_id} = {{ {' '.join(parts)} }}"

    def __repr__(self) -> str:
        return f"<AttributeGroup #{self.group_id} {self.attributes}>"


# A module flag is (behavior, key, value); the value is an IR constant.
ModuleFlag = Tuple[int, str, Constant]


class Module:
    __slots__ = (
        "name",
        "source_filename",
        "functions",
        "globals",
        "struct_types",
        "attribute_groups",
        "module_flags",
        "named_metadata",
    )

    def __init__(self, name: str = "module"):
        self.name = name
        self.source_filename: Optional[str] = None
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.struct_types: Dict[str, StructType] = {}
        self.attribute_groups: Dict[int, AttributeGroup] = {}
        self.module_flags: List[ModuleFlag] = []
        self.named_metadata: Dict[str, List[MetadataNode]] = {}

    # -- functions ---------------------------------------------------------------
    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function @{fn.name}")
        fn.parent = self
        self.functions[fn.name] = fn
        return fn

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def declare_function(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Sequence[Optional[str]]] = None,
    ) -> Function:
        """Get-or-create a declaration; verifies type agreement on reuse."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type != function_type:
                raise ValueError(
                    f"conflicting declaration for @{name}: "
                    f"{existing.function_type} vs {function_type}"
                )
            return existing
        return self.add_function(Function(name, function_type, self, arg_names))

    def define_function(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Sequence[Optional[str]]] = None,
    ) -> Function:
        fn = self.add_function(Function(name, function_type, self, arg_names))
        return fn

    def remove_function(self, fn: Function) -> None:
        if fn.callers:
            raise ValueError(f"cannot remove @{fn.name}: it still has callers")
        del self.functions[fn.name]
        fn.parent = None

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def declared_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_declaration]

    def entry_points(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_entry_point]

    # -- globals ---------------------------------------------------------------
    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise ValueError(f"duplicate global @{gv.name}")
        self.globals[gv.name] = gv
        return gv

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    # -- struct types ---------------------------------------------------------------
    def declare_struct(self, struct: StructType) -> StructType:
        assert struct.name is not None
        existing = self.struct_types.get(struct.name)
        if existing is not None:
            return existing
        self.struct_types[struct.name] = struct
        return struct

    # -- attribute groups ---------------------------------------------------------
    def create_attribute_group(
        self, attributes: Optional[Dict[str, Optional[str]]] = None
    ) -> AttributeGroup:
        group_id = max(self.attribute_groups, default=-1) + 1
        group = AttributeGroup(group_id, attributes)
        self.attribute_groups[group_id] = group
        return group

    # -- module flags (QIR profile identification) -----------------------------
    def add_module_flag(self, behavior: int, key: str, value: Constant) -> None:
        self.module_flags.append((behavior, key, value))

    def get_module_flag(self, key: str) -> Optional[Constant]:
        for _, k, value in self.module_flags:
            if k == key:
                return value
        return None

    def set_qir_profile_flags(
        self,
        major: int = 1,
        minor: int = 0,
        dynamic_qubit_management: bool = False,
        dynamic_result_management: bool = False,
    ) -> None:
        """Emit the four module flags the QIR base/adaptive profiles require."""
        self.add_module_flag(1, "qir_major_version", ConstantInt(i32, major))
        self.add_module_flag(7, "qir_minor_version", ConstantInt(i32, minor))
        self.add_module_flag(
            1, "dynamic_qubit_management", ConstantInt(i1, int(dynamic_qubit_management))
        )
        self.add_module_flag(
            1,
            "dynamic_result_management",
            ConstantInt(i1, int(dynamic_result_management)),
        )

    # -- misc ---------------------------------------------------------------
    def instruction_count(self) -> int:
        return sum(len(f) for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
