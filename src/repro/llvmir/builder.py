"""IRBuilder: positioned instruction construction, mirroring llvmlite/LLVM.

The builder keeps an insertion point (a basic block and an index within it)
and appends instructions there.  It is used by the QIR builder layer, the
OpenQASM importer, and by tests that construct IR fragments directly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GetElementPtrInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.llvmir.types import IRType
from repro.llvmir.values import Value


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None):
        self._block: Optional[BasicBlock] = block
        self._index: Optional[int] = None  # None = append at end

    # -- positioning ---------------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("builder has no insertion block")
        return self._block

    @property
    def function(self) -> Function:
        fn = self.block.parent
        assert fn is not None
        return fn

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._index = None

    def position_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self._block = inst.parent
        self._index = inst.parent.instructions.index(inst)

    def _insert(self, inst: Instruction, name: Optional[str] = None) -> Instruction:
        if name is not None:
            inst.name = name
        if self._index is None:
            self.block.append(inst)
        else:
            self.block.insert(self._index, inst)
            self._index += 1
        return inst

    # -- arithmetic ---------------------------------------------------------
    def binop(
        self,
        opcode: str,
        lhs: Value,
        rhs: Value,
        name: Optional[str] = None,
        flags: Sequence[str] = (),
    ) -> BinaryInst:
        return self._insert(BinaryInst(opcode, lhs, rhs, flags), name)

    def add(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("shl", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: Optional[str] = None) -> BinaryInst:
        return self.binop("fdiv", lhs, rhs, name)

    def icmp(
        self, predicate: str, lhs: Value, rhs: Value, name: Optional[str] = None
    ) -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs), name)

    def fcmp(
        self, predicate: str, lhs: Value, rhs: Value, name: Optional[str] = None
    ) -> FCmpInst:
        return self._insert(FCmpInst(predicate, lhs, rhs), name)

    def select(
        self, cond: Value, iftrue: Value, iffalse: Value, name: Optional[str] = None
    ) -> SelectInst:
        return self._insert(SelectInst(cond, iftrue, iffalse), name)

    def cast(
        self, opcode: str, value: Value, dest_type: IRType, name: Optional[str] = None
    ) -> CastInst:
        return self._insert(CastInst(opcode, value, dest_type), name)

    def zext(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("zext", value, dest_type, name)

    def sext(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("sext", value, dest_type, name)

    def trunc(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("trunc", value, dest_type, name)

    def inttoptr(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("inttoptr", value, dest_type, name)

    def ptrtoint(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("ptrtoint", value, dest_type, name)

    def sitofp(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("sitofp", value, dest_type, name)

    def fptosi(self, value: Value, dest_type: IRType, name: Optional[str] = None) -> CastInst:
        return self.cast("fptosi", value, dest_type, name)

    # -- memory ---------------------------------------------------------------
    def alloca(
        self, allocated_type: IRType, align: Optional[int] = None, name: Optional[str] = None
    ) -> AllocaInst:
        return self._insert(AllocaInst(allocated_type, align), name)

    def load(
        self,
        loaded_type: IRType,
        pointer: Value,
        align: Optional[int] = None,
        name: Optional[str] = None,
    ) -> LoadInst:
        return self._insert(LoadInst(loaded_type, pointer, align), name)

    def store(self, value: Value, pointer: Value, align: Optional[int] = None) -> StoreInst:
        return self._insert(StoreInst(value, pointer, align))

    def gep(
        self,
        source_type: IRType,
        pointer: Value,
        indices: Sequence[Value],
        inbounds: bool = False,
        name: Optional[str] = None,
    ) -> GetElementPtrInst:
        return self._insert(GetElementPtrInst(source_type, pointer, indices, inbounds), name)

    # -- calls / control flow ---------------------------------------------------
    def call(
        self,
        callee: Function,
        args: Sequence[Value] = (),
        name: Optional[str] = None,
        arg_attrs: Optional[Sequence[Tuple[str, ...]]] = None,
    ) -> CallInst:
        return self._insert(CallInst(callee, args, arg_attrs), name)

    def phi(self, type_: IRType, name: Optional[str] = None) -> PhiInst:
        return self._insert(PhiInst(type_), name)

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value))

    def ret_void(self) -> ReturnInst:
        return self._insert(ReturnInst(None))

    def br(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target))

    def cbr(
        self, cond: Value, true_target: BasicBlock, false_target: BasicBlock
    ) -> CondBranchInst:
        return self._insert(CondBranchInst(cond, true_target, false_target))

    def switch(
        self,
        value: Value,
        default: BasicBlock,
        cases: Optional[Sequence[Tuple[Value, BasicBlock]]] = None,
    ) -> SwitchInst:
        return self._insert(SwitchInst(value, default, cases))

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())
