"""A from-scratch LLVM-IR-subset infrastructure sufficient for QIR.

This package is the reproduction's stand-in for LLVM itself: an in-memory
IR (types, values, instructions, basic blocks, functions, modules), a text
lexer/parser for ``.ll`` files, a printer that round-trips, and a verifier.

The subset is chosen to cover everything QIR programs use -- see the QIR
specification and the paper's Examples 2, 4, and 6:

* opaque pointers (``ptr``) and legacy typed pointers (``%Qubit*``),
* integer/floating arithmetic, comparisons, bitwise ops,
* ``alloca``/``load``/``store``/``getelementptr`` memory operations,
* control flow (``br``, ``switch``, ``phi``, ``select``, ``ret``),
* ``call`` with external declarations (the QIS/RT functions),
* constant expressions (``inttoptr (i64 1 to ptr)`` static qubit addresses),
* attribute groups (``entry_point`` etc.) and module flags metadata.
"""

from repro.llvmir.types import (
    ArrayType,
    DoubleType,
    FunctionType,
    IntType,
    IRType,
    LabelType,
    PointerType,
    StructType,
    VoidType,
    double,
    i1,
    i8,
    i16,
    i32,
    i64,
    label,
    ptr,
    void,
)
from repro.llvmir.values import (
    Argument,
    ConstantArray,
    ConstantExpr,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    ConstantString,
    ConstantUndef,
    GlobalVariable,
    MetadataNode,
    MetadataString,
    Value,
)
from repro.llvmir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GetElementPtrInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.module import AttributeGroup, Module
from repro.llvmir.builder import IRBuilder
from repro.llvmir.lexer import Lexer, LexError, Token
from repro.llvmir.parser import ParseError, parse_assembly
from repro.llvmir.printer import print_module
from repro.llvmir.verifier import VerificationError, verify_module

__all__ = [
    "ArrayType",
    "DoubleType",
    "FunctionType",
    "IntType",
    "IRType",
    "LabelType",
    "PointerType",
    "StructType",
    "VoidType",
    "double",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "label",
    "ptr",
    "void",
    "Argument",
    "ConstantArray",
    "ConstantExpr",
    "ConstantFloat",
    "ConstantInt",
    "ConstantNull",
    "ConstantPointerInt",
    "ConstantString",
    "ConstantUndef",
    "GlobalVariable",
    "MetadataNode",
    "MetadataString",
    "Value",
    "AllocaInst",
    "BinaryInst",
    "BranchInst",
    "CallInst",
    "CastInst",
    "CondBranchInst",
    "FCmpInst",
    "GetElementPtrInst",
    "ICmpInst",
    "Instruction",
    "LoadInst",
    "PhiInst",
    "ReturnInst",
    "SelectInst",
    "StoreInst",
    "SwitchInst",
    "UnreachableInst",
    "BasicBlock",
    "Function",
    "AttributeGroup",
    "Module",
    "IRBuilder",
    "Lexer",
    "LexError",
    "Token",
    "ParseError",
    "parse_assembly",
    "print_module",
    "VerificationError",
    "verify_module",
]
