"""Functions: declarations (QIS/RT externals) and definitions (entry points)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, TYPE_CHECKING

from repro.llvmir.block import BasicBlock
from repro.llvmir.instructions import CallInst, Instruction
from repro.llvmir.types import FunctionType, IRType
from repro.llvmir.values import Argument, Value, _quote_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.llvmir.module import AttributeGroup, Module


class Function(Value):
    """A function symbol.

    A *declaration* has no blocks (``is_declaration``); QIR programs declare
    every ``__quantum__qis__*`` / ``__quantum__rt__*`` function this way and
    define one or more entry points.
    """

    __slots__ = (
        "function_type",
        "parent",
        "arguments",
        "blocks",
        "attributes",
        "attribute_group",
        "callers",
    )

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        module: Optional["Module"] = None,
        arg_names: Optional[Sequence[Optional[str]]] = None,
    ):
        super().__init__(function_type, name)
        self.function_type = function_type
        self.parent = module
        names = list(arg_names or [None] * len(function_type.param_types))
        self.arguments: List[Argument] = [
            Argument(t, n, self, i)
            for i, (t, n) in enumerate(zip(function_type.param_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        # Bare string attributes plus key="value" pairs, e.g.
        # {"entry_point": None, "required_num_qubits": "2"}.
        self.attributes: Dict[str, Optional[str]] = {}
        self.attribute_group: Optional["AttributeGroup"] = None
        self.callers: Set[CallInst] = set()

    # -- identity ---------------------------------------------------------------
    def ref(self) -> str:
        return f"@{_quote_name(self.name or '')}"

    def typed_ref(self) -> str:
        return f"ptr {self.ref()}"

    @property
    def return_type(self) -> IRType:
        return self.function_type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    # -- attributes ---------------------------------------------------------------
    def all_attributes(self) -> Dict[str, Optional[str]]:
        merged: Dict[str, Optional[str]] = {}
        if self.attribute_group is not None:
            merged.update(self.attribute_group.attributes)
        merged.update(self.attributes)
        return merged

    def get_attribute(self, key: str) -> Optional[str]:
        return self.all_attributes().get(key)

    def has_attribute(self, key: str) -> bool:
        return key in self.all_attributes()

    @property
    def is_entry_point(self) -> bool:
        return self.has_attribute("entry_point")

    # -- structure ---------------------------------------------------------------
    def append_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        self.blocks.append(block)
        return block

    def create_block(self, name: Optional[str] = None) -> BasicBlock:
        return self.append_block(BasicBlock(name, self))

    def remove_block(self, block: BasicBlock) -> None:
        for inst in list(block.instructions):
            block.remove(inst)
        self.blocks.remove(block)
        block.parent = None

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __len__(self) -> int:
        return sum(len(b) for b in self.blocks)

    # -- naming ---------------------------------------------------------------
    def assign_names(self) -> None:
        """Give every unnamed argument, block and instruction a numeric name.

        Mirrors LLVM's implicit numbering: one counter over arguments, basic
        blocks, and instruction results, in program order.  Existing textual
        names are preserved; clashes between existing numeric names and the
        counter are avoided by always picking the next free number.
        """
        taken = {a.name for a in self.arguments if a.name is not None}
        taken |= {b.name for b in self.blocks if b.name is not None}
        for inst in self.instructions():
            if inst.name is not None:
                taken.add(inst.name)

        counter = 0

        def next_name() -> str:
            nonlocal counter
            while str(counter) in taken:
                counter += 1
            name = str(counter)
            taken.add(name)
            counter += 1
            return name

        for arg in self.arguments:
            if arg.name is None:
                arg.name = next_name()
        for block in self.blocks:
            if block.name is None:
                block.name = next_name()
            for inst in block.instructions:
                if inst.name is None and not inst.type.is_void:
                    inst.name = next_name()

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.ref()} : {self.function_type}>"
