"""Module verifier: structural well-formedness checks.

Run after parsing and after every transformation pass in tests; the pass
manager can be configured to verify between passes (mirroring
``opt -verify-each``).
"""

from __future__ import annotations

from typing import Set

from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    CallInst,
    CondBranchInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    StoreInst,
)
from repro.llvmir.module import Module
from repro.llvmir.types import IntType
from repro.llvmir.values import Argument, Constant, GlobalVariable, Value


class VerificationError(ValueError):
    pass


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` on the first structural problem."""
    for fn in module.functions.values():
        if not fn.is_declaration:
            _verify_function(fn, module)


def _verify_function(fn: Function, module: Module) -> None:
    if not fn.blocks:
        return

    defined: Set[Value] = set(fn.arguments)
    block_set = set(fn.blocks)

    for block in fn.blocks:
        if block.parent is not fn:
            raise VerificationError(
                f"@{fn.name}: block {block.name} has wrong parent"
            )
        term = block.terminator
        if term is None:
            raise VerificationError(
                f"@{fn.name}: block %{block.name} lacks a terminator"
            )
        for inst in block.instructions:
            if inst.is_terminator and inst is not term:
                raise VerificationError(
                    f"@{fn.name}: terminator in the middle of %{block.name}"
                )
        for succ in block.successors():
            if succ not in block_set:
                raise VerificationError(
                    f"@{fn.name}: branch to foreign block %{succ.name}"
                )
        for inst in block.instructions:
            defined.add(inst)

    # Dominance-free def check: every non-constant operand must be defined
    # somewhere in the function (full dominance checking lives in the
    # analysis package; the verifier only catches dangling references).
    for block in fn.blocks:
        preds = block.predecessors()
        for inst in block.instructions:
            if inst.parent is not block:
                raise VerificationError(
                    f"@{fn.name}: instruction parent pointer corrupt in %{block.name}"
                )
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalVariable, Function)):
                    continue
                if isinstance(op, (Argument, Instruction)):
                    if op not in defined:
                        raise VerificationError(
                            f"@{fn.name}: operand {op!r} of {inst!r} is not "
                            "defined in this function"
                        )
                    continue
                raise VerificationError(
                    f"@{fn.name}: unresolved operand {op!r} in {inst!r}"
                )
            if isinstance(inst, PhiInst):
                if block.instructions.index(inst) >= block.first_non_phi_index():
                    raise VerificationError(
                        f"@{fn.name}: phi after non-phi in %{block.name}"
                    )
                incoming_blocks = set(inst.incoming_blocks)
                if incoming_blocks != set(preds):
                    raise VerificationError(
                        f"@{fn.name}: phi in %{block.name} covers "
                        f"{sorted(b.name or '?' for b in incoming_blocks)} but "
                        f"predecessors are {sorted(b.name or '?' for b in preds)}"
                    )
                if len(inst.incoming_blocks) != len(set(inst.incoming_blocks)):
                    raise VerificationError(
                        f"@{fn.name}: duplicate phi incoming block in %{block.name}"
                    )
            if isinstance(inst, ReturnInst):
                want = fn.return_type
                got = inst.return_value.type if inst.return_value is not None else None
                if want.is_void:
                    if got is not None:
                        raise VerificationError(
                            f"@{fn.name}: returning a value from a void function"
                        )
                elif got != want:
                    raise VerificationError(
                        f"@{fn.name}: return type mismatch ({got} vs {want})"
                    )
            if isinstance(inst, CondBranchInst):
                if inst.condition.type != IntType(1):
                    raise VerificationError(
                        f"@{fn.name}: conditional branch on non-i1"
                    )
            if isinstance(inst, CallInst):
                callee = inst.callee
                if callee.parent is not module:
                    raise VerificationError(
                        f"@{fn.name}: call to function outside this module"
                    )
                ftype = callee.function_type
                if not ftype.vararg:
                    if len(inst.operands) != len(ftype.param_types):
                        raise VerificationError(
                            f"@{fn.name}: call to @{callee.name} has "
                            f"{len(inst.operands)} args, expects "
                            f"{len(ftype.param_types)}"
                        )
                    for arg, want_t in zip(inst.operands, ftype.param_types):
                        if arg.type != want_t:
                            raise VerificationError(
                                f"@{fn.name}: call to @{callee.name} arg type "
                                f"{arg.type} != {want_t}"
                            )
            if isinstance(inst, StoreInst) and not inst.pointer.type.is_pointer:
                raise VerificationError(f"@{fn.name}: store to non-pointer")
            if isinstance(inst, LoadInst) and not inst.pointer.type.is_pointer:
                raise VerificationError(f"@{fn.name}: load from non-pointer")
