"""Standard circuit workloads in the custom circuit IR."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.circuit.circuit import Circuit


def bell_circuit(measure: bool = True) -> Circuit:
    """The paper's running example (Fig. 1): a Bell pair."""
    circuit = Circuit("bell")
    circuit.qreg(2, "q")
    if measure:
        circuit.creg(2, "c")
    circuit.h(0)
    circuit.cx(0, 1)
    if measure:
        circuit.measure_all()
    return circuit


def ghz_circuit(num_qubits: int, measure: bool = True) -> Circuit:
    """GHZ chain: H then a CNOT ladder -- all-Clifford, arbitrarily wide."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    circuit = Circuit(f"ghz{num_qubits}")
    circuit.qreg(num_qubits, "q")
    if measure:
        circuit.creg(num_qubits, "c")
    circuit.h(0)
    for i in range(num_qubits - 1):
        circuit.cx(i, i + 1)
    if measure:
        circuit.measure_all()
    return circuit


def qft_circuit(num_qubits: int, measure: bool = False) -> Circuit:
    """Textbook quantum Fourier transform (H + controlled phases + swaps)."""
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = Circuit(f"qft{num_qubits}")
    circuit.qreg(num_qubits, "q")
    if measure:
        circuit.creg(num_qubits, "c")
    # Little-endian convention (qubit 0 = LSB of the basis index):
    # process from the most significant qubit down, then reverse the order,
    # so that QFT|k> = (1/sqrt(N)) sum_j exp(2*pi*i*j*k/N) |j>.
    for i in reversed(range(num_qubits)):
        circuit.h(i)
        for j in range(i):
            circuit.cp(math.pi / (1 << (i - j)), j, i)
    for i in range(num_qubits // 2):
        circuit.swap(i, num_qubits - 1 - i)
    if measure:
        circuit.measure_all()
    return circuit


def grover_circuit(num_qubits: int, marked: int, iterations: Optional[int] = None) -> Circuit:
    """Grover search for one marked basis state over ``num_qubits`` qubits.

    Oracle and diffuser are built from multi-controlled phase flips
    (decomposed via H + multi-controlled X using ccx chains with ancillas
    for width > 2, or directly for small widths).
    """
    if not 0 <= marked < (1 << num_qubits):
        raise ValueError("marked state out of range")
    if num_qubits < 2:
        raise ValueError("Grover needs at least 2 qubits")
    n_anc = max(0, num_qubits - 2)
    circuit = Circuit(f"grover{num_qubits}")
    q = circuit.qreg(num_qubits, "q")
    anc = circuit.qreg(n_anc, "anc") if n_anc else None
    circuit.creg(num_qubits, "c")

    if iterations is None:
        iterations = max(1, int(round(math.pi / 4 * math.sqrt(2**num_qubits))))

    def mcz() -> None:
        """Multi-controlled Z over all search qubits."""
        if num_qubits == 2:
            circuit.cz(q[0], q[1])
            return
        # Z on last qubit controlled on the rest: H t; MCX; H t.
        target = q[num_qubits - 1]
        circuit.h(target)
        _mcx(circuit, [q[i] for i in range(num_qubits - 1)], target, anc)
        circuit.h(target)

    def oracle() -> None:
        for i in range(num_qubits):
            if not (marked >> i) & 1:
                circuit.x(q[i])
        mcz()
        for i in range(num_qubits):
            if not (marked >> i) & 1:
                circuit.x(q[i])

    def diffuser() -> None:
        for i in range(num_qubits):
            circuit.h(q[i])
            circuit.x(q[i])
        mcz()
        for i in range(num_qubits):
            circuit.x(q[i])
            circuit.h(q[i])

    for i in range(num_qubits):
        circuit.h(q[i])
    for _ in range(iterations):
        oracle()
        diffuser()
    for i in range(num_qubits):
        circuit.measure(q[i], i)
    return circuit


def _mcx(circuit: Circuit, controls, target, anc) -> None:
    """Multi-controlled X via a ccx ladder over ancilla qubits."""
    k = len(controls)
    if k == 1:
        circuit.cx(controls[0], target)
        return
    if k == 2:
        circuit.ccx(controls[0], controls[1], target)
        return
    assert anc is not None and len(anc) >= k - 2
    circuit.ccx(controls[0], controls[1], anc[0])
    for i in range(2, k - 1):
        circuit.ccx(controls[i], anc[i - 2], anc[i - 1])
    circuit.ccx(controls[k - 1], anc[k - 3], target)
    for i in range(k - 2, 1, -1):
        circuit.ccx(controls[i], anc[i - 2], anc[i - 1])
    circuit.ccx(controls[0], controls[1], anc[0])


_CLIFFORD_1Q = ["h", "x", "y", "z", "s", "s_adj"]
_NONCLIFFORD_1Q = ["t", "t_adj", "rx", "ry", "rz"]
_TWO_Q = ["cnot", "cz", "swap"]


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    clifford_only: bool = False,
    measure: bool = True,
    two_qubit_fraction: float = 0.3,
) -> Circuit:
    """Layered random circuit: each layer fills qubits with random 1q/2q gates."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"random{num_qubits}x{depth}")
    circuit.qreg(num_qubits, "q")
    if measure:
        circuit.creg(num_qubits, "c")
    one_q = _CLIFFORD_1Q if clifford_only else _CLIFFORD_1Q + _NONCLIFFORD_1Q
    for _ in range(depth):
        free = list(range(num_qubits))
        rng.shuffle(free)
        while free:
            if len(free) >= 2 and rng.random() < two_qubit_fraction:
                a, b = free.pop(), free.pop()
                circuit.gate(str(rng.choice(_TWO_Q)), [a, b])
            else:
                qubit = free.pop()
                gate = str(rng.choice(one_q))
                if gate in ("rx", "ry", "rz"):
                    circuit.gate(gate, [qubit], [float(rng.uniform(0, 2 * math.pi))])
                else:
                    circuit.gate(gate, [qubit])
    if measure:
        circuit.measure_all()
    return circuit


def trotter_ising_circuit(
    num_qubits: int,
    steps: int,
    dt: float = 0.1,
    coupling: float = 1.0,
    field: float = 1.0,
    measure: bool = True,
) -> Circuit:
    """First-order Trotterisation of transverse-field Ising dynamics.

    H = -J sum_i Z_i Z_{i+1} - h sum_i X_i, evolved for time ``steps*dt``
    via alternating ``rzz``/``rx`` layers.  Consecutive steps produce
    adjacent same-axis rotations at the layer boundary, which is what
    makes this the natural rotation-merging workload.
    """
    if num_qubits < 2:
        raise ValueError("Ising chain needs at least two qubits")
    if steps < 1:
        raise ValueError("need at least one Trotter step")
    circuit = Circuit(f"ising{num_qubits}x{steps}")
    circuit.qreg(num_qubits, "q")
    if measure:
        circuit.creg(num_qubits, "c")
    for _ in range(steps):
        if coupling != 0.0:
            for i in range(num_qubits - 1):
                circuit.gate("rzz", [i, i + 1], [-2.0 * coupling * dt])
        if field != 0.0:
            for i in range(num_qubits):
                circuit.rx(-2.0 * field * dt, i)
    if measure:
        circuit.measure_all()
    return circuit
