"""QIR-program workloads (textual QIR, via the exporter or direct templates)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.frontend.exporter import export_circuit_text
from repro.workloads.circuits import bell_circuit, ghz_circuit, qft_circuit, random_circuit


def bell_qir(addressing: str = "static") -> str:
    """Figure 1's program in either addressing mode (Ex. 2 vs Ex. 6)."""
    return export_circuit_text(bell_circuit(), addressing=addressing)


def ghz_qir(num_qubits: int, addressing: str = "static") -> str:
    return export_circuit_text(ghz_circuit(num_qubits), addressing=addressing)


def qft_qir(num_qubits: int, addressing: str = "static", measure: bool = True) -> str:
    return export_circuit_text(
        qft_circuit(num_qubits, measure=measure), addressing=addressing
    )


def random_qir(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    addressing: str = "static",
    clifford_only: bool = False,
) -> str:
    return export_circuit_text(
        random_circuit(num_qubits, depth, seed=seed, clifford_only=clifford_only),
        addressing=addressing,
    )


def counted_loop_qir(
    num_qubits: int,
    gate: str = "h",
    measure: bool = True,
    step: int = 1,
) -> str:
    """The paper's Example 4: a FOR-loop applying one gate per qubit.

    Emitted in the exact memory form of the paper's listing (alloca'd
    counter, load/compare/branch), so the unrolling pipeline has real work
    to do.  Full QIR (contains a loop), not base profile -- until unrolled.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    measures = []
    declares = [f"declare void @__quantum__qis__{gate}__body(ptr)"]
    if measure:
        for i in range(num_qubits):
            q = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
            r = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
            measures.append(
                f"  call void @__quantum__qis__mz__body(ptr {q}, ptr writeonly {r})"
            )
        declares.append("declare void @__quantum__qis__mz__body(ptr, ptr writeonly)")
    measure_block = "\n".join(measures)
    declare_block = "\n".join(declares)
    return f"""
define void @main() #0 {{
entry:
  %i = alloca i64, align 8
  store i64 0, ptr %i, align 8
  br label %for.header

for.header:
  %0 = load i64, ptr %i, align 8
  %cond = icmp slt i64 %0, {num_qubits * step}
  br i1 %cond, label %body, label %exit

body:
  %1 = load i64, ptr %i, align 8
  %q = inttoptr i64 %1 to ptr
  call void @__quantum__qis__{gate}__body(ptr %q)
  %2 = load i64, ptr %i, align 8
  %3 = add nsw i64 %2, {step}
  store i64 %3, ptr %i, align 8
  br label %for.header

exit:
{measure_block}
  ret void
}}

{declare_block}

attributes #0 = {{ "entry_point" "qir_profiles"="full" "required_num_qubits"="{num_qubits * step}" "required_num_results"="{num_qubits if measure else 0}" }}

!llvm.module.flags = !{{!0}}
!0 = !{{i32 1, !"qir_major_version", i32 1}}
"""


def rotation_ladder_qir(
    num_qubits: int = 2, depth: int = 32, angle: float = 0.3
) -> str:
    """Deep per-qubit rotation runs + terminal measurement: fusion's home turf.

    Each qubit gets ``depth`` consecutive single-qubit rotations (cycling
    rx/ry/rz with drifting angles) before a terminal ``mz``.  Every run of
    same-support gates coalesces into one pre-multiplied 2x2 kernel at
    plan-compile time, so the fused executor applies ``num_qubits``
    matrices where the interpreter dispatches ``num_qubits * depth``
    intrinsic calls -- the spread ``runtime.fusion.speedup`` measures.
    Non-Clifford throughout, so neither the stabilizer backend nor the
    Clifford-prefix router claims it, and measurement-free until the end,
    so the sampling fast path *does* accept it (disable sampling to
    isolate the fused-kernel win).
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if depth < 1:
        raise ValueError("need at least one rotation per qubit")
    rotations = ("rx", "ry", "rz")
    lines: List[str] = []
    for i in range(num_qubits):
        q = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
        for d in range(depth):
            gate = rotations[d % len(rotations)]
            theta = angle + 0.05 * d + 0.01 * i
            lines.append(
                f"  call void @__quantum__qis__{gate}__body(double {theta!r}, ptr {q})"
            )
    for i in range(num_qubits):
        q = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
        res = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
        lines.append(
            f"  call void @__quantum__qis__mz__body(ptr {q}, ptr writeonly {res})"
        )
    body = "\n".join(lines)
    return f"""
define void @main() #0 {{
entry:
{body}
  ret void
}}

declare void @__quantum__qis__rx__body(double, ptr)
declare void @__quantum__qis__ry__body(double, ptr)
declare void @__quantum__qis__rz__body(double, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr writeonly)

attributes #0 = {{ "entry_point" "qir_profiles"="base_profile" "required_num_qubits"="{num_qubits}" "required_num_results"="{num_qubits}" }}

!llvm.module.flags = !{{!0}}
!0 = !{{i32 1, !"qir_major_version", i32 1}}
"""


def reset_chain_qir(num_qubits: int = 2, rounds: int = 3, angle: float = 0.7) -> str:
    """Rotation + mid-circuit reset/re-measure chain: the batched scheduler's
    home turf.

    Each round rotates every qubit by a (non-Clifford) ``ry`` angle,
    measures it into its static result slot, then resets it -- so the
    program re-measures the same slots every round.  The deferred-
    measurement sampling fast path rejects this shape (gates and resets
    after measurement), and the stabilizer backend cannot take it either
    (arbitrary rotations), which leaves per-shot interpretation -- exactly
    the loop ``BatchedScheduler`` vectorises.  No classical feedback, so
    the batch never aborts.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if rounds < 1:
        raise ValueError("need at least one round")
    lines: List[str] = []
    for r in range(rounds):
        last = r == rounds - 1
        for i in range(num_qubits):
            q = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
            res = "null" if i == 0 else f"inttoptr (i64 {i} to ptr)"
            theta = angle * (r + 1) + 0.1 * i
            lines.append(
                f"  call void @__quantum__qis__ry__body(double {theta!r}, ptr {q})"
            )
            lines.append(
                f"  call void @__quantum__qis__mz__body(ptr {q}, ptr writeonly {res})"
            )
            if not last:
                lines.append(f"  call void @__quantum__qis__reset__body(ptr {q})")
    body = "\n".join(lines)
    return f"""
define void @main() #0 {{
entry:
{body}
  ret void
}}

declare void @__quantum__qis__ry__body(double, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr writeonly)
declare void @__quantum__qis__reset__body(ptr)

attributes #0 = {{ "entry_point" "qir_profiles"="base_profile" "required_num_qubits"="{num_qubits}" "required_num_results"="{num_qubits}" }}

!llvm.module.flags = !{{!0}}
!0 = !{{i32 1, !"qir_major_version", i32 1}}
"""


def vqe_ansatz_qir(angles: Sequence[float], measure_basis: str = "zz") -> str:
    """One VQE iteration's circuit: a 2-qubit hardware-efficient ansatz.

    The classical optimisation loop lives on the host (see
    ``examples/vqe_hybrid_loop.py``) -- the per-iteration circuit is a
    fresh QIR program, the standard near-term hybrid pattern the paper's
    Section II-B motivates.
    """
    if len(angles) != 4:
        raise ValueError("the ansatz takes 4 angles")
    from repro.circuit.circuit import Circuit

    circuit = Circuit("vqe_ansatz")
    circuit.qreg(2, "q")
    circuit.creg(2, "c")
    circuit.ry(angles[0], 0)
    circuit.ry(angles[1], 1)
    circuit.cx(0, 1)
    circuit.ry(angles[2], 0)
    circuit.ry(angles[3], 1)
    if measure_basis == "xx":
        circuit.h(0)
        circuit.h(1)
    circuit.measure_all()
    return export_circuit_text(circuit, addressing="static")


def ghz_qir_legacy(num_qubits: int, legacy: bool = True) -> str:
    """GHZ in either QIR syntax dialect, with identical program structure.

    ``legacy=True`` emits the pre-LLVM-16 typed-pointer spelling of the
    original QIR specification (``%Qubit*``, ``%Array*``, opaque struct
    declarations) that the paper's footnote 1 calls out; ``legacy=False``
    emits the same instructions with modern opaque pointers.  The EX3
    benchmark parses both to measure the dialect's bookkeeping cost; the
    parser normalises either to identical in-memory IR.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    lines: List[str] = []

    qubit_t = "%Qubit*" if legacy else "ptr"
    result_t = "%Result*" if legacy else "ptr"
    array_t = "%Array*" if legacy else "ptr"

    def element(var: str, index: int) -> str:
        return (
            f"  %{var} = call {qubit_t} "
            f"@__quantum__rt__array_get_element_ptr_1d({array_t} %arr, i64 {index})"
        )

    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"v{counter}"

    q0 = fresh()
    lines.append(element(q0, 0))
    lines.append(f"  call void @__quantum__qis__h__body({qubit_t} %{q0})")
    for i in range(num_qubits - 1):
        a, b = fresh(), fresh()
        lines.append(element(a, i))
        lines.append(element(b, i + 1))
        lines.append(
            f"  call void @__quantum__qis__cnot__body({qubit_t} %{a}, {qubit_t} %{b})"
        )
    for i in range(num_qubits):
        q = fresh()
        lines.append(element(q, i))
        r = "null" if i == 0 else f"inttoptr (i64 {i} to {result_t})"
        lines.append(
            f"  call void @__quantum__qis__mz__body({qubit_t} %{q}, "
            f"{result_t} writeonly {r})"
        )
    body = "\n".join(lines)
    structs = (
        "%Qubit = type opaque\n%Result = type opaque\n%Array = type opaque\n"
        if legacy
        else ""
    )
    return f"""
{structs}
define void @main() #0 {{
entry:
  %arr = call {array_t} @__quantum__rt__qubit_allocate_array(i64 {num_qubits})
{body}
  call void @__quantum__rt__qubit_release_array({array_t} %arr)
  ret void
}}

declare {array_t} @__quantum__rt__qubit_allocate_array(i64)
declare {qubit_t} @__quantum__rt__array_get_element_ptr_1d({array_t}, i64)
declare void @__quantum__qis__h__body({qubit_t})
declare void @__quantum__qis__cnot__body({qubit_t}, {qubit_t})
declare void @__quantum__qis__mz__body({qubit_t}, {result_t} writeonly)
declare void @__quantum__rt__qubit_release_array({array_t})

attributes #0 = {{ "entry_point" "qir_profiles"="full" "required_num_qubits"="{num_qubits}" "required_num_results"="{num_qubits}" }}

!llvm.module.flags = !{{!0}}
!0 = !{{i32 1, !"qir_major_version", i32 1}}
"""
