"""Workload generators used by the examples, tests, and benchmarks."""

from repro.workloads.circuits import (
    bell_circuit,
    ghz_circuit,
    grover_circuit,
    qft_circuit,
    random_circuit,
    trotter_ising_circuit,
)
from repro.workloads.qir_programs import (
    bell_qir,
    counted_loop_qir,
    ghz_qir,
    qft_qir,
    random_qir,
    rotation_ladder_qir,
    vqe_ansatz_qir,
)
from repro.workloads.qec import repetition_code_qir, teleportation_qir

__all__ = [
    "bell_circuit",
    "ghz_circuit",
    "grover_circuit",
    "qft_circuit",
    "random_circuit",
    "trotter_ising_circuit",
    "bell_qir",
    "counted_loop_qir",
    "ghz_qir",
    "qft_qir",
    "random_qir",
    "rotation_ladder_qir",
    "vqe_ansatz_qir",
    "repetition_code_qir",
    "teleportation_qir",
]
