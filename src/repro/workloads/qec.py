"""Feedback-heavy workloads: QEC repetition code and teleportation.

These are the programs Section IV-B is about: mid-circuit measurement,
classical decoding, and conditional correction *while qubits wait*.  The
``classical_work`` knob inserts a chain of integer operations between
readout and correction -- the decoder-cost stand-in the HYB benchmark
sweeps to find the feasibility crossover.
"""

from __future__ import annotations

from typing import Optional

from repro.llvmir.types import i1, i64
from repro.llvmir.values import ConstantInt
from repro.qir.builder import SimpleModule
from repro.qir.profiles import AdaptiveProfile


def repetition_code_qir(
    distance: int = 3,
    inject_error: Optional[int] = None,
    classical_work: int = 0,
    logical_one: bool = False,
    idle_rounds: int = 0,
    rounds: int = 1,
) -> str:
    """``rounds`` rounds of the distance-``distance`` bit-flip repetition code.

    Layout: data qubits ``0..d-1``, syndrome ancillas ``d..2d-2`` (reset
    and reused between rounds, the realistic QEC cadence).  Results:
    round r's syndromes occupy ``r*(d-1)..(r+1)*(d-1)-1``; the final data
    readout takes the last ``d`` result slots.  A single injected X error
    (before round 0) is decoded and corrected through adaptive feedback;
    the decoded data measurement must therefore always equal the encoded
    logical value.

    ``idle_rounds`` inserts that many identity gates on each data qubit
    before every syndrome-extraction round -- noise-attracting "memory
    time" for the code-capacity noise experiments (the NOISE benchmark
    runs this under :class:`repro.sim.NoiseModel`).
    """
    if distance < 2:
        raise ValueError("distance must be >= 2")
    if inject_error is not None and not 0 <= inject_error < distance:
        raise ValueError("inject_error must name a data qubit")
    if classical_work < 0:
        raise ValueError("classical_work must be non-negative")
    if rounds < 1:
        raise ValueError("need at least one round")

    d = distance
    num_qubits = 2 * d - 1
    num_results = rounds * (d - 1) + d
    sm = SimpleModule(
        f"repetition_d{d}",
        num_qubits,
        num_results,
        addressing="static",
        profile=AdaptiveProfile,
    )
    qis = sm.qis
    builder = sm.builder

    # Encode: |0...0> or |1...1>.
    if logical_one:
        qis.x(0)
        for i in range(1, d):
            qis.cnot(0, i)
    # Optional single X error.
    if inject_error is not None:
        qis.x(inject_error)

    fn = sm.entry_point
    for round_index in range(rounds):
        base = round_index * (d - 1)

        # Idle exposure: identity gates that attract memory noise.
        for _ in range(idle_rounds):
            for i in range(d):
                qis.gate("i", [i])

        # Syndrome extraction: ancilla i compares data i and i+1.  Ancillas
        # are reset before reuse in later rounds.
        for i in range(d - 1):
            ancilla = d + i
            if round_index:
                qis.reset(ancilla)
            qis.cnot(i, ancilla)
            qis.cnot(i + 1, ancilla)
            qis.mz(ancilla, base + i)

        # Read this round's syndromes.
        syndromes = [qis.read_result(base + i) for i in range(d - 1)]

        # Classical decoder "work": a dependent chain of integer ops between
        # readout and correction (models decoder latency; semantically inert).
        guard = None
        if classical_work:
            acc = builder.zext(syndromes[0], i64)
            for _ in range(classical_work):
                acc = builder.add(acc, ConstantInt(i64, 1))
            # always-true predicate that *depends* on the chain
            guard = builder.icmp("sge", acc, ConstantInt(i64, 0))

        # Decode single-error syndromes: error on data qubit i iff the
        # adjacent syndromes fire appropriately.
        corrections = []
        for i in range(d):
            left = syndromes[i - 1] if i > 0 else None
            right = syndromes[i] if i < d - 1 else None
            if left is None:
                assert right is not None
                if d == 2:
                    cond = right
                else:
                    cond = builder.and_(
                        right, builder.xor(syndromes[1], ConstantInt(i1, 1))
                    )
            elif right is None:
                if d == 2:
                    # covered by the i == 0 arm (one syndrome, fix qubit 0)
                    continue
                cond = builder.and_(
                    left, builder.xor(syndromes[d - 3], ConstantInt(i1, 1))
                ) if d > 2 else left
            else:
                cond = builder.and_(left, right)
            if guard is not None:
                cond = builder.and_(cond, guard)
            corrections.append((cond, i))

        for cond, qubit in corrections:
            then_block = fn.create_block()
            cont_block = fn.create_block()
            builder.cbr(cond, then_block, cont_block)
            builder.position_at_end(then_block)
            qis.x(qubit)
            builder.br(cont_block)
            builder.position_at_end(cont_block)

    # Final data readout.
    for i in range(d):
        qis.mz(i, rounds * (d - 1) + i)
    sm.record_output()
    return sm.ir()


def teleportation_qir(state_angle: float = 0.0) -> str:
    """Quantum teleportation of ``ry(state_angle)|0>`` from qubit 0 to 2.

    The canonical adaptive-profile program: two mid-circuit measurements
    drive X and Z corrections on the receiving qubit.  Results: 0 and 1
    are the Bell measurements, 2 verifies the teleported state (measuring
    in the basis where it is deterministic when ``state_angle`` is 0).
    """
    sm = SimpleModule(
        "teleport", 3, 3, addressing="static", profile=AdaptiveProfile
    )
    qis = sm.qis
    # Prepare the payload on qubit 0.
    if state_angle:
        qis.ry(state_angle, 0)
    # Bell pair between 1 (Alice) and 2 (Bob).
    qis.h(1)
    qis.cnot(1, 2)
    # Bell measurement of payload + Alice half.
    qis.cnot(0, 1)
    qis.h(0)
    qis.mz(0, 0)
    qis.mz(1, 1)
    # Bob's corrections.
    qis.if_result(1, one=lambda: qis.x(2))
    qis.if_result(0, one=lambda: qis.z(2))
    # Verification measurement (undo the preparation first).
    if state_angle:
        qis.ry(-state_angle, 2)
    qis.mz(2, 2)
    sm.record_output()
    return sm.ir()
