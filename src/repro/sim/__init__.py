"""Quantum circuit simulators: the execution backends behind the QIR runtime.

The paper's Example 5 describes the Catalyst/Lightning pattern -- a QIR
runtime whose ``__quantum__qis__*`` implementations mutate simulator state.
This package supplies those backends:

* :class:`StatevectorSimulator` -- dense state vector, vectorised NumPy
  kernels, exact amplitudes, exponential in qubit count.
* :class:`StabilizerSimulator` -- Aaronson-Gottesman CHP tableau, Clifford
  gates only, polynomial in qubit count (reaches thousands of qubits).

Both implement the :class:`SimulatorBackend` protocol consumed by
:mod:`repro.runtime`.
"""

from repro.sim.gates import (
    GATE_SET,
    GateSpec,
    controlled,
    gate_matrix,
    is_clifford_gate,
)
from repro.sim.backend import DelegatingBackend, SimulatorBackend
from repro.sim.noise import NoiseModel, NoisyBackend
from repro.sim.statevector import StatevectorSimulator
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.sampling import counts_to_probabilities, sample_counts

__all__ = [
    "GATE_SET",
    "GateSpec",
    "controlled",
    "gate_matrix",
    "is_clifford_gate",
    "SimulatorBackend",
    "DelegatingBackend",
    "NoiseModel",
    "NoisyBackend",
    "StatevectorSimulator",
    "StabilizerSimulator",
    "counts_to_probabilities",
    "sample_counts",
]
