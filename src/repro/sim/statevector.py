"""Dense statevector simulator with vectorised NumPy gate kernels.

Design notes (following the HPC guide's advice):

* The state is one flat ``complex128`` array of length ``2**n``; gate
  application reshapes it to a ``(2,)*n`` *view* (no copy) and contracts the
  gate tensor over the target axes with ``np.tensordot`` -- a single BLAS-
  backed operation instead of a Python loop over amplitudes.
* Qubit ``q`` corresponds to bit ``q`` of the basis-state index
  (little-endian, Qiskit convention), i.e. tensor axis ``n - 1 - q``.
* Allocation grows the state lazily via a Kronecker product with |0>;
  release measures the qubit away so slots can be reused -- this is what
  lets the runtime support *on-the-fly allocation for static qubit
  addresses* (paper, Section IV-A).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sim.gates import gate_matrix

_ATOL = 1e-12

SeedLike = Union[int, np.random.SeedSequence, None]


def _two_qubit_update(view: np.ndarray, matrix: np.ndarray, q0_is_high: bool) -> None:
    """Apply a 4x4 unitary through a ``(..., 2, ..., 2, ...)`` view.

    ``view`` has the *high* target qubit on axis -4 and the *low* one on
    axis -2 (batch and spectator axes elsewhere).  The arithmetic is a
    fixed-order elementwise expansion -- the same expression evaluates
    identically for the scalar simulator and the batched one, which is
    what lets serial and batched schedulers reproduce bit-identical
    amplitudes (and therefore identical counts) from the same seeds.
    """
    s = [
        view[..., 0, :, 0, :].copy(),
        view[..., 0, :, 1, :].copy(),
        view[..., 1, :, 0, :].copy(),
        view[..., 1, :, 1, :].copy(),
    ]
    # Matrix index ordering puts qubits[0] in the leading (most significant)
    # position; map each (bit_high, bit_low) slice to its matrix index.
    if q0_is_high:
        order = [0, 1, 2, 3]  # (b_q0, b_q1) == (b_high, b_low)
    else:
        order = [0, 2, 1, 3]  # qubits[0] is the low axis: swap middle rows
    src = [s[order[0]], s[order[1]], s[order[2]], s[order[3]]]
    for out_index in range(4):
        row = matrix[out_index]
        combined = row[0] * src[0] + row[1] * src[1] + row[2] * src[2] + row[3] * src[3]
        slot = order[out_index]
        view[..., slot >> 1, :, slot & 1, :] = combined


def _apply_dense(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """General k-qubit tensordot path on one flat state (k >= 3)."""
    k = len(qubits)
    psi = state.reshape((2,) * n)
    axes = [n - 1 - q for q in qubits]
    tensor = matrix.reshape((2,) * (2 * k))
    psi = np.tensordot(tensor, psi, axes=(list(range(k, 2 * k)), axes))
    psi = np.moveaxis(psi, list(range(k)), axes)
    return np.ascontiguousarray(psi).reshape(-1)


class StatevectorSimulator:
    """Exact dense simulation; memory and time grow as ``2**num_qubits``."""

    def __init__(self, num_qubits: int = 0, seed: Optional[int] = None, max_qubits: int = 26):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if num_qubits > max_qubits:
            raise ValueError(
                f"{num_qubits} qubits exceeds max_qubits={max_qubits} "
                f"({8 * 2 ** (num_qubits + 1)} bytes of state)"
            )
        self.max_qubits = max_qubits
        self._num_qubits = num_qubits
        self._rng = np.random.default_rng(seed)
        self._state = np.zeros(1 << num_qubits, dtype=np.complex128)
        self._state[0] = 1.0
        self._free_slots: List[int] = []

    # -- inspection -------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def state(self) -> np.ndarray:
        """The live amplitude array (a view; do not mutate)."""
        return self._state

    def probabilities(self) -> np.ndarray:
        return np.abs(self._state) ** 2

    def probability_of_one(self, qubit: int) -> float:
        self._check_qubit(qubit)
        view = self._axis_view(qubit)
        # view has shape (high, 2, low); slice [:, 1, :] selects bit=1.
        return float(np.sum(np.abs(view[:, 1, :]) ** 2))

    def amplitude(self, basis_state: int) -> complex:
        return complex(self._state[basis_state])

    def norm(self) -> float:
        return float(np.linalg.norm(self._state))

    # -- allocation -------------------------------------------------------------
    def allocate_qubit(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        if self._num_qubits >= self.max_qubits:
            raise MemoryError(
                f"cannot grow beyond max_qubits={self.max_qubits}"
            )
        # New qubit becomes the highest bit: state' = |0> (x) state, which for
        # little-endian indexing is just zero-padding the upper half.
        new = np.zeros(len(self._state) * 2, dtype=np.complex128)
        new[: len(self._state)] = self._state
        self._state = new
        slot = self._num_qubits
        self._num_qubits += 1
        return slot

    def release_qubit(self, slot: int) -> None:
        self._check_qubit(slot)
        self.reset(slot)
        if slot in self._free_slots:
            raise ValueError(f"double release of qubit slot {slot}")
        self._free_slots.append(slot)

    def ensure_qubits(self, count: int) -> None:
        """Grow to at least ``count`` allocated slots (static addressing)."""
        while self._num_qubits - len(self._free_slots) < count and (
            self._free_slots or self._num_qubits < count
        ):
            if self._num_qubits >= count:
                break
            self.allocate_qubit()

    def load_state(self, amplitudes: np.ndarray) -> None:
        """Replace the register with precomputed amplitudes (the
        stabilizer->statevector handoff).  Length must match the current
        allocation exactly; callers size the register first."""
        amplitudes = np.asarray(amplitudes, dtype=np.complex128)
        if amplitudes.shape != self._state.shape:
            raise ValueError(
                f"state of length {amplitudes.shape} does not fit a "
                f"{self._num_qubits}-qubit register"
            )
        self._state = amplitudes.copy()

    # -- gate application -------------------------------------------------------
    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self._num_qubits:
            raise IndexError(
                f"qubit {qubit} out of range (have {self._num_qubits})"
            )

    def _axis_view(self, qubit: int) -> np.ndarray:
        """View the flat state as (high, 2, low) with the target in the middle."""
        low = 1 << qubit
        high = len(self._state) // (2 * low)
        return self._state.reshape(high, 2, low)

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2**k x 2**k`` unitary to ``k`` target qubits.

        ``qubits[0]`` is the *most significant* qubit of the matrix's index
        ordering, matching how :func:`repro.sim.gates.controlled` places
        controls in the leading position.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        for q in qubits:
            self._check_qubit(q)
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate target qubits: {qubits}")

        n = self._num_qubits
        if k == 1:
            # Fast path: single-qubit gate as one reshaped matmul.
            view = self._axis_view(qubits[0])
            # new[h, i, l] = sum_j U[i, j] view[h, j, l]; the two slices of
            # the target axis are combined explicitly so the update can be
            # written back through the view without an aliasing hazard.
            a = view[:, 0, :]
            b = view[:, 1, :]
            new_a = matrix[0, 0] * a + matrix[0, 1] * b
            new_b = matrix[1, 0] * a + matrix[1, 1] * b
            view[:, 0, :] = new_a
            view[:, 1, :] = new_b
            return

        if k == 2:
            # Fast path: elementwise 4-slice expansion (no tensordot, no
            # copy of the full state back and forth).  Shared arithmetic
            # with BatchedStatevectorSimulator -- see _two_qubit_update.
            hi, lo = max(qubits), min(qubits)
            low = 1 << lo
            mid = 1 << (hi - lo - 1)
            high = len(self._state) // (4 * low * mid)
            view = self._state.reshape(high, 2, mid, 2, low)
            _two_qubit_update(view, matrix, q0_is_high=qubits[0] == hi)
            return

        self._state = _apply_dense(self._state, matrix, qubits, n)

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        self.apply_matrix(gate_matrix(name, params), list(qubits))

    # -- measurement -------------------------------------------------------------
    def measure(self, qubit: int) -> int:
        self._check_qubit(qubit)
        p1 = self.probability_of_one(qubit)
        outcome = int(self._rng.random() < p1)
        self._collapse(qubit, outcome, p1)
        return outcome

    def _collapse(self, qubit: int, outcome: int, p1: float) -> None:
        prob = p1 if outcome else 1.0 - p1
        if prob < _ATOL:
            raise FloatingPointError(
                f"collapse onto outcome {outcome} with probability ~0"
            )
        view = self._axis_view(qubit)
        view[:, 1 - outcome, :] = 0.0
        self._state *= 1.0 / math.sqrt(prob)

    def postselect(self, qubit: int, outcome: int) -> float:
        """Force a measurement outcome; returns its pre-collapse probability."""
        p1 = self.probability_of_one(qubit)
        self._collapse(qubit, outcome, p1)
        return p1 if outcome else 1.0 - p1

    def reset(self, qubit: int) -> None:
        self._check_qubit(qubit)
        p1 = self.probability_of_one(qubit)
        if p1 > _ATOL and p1 < 1.0 - _ATOL:
            outcome = self.measure(qubit)
        else:
            outcome = int(p1 >= 0.5)
        if outcome == 1:
            self.apply_gate("x", [qubit])

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Sample terminal measurement outcomes without collapsing.

        Returns a ``bitstring -> count`` histogram; bit order in the string
        is qubit ``n-1 .. 0`` (most significant first), matching Qiskit.
        """
        probs = self.probabilities()
        total = probs.sum()
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            probs = probs / total
        outcomes = self._rng.choice(len(probs), size=shots, p=probs)
        qubits = list(qubits) if qubits is not None else list(range(self._num_qubits))
        histogram: Dict[str, int] = {}
        for basis in outcomes:
            bits = "".join(str((int(basis) >> q) & 1) for q in reversed(qubits))
            histogram[bits] = histogram.get(bits, 0) + 1
        return histogram


class BatchedStatevectorSimulator:
    """``batch`` independent statevectors evolving under one instruction
    stream (the BatchedScheduler's entry point, ROADMAP "batched multi-shot").

    The state is a single ``(batch, 2**n)`` array; every gate applies to
    all members in one vectorised operation, so the per-instruction Python
    overhead -- which dominates per-shot re-interpretation for small
    registers -- is paid once per *batch* instead of once per shot.
    Measurements genuinely collapse each member against its own RNG
    stream, so (unlike the deferred-measurement sampling fast path)
    mid-circuit resets, re-measurement, and gates after measurement are
    all supported; only *classical feedback* on an outcome is not, since
    one instruction stream cannot branch differently per member.

    Determinism contract: member ``i`` seeded with seed ``s`` draws the
    exact uniform sequence -- and applies bit-identical gate arithmetic --
    that a scalar :class:`StatevectorSimulator` seeded with ``s`` would,
    so batched counts reproduce serial per-shot counts exactly.
    """

    def __init__(
        self,
        batch: int,
        num_qubits: int = 0,
        seeds: Optional[Sequence[SeedLike]] = None,
        max_qubits: int = 26,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if seeds is not None and len(seeds) != batch:
            raise ValueError(f"need {batch} seeds, got {len(seeds)}")
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if num_qubits > max_qubits:
            raise ValueError(
                f"{num_qubits} qubits exceeds max_qubits={max_qubits}"
            )
        self.batch = batch
        self.max_qubits = max_qubits
        self._num_qubits = num_qubits
        seed_list = list(seeds) if seeds is not None else [None] * batch
        self._rngs = [np.random.default_rng(s) for s in seed_list]
        self._state = np.zeros((batch, 1 << num_qubits), dtype=np.complex128)
        self._state[:, 0] = 1.0
        self._free_slots: List[int] = []

    # -- inspection -------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def member_state(self, member: int) -> np.ndarray:
        """One member's amplitude array (a view; do not mutate)."""
        return self._state[member]

    def _member_axis_view(self, member: int, qubit: int) -> np.ndarray:
        low = 1 << qubit
        high = self._state.shape[1] // (2 * low)
        return self._state[member].reshape(high, 2, low)

    def probability_of_one(self, member: int, qubit: int) -> float:
        """Member ``i``'s P(bit=1): the same reduction over the same slice
        a scalar simulator performs, so the float is bit-identical."""
        self._check_qubit(qubit)
        view = self._member_axis_view(member, qubit)
        return float(np.sum(np.abs(view[:, 1, :]) ** 2))

    # -- allocation -------------------------------------------------------------
    def allocate_qubit(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        if self._num_qubits >= self.max_qubits:
            raise MemoryError(f"cannot grow beyond max_qubits={self.max_qubits}")
        width = self._state.shape[1]
        new = np.zeros((self.batch, width * 2), dtype=np.complex128)
        new[:, :width] = self._state
        self._state = new
        slot = self._num_qubits
        self._num_qubits += 1
        return slot

    def release_qubit(self, slot: int) -> None:
        self._check_qubit(slot)
        self.reset(slot)
        if slot in self._free_slots:
            raise ValueError(f"double release of qubit slot {slot}")
        self._free_slots.append(slot)

    def ensure_qubits(self, count: int) -> None:
        while self._num_qubits < count:
            self.allocate_qubit()

    def load_state(self, amplitudes: np.ndarray) -> None:
        """Broadcast precomputed amplitudes to every member (the
        stabilizer->statevector handoff; all members start identical and
        diverge only at measurement)."""
        amplitudes = np.asarray(amplitudes, dtype=np.complex128)
        if amplitudes.shape != (self._state.shape[1],):
            raise ValueError(
                f"state of length {amplitudes.shape} does not fit a "
                f"{self._num_qubits}-qubit register"
            )
        self._state = np.tile(amplitudes, (self.batch, 1))

    # -- gate application -------------------------------------------------------
    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self._num_qubits:
            raise IndexError(
                f"qubit {qubit} out of range (have {self._num_qubits})"
            )

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(f"matrix shape {matrix.shape} does not match {k} qubits")
        for q in qubits:
            self._check_qubit(q)
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate target qubits: {qubits}")

        if k == 1:
            low = 1 << qubits[0]
            high = self._state.shape[1] // (2 * low)
            view = self._state.reshape(self.batch, high, 2, low)
            a = view[:, :, 0, :]
            b = view[:, :, 1, :]
            new_a = matrix[0, 0] * a + matrix[0, 1] * b
            new_b = matrix[1, 0] * a + matrix[1, 1] * b
            view[:, :, 0, :] = new_a
            view[:, :, 1, :] = new_b
            return
        if k == 2:
            hi, lo = max(qubits), min(qubits)
            low = 1 << lo
            mid = 1 << (hi - lo - 1)
            high = self._state.shape[1] // (4 * low * mid)
            view = self._state.reshape(self.batch, high, 2, mid, 2, low)
            _two_qubit_update(view, matrix, q0_is_high=qubits[0] == hi)
            return
        # Rare k >= 3 gates: per-member dense application, sharing the
        # scalar simulator's code path so amplitudes stay bit-identical.
        n = self._num_qubits
        for member in range(self.batch):
            self._state[member] = _apply_dense(
                self._state[member], matrix, qubits, n
            )

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        self.apply_matrix(gate_matrix(name, params), list(qubits))

    def _apply_x_member(self, member: int, qubit: int) -> None:
        view = self._member_axis_view(member, qubit)
        a = view[:, 0, :].copy()
        view[:, 0, :] = view[:, 1, :]
        view[:, 1, :] = a

    # -- measurement -------------------------------------------------------------
    def measure(self, qubit: int) -> np.ndarray:
        """Measure all members; returns a ``(batch,)`` array of outcomes.

        Each member draws from its own RNG and collapses independently --
        the per-member equivalent of ``StatevectorSimulator.measure``.
        """
        self._check_qubit(qubit)
        outcomes = np.empty(self.batch, dtype=np.int64)
        for member in range(self.batch):
            p1 = self.probability_of_one(member, qubit)
            outcome = int(self._rngs[member].random() < p1)
            self._collapse_member(member, qubit, outcome, p1)
            outcomes[member] = outcome
        return outcomes

    def _collapse_member(
        self, member: int, qubit: int, outcome: int, p1: float
    ) -> None:
        prob = p1 if outcome else 1.0 - p1
        if prob < _ATOL:
            raise FloatingPointError(
                f"collapse onto outcome {outcome} with probability ~0"
            )
        view = self._member_axis_view(member, qubit)
        view[:, 1 - outcome, :] = 0.0
        self._state[member] *= 1.0 / math.sqrt(prob)

    def reset(self, qubit: int) -> None:
        self._check_qubit(qubit)
        for member in range(self.batch):
            p1 = self.probability_of_one(member, qubit)
            if p1 > _ATOL and p1 < 1.0 - _ATOL:
                outcome = int(self._rngs[member].random() < p1)
                self._collapse_member(member, qubit, outcome, p1)
            else:
                outcome = int(p1 >= 0.5)
            if outcome == 1:
                self._apply_x_member(member, qubit)
