"""The simulator backend protocol consumed by the QIR runtime.

A backend owns *simulator qubit slots* addressed by small integers.  The
runtime's qubit manager maps QIR qubit pointers (dynamic or static, see
paper Section IV-A) onto these slots.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

__all__ = ["SimulatorBackend", "DelegatingBackend"]


@runtime_checkable
class SimulatorBackend(Protocol):
    """Structural interface; both simulators satisfy it."""

    @property
    def num_qubits(self) -> int:
        """Number of currently allocated qubit slots."""
        ...

    def allocate_qubit(self) -> int:
        """Add a fresh |0> qubit and return its slot index."""
        ...

    def release_qubit(self, slot: int) -> None:
        """Return a slot to the free pool (must be |0> or measured)."""
        ...

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        ...

    def measure(self, qubit: int) -> int:
        """Projectively measure a qubit in the Z basis; collapses state."""
        ...

    def reset(self, qubit: int) -> None:
        """Measure and, if 1, flip back to |0>."""
        ...


class DelegatingBackend:
    """Base class for backend *decorators* (noise injection, fault
    injection, deferred measurement): forwards the whole
    :class:`SimulatorBackend` surface to ``inner`` so subclasses override
    only the operations they intercept.  Decorators compose -- a fault
    wrapper around a noisy wrapper around a simulator is a valid stack.
    """

    def __init__(self, inner: SimulatorBackend):
        self.inner = inner

    @property
    def num_qubits(self) -> int:
        return self.inner.num_qubits

    def allocate_qubit(self) -> int:
        return self.inner.allocate_qubit()

    def release_qubit(self, slot: int) -> None:
        self.inner.release_qubit(slot)

    def ensure_qubits(self, count: int) -> None:
        ensure = getattr(self.inner, "ensure_qubits", None)
        if ensure is not None:
            ensure(count)

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        self.inner.apply_gate(name, qubits, params)

    def measure(self, qubit: int) -> int:
        return self.inner.measure(qubit)

    def reset(self, qubit: int) -> None:
        self.inner.reset(qubit)
