"""The simulator backend protocol consumed by the QIR runtime.

A backend owns *simulator qubit slots* addressed by small integers.  The
runtime's qubit manager maps QIR qubit pointers (dynamic or static, see
paper Section IV-A) onto these slots.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class SimulatorBackend(Protocol):
    """Structural interface; both simulators satisfy it."""

    @property
    def num_qubits(self) -> int:
        """Number of currently allocated qubit slots."""
        ...

    def allocate_qubit(self) -> int:
        """Add a fresh |0> qubit and return its slot index."""
        ...

    def release_qubit(self, slot: int) -> None:
        """Return a slot to the free pool (must be |0> or measured)."""
        ...

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        ...

    def measure(self, qubit: int) -> int:
        """Projectively measure a qubit in the Z basis; collapses state."""
        ...

    def reset(self, qubit: int) -> None:
        """Measure and, if 1, flip back to |0>."""
        ...
