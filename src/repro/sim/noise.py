"""Stochastic Pauli noise: a noisy wrapper around any simulator backend.

Noise is modelled by Monte-Carlo unravelling -- after each gate a random
Pauli error is injected with the channel probability, and measurement
outcomes flip with the readout-error probability.  Because Pauli errors
are Clifford, the wrapper composes with *both* the statevector and the
stabilizer backends, so noisy QEC experiments scale to wide codes.

This extends the paper's Example 5 runtime beyond ideal simulation: the
NOISE benchmark uses it to show the repetition-code workload of Section
IV-B suppressing *random* errors, not just injected ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sim.backend import DelegatingBackend, SimulatorBackend

_PAULIS = ("x", "y", "z")


@dataclass(frozen=True)
class NoiseModel:
    """Error probabilities per operation.

    * ``depolarizing_1q`` / ``depolarizing_2q``: probability that a gate is
      followed by a uniformly random non-identity Pauli on each qubit it
      touched.
    * ``readout_error``: probability a measurement outcome is reported
      flipped (the qubit itself collapses to the *true* outcome).
    * ``reset_error``: probability a reset leaves the qubit in |1>.
    """

    depolarizing_1q: float = 0.0
    depolarizing_2q: float = 0.0
    readout_error: float = 0.0
    reset_error: float = 0.0

    def __post_init__(self) -> None:
        for name in ("depolarizing_1q", "depolarizing_2q", "readout_error", "reset_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def is_trivial(self) -> bool:
        return (
            self.depolarizing_1q == 0.0
            and self.depolarizing_2q == 0.0
            and self.readout_error == 0.0
            and self.reset_error == 0.0
        )


class NoisyBackend(DelegatingBackend):
    """A :class:`SimulatorBackend` decorator injecting stochastic errors."""

    def __init__(
        self,
        inner: SimulatorBackend,
        noise: NoiseModel,
        seed: Optional[int] = None,
    ):
        super().__init__(inner)
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        # statistics for tests/benchmarks
        self.injected_paulis = 0
        self.flipped_readouts = 0

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        self.inner.apply_gate(name, qubits, params)
        p = (
            self.noise.depolarizing_2q
            if len(qubits) >= 2
            else self.noise.depolarizing_1q
        )
        if p > 0.0:
            for qubit in qubits:
                if self._rng.random() < p:
                    pauli = _PAULIS[int(self._rng.integers(3))]
                    self.inner.apply_gate(pauli, [qubit])
                    self.injected_paulis += 1

    def measure(self, qubit: int) -> int:
        outcome = self.inner.measure(qubit)
        if self.noise.readout_error > 0.0 and self._rng.random() < self.noise.readout_error:
            self.flipped_readouts += 1
            return 1 - outcome
        return outcome

    def reset(self, qubit: int) -> None:
        self.inner.reset(qubit)
        if self.noise.reset_error > 0.0 and self._rng.random() < self.noise.reset_error:
            self.inner.apply_gate("x", [qubit])
