"""Gate fusion and plan-level specialization (compile-time kernel schedules).

The per-shot execution model pays one full pass over the ``2**n``
amplitude array per gate, plus interpreter dispatch per instruction.
Straight-line base-profile programs -- constant qubit addresses, no
classical control flow -- are fully analysable at *plan-compile* time, so
the compile phase can precompute a :class:`FusedProgram`:

* **Trace extraction** walks the entry point once, replicating the
  runtime's static-address slot binding, and bails (returns ``None``)
  the moment it sees anything dynamic: branches, allocas, dynamic qubit
  handles, ``m``-style results, or measurement feedback.  Specialization
  is therefore sound by construction -- programs that cannot be traced
  simply keep the interpreter path.
* **Gate fusion** coalesces maximal runs of adjacent gates whose union
  support stays within two qubits into single pre-multiplied matrices
  (the qiskit-aer "fusion" idea), so a depth-``d`` single-qubit run
  costs one ``apply_matrix`` pass instead of ``d``.
* **Clifford-prefix routing** splits the trace at the first non-Clifford
  gate: a long Clifford preamble (GHZ/graph-state prep, QEC encoders)
  runs on the CHP stabilizer tableau in O(gates * n) bit operations, and
  the resulting state is synthesised back into amplitudes exactly once
  via :func:`stabilizer_statevector`.

Executors for the scalar and batched statevector simulators live here
too (:func:`run_fused`, :func:`run_fused_batched`); both replicate the
interpreter path's RNG draw order (one draw per measurement, one per
superposed reset), which is what keeps fused counts bit-identical to the
unfused serial reference for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.llvmir.instructions import CallInst, ReturnInst
from repro.llvmir.module import Module
from repro.llvmir.values import (
    ConstantExpr,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
)
from repro.qir.catalog import QIS_PREFIX, RT_PREFIX, parse_qis_name
from repro.sim.gates import gate_matrix, is_clifford_gate
from repro.sim.stabilizer import StabilizerSimulator

__all__ = [
    "FusedProgram",
    "KernelOp",
    "MeasureOp",
    "ResetOp",
    "extract_trace",
    "specialize_module",
    "stabilizer_statevector",
    "run_fused",
    "run_fused_batched",
]

#: Fuse only while the union support stays within this many qubits (4x4
#: matrices): beyond two qubits the pre-multiplied kernel's dense cost
#: outgrows the saved passes for the register widths this stack targets.
_MAX_FUSED_QUBITS = 2

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex128,
)


# -- trace extraction ----------------------------------------------------------


@dataclass(frozen=True)
class TraceGate:
    name: str
    slots: Tuple[int, ...]
    params: Tuple[float, ...]


@dataclass(frozen=True)
class TraceMeasure:
    slot: int
    address: int


@dataclass(frozen=True)
class TraceReset:
    slot: int


TraceOp = Union[TraceGate, TraceMeasure, TraceReset]


@dataclass(frozen=True)
class Trace:
    """A fully static linearisation of one entry point."""

    ops: Tuple[TraceOp, ...]
    num_slots: int
    #: Result addresses recorded by ``result_record_output`` in program
    #: order, or ``None`` when the program records no output (then the
    #: bitstring renders from the static result table, address-ascending).
    output_addresses: Optional[Tuple[int, ...]]


def _resolve_entry(module: Module, entry: Optional[str]):
    if entry is not None:
        fn = module.get_function(entry)
        if fn is not None and not fn.is_declaration:
            return fn
        return None
    entry_points = module.entry_points()
    if len(entry_points) == 1:
        return entry_points[0]
    if not entry_points:
        defined = module.defined_functions()
        if len(defined) == 1:
            return defined[0]
    return None


def _const_address(value) -> Optional[int]:
    """A static qubit/result address, or None when the operand is dynamic."""
    if isinstance(value, ConstantNull):
        return 0
    if isinstance(value, ConstantPointerInt):
        return int(value.address)
    if isinstance(value, ConstantExpr) and value.opcode == "inttoptr":
        operand = value.operands[0]
        if isinstance(operand, ConstantInt):
            return int(operand.value)
    return None


def _const_param(value) -> Optional[float]:
    if isinstance(value, ConstantFloat):
        return float(value.value)
    if isinstance(value, ConstantInt):
        return float(value.value)
    return None


#: RT calls a traced program may contain without effect on the schedule.
_RT_IGNORED = frozenset(
    {
        f"{RT_PREFIX}initialize",
        f"{RT_PREFIX}array_record_output",
        f"{RT_PREFIX}tuple_record_output",
    }
)


def extract_trace(module: Module, entry: Optional[str] = None) -> Optional[Trace]:
    """Linearise a straight-line static entry point, or ``None``.

    Replicates the runtime's slot binding exactly: with a
    ``required_num_qubits`` attribute, addresses ``0..n-1`` are pre-bound
    to slots ``0..n-1``; any further address binds in first-touch order
    (the :class:`~repro.runtime.qubit_manager.QubitManager` contract).
    """
    fn = _resolve_entry(module, entry)
    if fn is None or len(fn.blocks) != 1:
        return None
    block = fn.blocks[0]

    binding: Dict[int, int] = {}
    required = fn.get_attribute("required_num_qubits")
    if required is not None:
        try:
            for address in range(int(required)):
                binding[address] = address
        except (TypeError, ValueError):
            return None

    def slot_for(address: int) -> int:
        slot = binding.get(address)
        if slot is None:
            slot = len(binding)
            binding[address] = slot
        return slot

    ops: List[TraceOp] = []
    recorded: List[int] = []
    has_records = False

    for inst in block.instructions:
        if isinstance(inst, ReturnInst):
            continue
        if not isinstance(inst, CallInst):
            return None
        name = inst.callee.name or ""
        if name.startswith(QIS_PREFIX):
            qis = parse_qis_name(name)
            if qis is None:
                return None
            operands = list(inst.operands)
            if qis.gate == "mz":
                if len(operands) != 2:
                    return None
                qubit = _const_address(operands[0])
                result = _const_address(operands[1])
                if qubit is None or result is None:
                    return None
                ops.append(TraceMeasure(slot_for(qubit), result))
                continue
            if qis.gate == "reset":
                if len(operands) != 1:
                    return None
                qubit = _const_address(operands[0])
                if qubit is None:
                    return None
                ops.append(TraceReset(slot_for(qubit)))
                continue
            if qis.gate in ("m", "read_result"):
                return None  # dynamic results / feedback: not traceable
            params = []
            for operand in operands[: qis.num_params]:
                param = _const_param(operand)
                if param is None:
                    return None
                params.append(param)
            slots = []
            for operand in operands[qis.num_params :]:
                address = _const_address(operand)
                if address is None:
                    return None
                slots.append(slot_for(address))
            if len(set(slots)) != len(slots):
                return None
            ops.append(TraceGate(qis.gate, tuple(slots), tuple(params)))
            continue
        if name == f"{RT_PREFIX}result_record_output":
            address = _const_address(inst.operands[0]) if inst.operands else None
            if address is None:
                return None
            has_records = True
            recorded.append(address)
            continue
        if name in _RT_IGNORED:
            continue
        return None  # allocation, messages, feedback, defined calls: bail

    return Trace(
        ops=tuple(ops),
        num_slots=len(binding),
        output_addresses=tuple(recorded) if has_records else None,
    )


# -- fused schedule ------------------------------------------------------------


@dataclass(frozen=True)
class KernelOp:
    """One pre-multiplied unitary; ``qubits[0]`` is most significant."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    gates: int  # source gates folded into this kernel


@dataclass(frozen=True)
class MeasureOp:
    slot: int
    address: int


@dataclass(frozen=True)
class ResetOp:
    slot: int


ScheduleOp = Union[KernelOp, MeasureOp, ResetOp]


@dataclass(frozen=True)
class FusedProgram:
    """A compiled kernel schedule: the execute phase's specialized form.

    ``prefix`` is the Clifford preamble routed to the stabilizer tableau
    (empty when routing is not worthwhile); ``ops`` covers everything
    after it.  Attached to :class:`~repro.runtime.plan.ExecutionPlan` as
    derived analysis -- recomputed on decode, never serialized.
    """

    num_slots: int
    prefix: Tuple[TraceGate, ...]
    ops: Tuple[ScheduleOp, ...]
    output_addresses: Optional[Tuple[int, ...]]
    source_gates: int

    @property
    def prefix_gates(self) -> int:
        return len(self.prefix)

    @property
    def kernels(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, KernelOp))

    @property
    def fused_gates(self) -> int:
        return sum(op.gates for op in self.ops if isinstance(op, KernelOp))

    @property
    def measurements(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, MeasureOp))

    def describe(self) -> str:
        return (
            f"fused schedule: {self.kernels} kernels from "
            f"{self.source_gates} gates, clifford prefix {self.prefix_gates}"
        )


def _embed(
    matrix: np.ndarray, positions: Sequence[int], support_size: int
) -> np.ndarray:
    """Expand a 1- or 2-qubit unitary onto an ordered support (<= 2 qubits).

    ``positions[i]`` is where the gate's qubit ``i`` sits in the support
    ordering (0 = most significant), matching ``apply_matrix``'s
    convention that ``qubits[0]`` indexes the leading matrix position.
    """
    if support_size == 1:
        return matrix
    if len(positions) == 1:
        eye = np.eye(2, dtype=np.complex128)
        if positions[0] == 0:
            return np.kron(matrix, eye)
        return np.kron(eye, matrix)
    if tuple(positions) == (0, 1):
        return matrix
    return _SWAP @ matrix @ _SWAP


def _fuse_gates(gates: Sequence[TraceGate]) -> List[KernelOp]:
    """Greedy left-to-right fusion of a gate run into kernels."""
    kernels: List[KernelOp] = []
    support: List[int] = []
    matrix: Optional[np.ndarray] = None
    folded = 0

    def flush() -> None:
        nonlocal support, matrix, folded
        if matrix is not None:
            kernels.append(KernelOp(matrix, tuple(support), folded))
        support, matrix, folded = [], None, 0

    for gate in gates:
        unitary = gate_matrix(gate.name, gate.params)
        if len(gate.slots) > _MAX_FUSED_QUBITS:
            flush()
            kernels.append(KernelOp(np.array(unitary), gate.slots, 1))
            continue
        union = support + [s for s in gate.slots if s not in support]
        if matrix is not None and len(union) > _MAX_FUSED_QUBITS:
            flush()
            union = list(gate.slots)
        if matrix is None:
            support = list(gate.slots)
            matrix = np.array(unitary, dtype=np.complex128)
            folded = 1
            continue
        if len(union) > len(support):
            # The accumulated kernel grows onto the union support; its
            # existing qubits keep their (leading) positions.
            matrix = _embed(matrix, list(range(len(support))), len(union))
            support = union
        positions = [support.index(s) for s in gate.slots]
        matrix = _embed(unitary, positions, len(support)) @ matrix
        folded += 1
    flush()
    return kernels


def _split_prefix(
    ops: Sequence[TraceOp], num_slots: int, prefix_threshold: Optional[int]
) -> Tuple[Tuple[TraceGate, ...], Tuple[TraceOp, ...]]:
    """Split the trace at the first non-Clifford instruction.

    The prefix must be unitary Clifford gates only (measure/reset end
    it); it is routed to the tableau only when long enough to amortise
    the one-off stabilizer->statevector synthesis, which costs roughly
    ``num_slots`` statevector passes.
    """
    count = 0
    for op in ops:
        if not isinstance(op, TraceGate):
            break
        if op.params or not is_clifford_gate(op.name):
            break
        count += 1
    threshold = (
        prefix_threshold
        if prefix_threshold is not None
        else 2 * max(1, num_slots) + 4
    )
    if count < max(1, threshold):
        return (), tuple(ops)
    prefix = tuple(ops[:count])  # type: ignore[arg-type]
    return prefix, tuple(ops[count:])


def build_schedule(
    trace: Trace,
    *,
    prefix_threshold: Optional[int] = None,
) -> FusedProgram:
    """Turn a trace into a fused kernel schedule (+ Clifford prefix)."""
    prefix, rest = _split_prefix(trace.ops, trace.num_slots, prefix_threshold)
    ops: List[ScheduleOp] = []
    run: List[TraceGate] = []
    gates = len(prefix)
    for op in rest:
        if isinstance(op, TraceGate):
            run.append(op)
            gates += 1
            continue
        ops.extend(_fuse_gates(run))
        run = []
        if isinstance(op, TraceMeasure):
            ops.append(MeasureOp(op.slot, op.address))
        else:
            ops.append(ResetOp(op.slot))
    ops.extend(_fuse_gates(run))
    return FusedProgram(
        num_slots=trace.num_slots,
        prefix=prefix,
        ops=tuple(ops),
        output_addresses=trace.output_addresses,
        source_gates=gates,
    )


def specialize_module(
    module: Module,
    entry: Optional[str] = None,
    *,
    prefix_threshold: Optional[int] = None,
) -> Optional[FusedProgram]:
    """The compile phase's entry point: trace + fuse, or ``None``.

    Never raises: a program the specializer cannot handle simply keeps
    the interpreter path (the optimistic-abort philosophy of the
    sampling fast path, applied ahead of time).
    """
    try:
        trace = extract_trace(module, entry)
        if trace is None:
            return None
        return build_schedule(trace, prefix_threshold=prefix_threshold)
    except Exception:
        return None


# -- stabilizer -> statevector synthesis ---------------------------------------


def _parity(indices: np.ndarray, mask: int) -> np.ndarray:
    parity = np.zeros(len(indices), dtype=bool)
    bit = 0
    while mask >> bit:
        if (mask >> bit) & 1:
            parity ^= ((indices >> bit) & 1).astype(bool)
        bit += 1
    return parity


def stabilizer_statevector(tableau: StabilizerSimulator) -> np.ndarray:
    """Amplitudes of the tableau's state (phase fixed: first nonzero real+).

    Finds one basis state in the support deterministically (postselect,
    never an RNG draw), then projects it onto the stabilizer group:
    ``|psi> ~ prod_i (I + G_i)/2 |b>``.  O(n * 2**n) vectorised work --
    one pass per generator, the same order as a handful of gates.
    """
    n = tableau.num_qubits
    size = 1 << n
    cap = tableau._capacity

    # Deterministic support-state search on a scratch copy.
    scratch = StabilizerSimulator(0)
    scratch._n = tableau._n
    scratch._capacity = tableau._capacity
    scratch.x = tableau.x.copy()
    scratch.z = tableau.z.copy()
    scratch.r = tableau.r.copy()
    basis = 0
    for qubit in range(n):
        stab_rows = np.arange(cap, cap + n)
        if scratch.x[stab_rows, qubit].any():
            scratch.postselect(qubit, 0)  # random outcome: force |0>
        else:
            basis |= int(scratch.measure(qubit)) << qubit  # deterministic

    indices = np.arange(size, dtype=np.int64)
    state = np.zeros(size, dtype=np.complex128)
    state[basis] = 1.0
    for row in range(cap, cap + n):
        x_mask = 0
        z_mask = 0
        for qubit in range(n):
            if tableau.x[row, qubit]:
                x_mask |= 1 << qubit
            if tableau.z[row, qubit]:
                z_mask |= 1 << qubit
        y_count = bin(x_mask & z_mask).count("1")
        sign = (-1.0) ** int(tableau.r[row]) * (1j) ** y_count
        phases = np.where(_parity(indices, z_mask), -1.0, 1.0) * sign
        source = indices ^ x_mask
        state = state + phases[source] * state[source]
    norm = np.linalg.norm(state)
    if norm <= 0.0:
        raise ValueError("stabilizer synthesis produced a null state")
    state /= norm
    anchor = np.flatnonzero(np.abs(state) > 1e-9)
    if len(anchor):
        lead = state[anchor[0]]
        state *= np.abs(lead) / lead
    return state


# -- execution -----------------------------------------------------------------


def _prefix_state(program: FusedProgram) -> np.ndarray:
    tableau = StabilizerSimulator(program.num_slots)
    for gate in program.prefix:
        tableau.apply_gate(gate.name, list(gate.slots))
    return stabilizer_statevector(tableau)


def run_fused(program: FusedProgram, simulator) -> Tuple[List[int], str]:
    """Execute a schedule on a scalar :class:`StatevectorSimulator`.

    Returns ``(bits, bitstring)`` with exactly the per-shot path's
    rendering: recorded output order when the program records results,
    address-ascending static-table order otherwise, reversed so the
    highest index is leftmost.
    """
    simulator.ensure_qubits(program.num_slots)
    if program.prefix:
        simulator.load_state(_prefix_state(program))
    values: Dict[int, int] = {}
    for op in program.ops:
        if isinstance(op, KernelOp):
            simulator.apply_matrix(op.matrix, list(op.qubits))
        elif isinstance(op, MeasureOp):
            values[op.address] = int(simulator.measure(op.slot))
        else:
            simulator.reset(op.slot)
    if program.output_addresses is not None:
        bits = [values.get(a, 0) for a in program.output_addresses]
    elif values:
        # Static-table fallback rendering: addresses 0..max ascending,
        # unwritten slots defaulting to 0 (ResultStore.static_bits).
        bits = [values.get(a, 0) for a in range(max(values) + 1)]
    else:
        bits = []
    return bits, "".join(str(b) for b in reversed(bits))


def run_fused_batched(program: FusedProgram, simulator) -> List[str]:
    """Execute a schedule on a :class:`BatchedStatevectorSimulator`.

    Returns one bitstring per member, rendered address-descending like
    :meth:`BatchedResultStore.member_bitstring` (the batched scheduler's
    convention -- identical to the per-shot strings for the programs the
    tracer accepts, whose record order follows address order).
    """
    simulator.ensure_qubits(program.num_slots)
    if program.prefix:
        simulator.load_state(_prefix_state(program))
    values: Dict[int, np.ndarray] = {}
    for op in program.ops:
        if isinstance(op, KernelOp):
            simulator.apply_matrix(op.matrix, list(op.qubits))
        elif isinstance(op, MeasureOp):
            values[op.address] = simulator.measure(op.slot)
        else:
            simulator.reset(op.slot)
    if not values:
        return ["" for _ in range(simulator.batch)]
    addresses = range(max(values), -1, -1)
    out: List[str] = []
    for member in range(simulator.batch):
        out.append(
            "".join(
                str(int(values[a][member])) if a in values else "0"
                for a in addresses
            )
        )
    return out
