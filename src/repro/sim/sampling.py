"""Helpers for working with measurement histograms."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np


def sample_counts(
    probabilities: Sequence[float],
    shots: int,
    num_bits: int,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Draw ``shots`` samples from a basis-state distribution."""
    rng = np.random.default_rng(seed)
    probs = np.asarray(probabilities, dtype=float)
    probs = probs / probs.sum()
    outcomes = rng.choice(len(probs), size=shots, p=probs)
    histogram: Dict[str, int] = {}
    for basis in outcomes:
        bits = format(int(basis), f"0{num_bits}b")
        histogram[bits] = histogram.get(bits, 0) + 1
    return histogram


def counts_to_probabilities(counts: Mapping[str, int]) -> Dict[str, float]:
    total = sum(counts.values())
    if total == 0:
        return {}
    return {bits: n / total for bits, n in counts.items()}


def total_variation_distance(
    a: Mapping[str, float], b: Mapping[str, float]
) -> float:
    """TVD between two outcome distributions; the integration tests use this
    to check that transformation passes preserve program semantics."""
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)
