"""Aaronson-Gottesman CHP stabilizer simulator.

Tracks the stabilizer group of the state in a binary tableau; Clifford
gates (H, S, CNOT and compositions) are O(n) bit operations, measurement is
O(n^2).  This is the backend that lets the runtime execute Clifford QIR
workloads (GHZ states, repetition-code QEC) on *thousands* of qubits where
the statevector backend saturates around 25 -- the scaling contrast the
EX5 benchmark reports.

Tableau layout (Aaronson & Gottesman, PRA 70, 052328 (2004)): rows
``0..n-1`` are destabilizers, rows ``n..2n-1`` stabilizers; ``x[i,j]`` /
``z[i,j]`` are the Pauli-X/Z components of generator i on qubit j and
``r[i]`` its sign bit.  All stored as NumPy bool arrays so gate updates are
whole-row vector ops (HPC guide: vectorise, operate in place).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class StabilizerSimulator:
    def __init__(self, num_qubits: int = 0, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)
        self._n = 0
        self._capacity = max(1, num_qubits)
        self._alloc(self._capacity)
        self._free_slots: List[int] = []
        for _ in range(num_qubits):
            self.allocate_qubit()

    def _alloc(self, capacity: int) -> None:
        size = 2 * capacity
        self.x = np.zeros((size, capacity), dtype=bool)
        self.z = np.zeros((size, capacity), dtype=bool)
        self.r = np.zeros(size, dtype=bool)

    @property
    def num_qubits(self) -> int:
        return self._n

    # -- allocation -------------------------------------------------------------
    def allocate_qubit(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        if self._n == self._capacity:
            self._grow(self._capacity * 2)
        slot = self._n
        self._n += 1
        # Re-seat identity rows for the new qubit: destabilizer X_slot,
        # stabilizer Z_slot (state |0>).
        self._rebuild_row_layout()
        return slot

    def _grow(self, capacity: int) -> None:
        old_n = self._n
        old_x, old_z, old_r = self.x, self.z, self.r
        self._capacity = capacity
        self._alloc(capacity)
        # copy destabilizers then stabilizers into the new row layout
        self.x[:old_n, :old_n] = old_x[:old_n, :old_n]
        self.z[:old_n, :old_n] = old_z[:old_n, :old_n]
        self.r[:old_n] = old_r[:old_n]
        self.x[capacity : capacity + old_n, :old_n] = old_x[old_n : 2 * old_n, :old_n]
        self.z[capacity : capacity + old_n, :old_n] = old_z[old_n : 2 * old_n, :old_n]
        self.r[capacity : capacity + old_n] = old_r[old_n : 2 * old_n]

    def _rebuild_row_layout(self) -> None:
        n, cap = self._n, self._capacity
        q = n - 1
        # destabilizer row q: X_q ; stabilizer row cap+q: Z_q
        self.x[q, :] = False
        self.z[q, :] = False
        self.x[q, q] = True
        self.r[q] = False
        self.x[cap + q, :] = False
        self.z[cap + q, :] = False
        self.z[cap + q, q] = True
        self.r[cap + q] = False

    def release_qubit(self, slot: int) -> None:
        self._check(slot)
        self.reset(slot)
        if slot in self._free_slots:
            raise ValueError(f"double release of qubit slot {slot}")
        self._free_slots.append(slot)

    def ensure_qubits(self, count: int) -> None:
        while self._n < count:
            self.allocate_qubit()

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self._n:
            raise IndexError(f"qubit {qubit} out of range (have {self._n})")

    def _rows(self) -> np.ndarray:
        """Indices of the live destabilizer+stabilizer rows."""
        cap = self._capacity
        return np.concatenate(
            [np.arange(self._n), np.arange(cap, cap + self._n)]
        )

    # -- Clifford gates -----------------------------------------------------------
    def _h(self, q: int) -> None:
        rows = self._rows()
        xs = self.x[rows, q].copy()
        zs = self.z[rows, q].copy()
        self.r[rows] ^= xs & zs
        self.x[rows, q] = zs
        self.z[rows, q] = xs

    def _s(self, q: int) -> None:
        rows = self._rows()
        xs = self.x[rows, q]
        self.r[rows] ^= xs & self.z[rows, q]
        self.z[rows, q] ^= xs

    def _cnot(self, control: int, target: int) -> None:
        rows = self._rows()
        xc = self.x[rows, control]
        zt = self.z[rows, target]
        self.r[rows] ^= xc & zt & (self.x[rows, target] ^ self.z[rows, control] ^ True)
        self.x[rows, target] ^= xc
        self.z[rows, control] ^= zt

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        from repro.sim.gates import canonical_name

        name = canonical_name(name)
        for q in qubits:
            self._check(q)
        if params:
            raise ValueError(
                f"stabilizer backend cannot apply parameterised gate {name!r}"
            )
        if name == "i":
            return
        if name == "h":
            (q,) = qubits
            self._h(q)
        elif name == "s":
            (q,) = qubits
            self._s(q)
        elif name == "s_adj":
            (q,) = qubits
            self._s(q)
            self._s(q)
            self._s(q)
        elif name == "x":
            (q,) = qubits
            self._h(q)
            self._s(q)
            self._s(q)
            self._h(q)
        elif name == "z":
            (q,) = qubits
            self._s(q)
            self._s(q)
        elif name == "y":
            (q,) = qubits
            # Y = i X Z; global phase is untracked in the tableau.
            self.apply_gate("z", [q])
            self.apply_gate("x", [q])
        elif name == "sx":
            (q,) = qubits
            # sx = H S H up to global phase
            self._h(q)
            self._s(q)
            self._h(q)
        elif name == "cnot":
            c, t = qubits
            self._cnot(c, t)
        elif name == "cz":
            c, t = qubits
            self._h(t)
            self._cnot(c, t)
            self._h(t)
        elif name == "cy":
            c, t = qubits
            self._s(t)
            self._s(t)
            self._s(t)
            self._cnot(c, t)
            self._s(t)
        elif name == "swap":
            a, b = qubits
            self._cnot(a, b)
            self._cnot(b, a)
            self._cnot(a, b)
        else:
            raise ValueError(f"gate {name!r} is not Clifford; use the statevector backend")

    # -- measurement -------------------------------------------------------------
    def _row_mult(self, h: int, i: int) -> None:
        """Left-multiply generator row h by row i (h <- i * h), updating sign."""
        x_i, z_i = self.x[i], self.z[i]
        x_h, z_h = self.x[h], self.z[h]
        # Sum of per-qubit phase exponents g() as defined by Aaronson-Gottesman.
        g = np.zeros(self._capacity, dtype=np.int64)
        one_one = x_i & z_i  # Y
        g += np.where(one_one, (z_h.astype(np.int64) - x_h.astype(np.int64)), 0)
        x_only = x_i & ~z_i  # X
        g += np.where(x_only, z_h.astype(np.int64) * (2 * x_h.astype(np.int64) - 1), 0)
        z_only = ~x_i & z_i  # Z
        g += np.where(z_only, x_h.astype(np.int64) * (1 - 2 * z_h.astype(np.int64)), 0)
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + int(g.sum())
        self.r[h] = (total % 4) == 2
        self.x[h] ^= x_i
        self.z[h] ^= z_i

    def measure(self, qubit: int) -> int:
        self._check(qubit)
        cap, n = self._capacity, self._n
        stab_rows = np.arange(cap, cap + n)
        candidates = stab_rows[self.x[stab_rows, qubit]]
        if len(candidates):
            # Random outcome.
            p = int(candidates[0])
            rows = self._rows()
            for i in rows:
                if i != p and self.x[i, qubit]:
                    self._row_mult(int(i), p)
            # destabilizer row (p - cap) <- old stabilizer row p
            self.x[p - cap] = self.x[p]
            self.z[p - cap] = self.z[p]
            self.r[p - cap] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, qubit] = True
            outcome = int(self._rng.integers(0, 2))
            self.r[p] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate product of stabilizers whose
        # destabilizer partner anticommutes with Z_qubit.
        scratch = 2 * cap - 1  # use the last row as scratch if free
        # build scratch row manually
        sx = np.zeros(self._capacity, dtype=bool)
        sz = np.zeros(self._capacity, dtype=bool)
        sr = 0
        for i in range(n):
            if self.x[i, qubit]:
                # multiply scratch by stabilizer row cap + i
                j = cap + i
                g = 0
                x_i, z_i = self.x[j], self.z[j]
                one_one = x_i & z_i
                g += int(np.sum(np.where(one_one, sz.astype(np.int64) - sx.astype(np.int64), 0)))
                x_only = x_i & ~z_i
                g += int(np.sum(np.where(x_only, sz.astype(np.int64) * (2 * sx.astype(np.int64) - 1), 0)))
                z_only = ~x_i & z_i
                g += int(np.sum(np.where(z_only, sx.astype(np.int64) * (1 - 2 * sz.astype(np.int64)), 0)))
                total = 2 * sr + 2 * int(self.r[j]) + g
                sr = 1 if (total % 4) == 2 else 0
                sx ^= x_i
                sz ^= z_i
        return sr

    def postselect(self, qubit: int, outcome: int) -> float:
        """Force an outcome.  Returns its probability (0.5 random, 1.0/0.0 det)."""
        self._check(qubit)
        cap, n = self._capacity, self._n
        stab_rows = np.arange(cap, cap + n)
        candidates = stab_rows[self.x[stab_rows, qubit]]
        if len(candidates):
            p = int(candidates[0])
            rows = self._rows()
            for i in rows:
                if i != p and self.x[i, qubit]:
                    self._row_mult(int(i), p)
            self.x[p - cap] = self.x[p]
            self.z[p - cap] = self.z[p]
            self.r[p - cap] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, qubit] = True
            self.r[p] = bool(outcome)
            return 0.5
        actual = self.measure(qubit)
        if actual != outcome:
            raise FloatingPointError(
                f"postselect impossible: qubit {qubit} is deterministically {actual}"
            )
        return 1.0

    def reset(self, qubit: int) -> None:
        if self.measure(qubit) == 1:
            self.apply_gate("x", [qubit])

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Sample terminal measurements by repeated simulate-and-restore.

        Measurement collapses the tableau, so each shot measures a *copy*.
        """
        qubits = list(qubits) if qubits is not None else list(range(self._n))
        histogram: Dict[str, int] = {}
        saved = (self.x.copy(), self.z.copy(), self.r.copy())
        for _ in range(shots):
            bits = "".join(str(self.measure(q)) for q in reversed(qubits))
            histogram[bits] = histogram.get(bits, 0) + 1
            self.x, self.z, self.r = (
                saved[0].copy(),
                saved[1].copy(),
                saved[2].copy(),
            )
        return histogram
