"""Gate catalogue: canonical names, arities, and unitary matrices.

The canonical gate vocabulary is shared by every layer of the stack: the
circuit IR, the OpenQASM frontend, the QIR QIS catalogue, and the
simulators.  Names follow the QIR QIS convention (lowercase; ``cnot`` not
``cx``) with OpenQASM aliases resolved by :func:`canonical_name`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

_SQRT1_2 = 1.0 / math.sqrt(2.0)


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate: arities and Clifford membership."""

    name: str
    num_qubits: int
    num_params: int
    clifford: bool
    hermitian: bool = False  # self-inverse (its own adjoint)
    matrix_fn: Optional[Callable[..., np.ndarray]] = None

    def matrix(self, *params: float) -> np.ndarray:
        if self.matrix_fn is None:
            raise ValueError(f"gate {self.name!r} has no unitary matrix")
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name!r} takes {self.num_params} params, got {len(params)}"
            )
        return self.matrix_fn(*params)


# -- fixed matrices -----------------------------------------------------------
_I = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
_H = np.array([[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]], dtype=np.complex128)
_S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
_SDG = _S.conj().T
_T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=np.complex128)
_TDG = _T.conj().T
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)


def controlled(matrix: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Build a controlled version of ``matrix`` (controls are the *leading*
    qubits in the combined operator's ordering)."""
    for _ in range(num_controls):
        dim = matrix.shape[0]
        out = np.eye(2 * dim, dtype=np.complex128)
        out[dim:, dim:] = matrix
        matrix = out
    return matrix


_CNOT = controlled(_X)
_CZ = controlled(_Z)
_CY = controlled(_Y)
_CCX = controlled(_X, 2)


# -- parameterised matrices ----------------------------------------------------
def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-0.5j * theta), 0], [0, np.exp(0.5j * theta)]], dtype=np.complex128
    )


def _p(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=np.complex128)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def _crz(theta: float) -> np.ndarray:
    return controlled(_rz(theta))


def _cp(lam: float) -> np.ndarray:
    return controlled(_p(lam))


def _rzz(theta: float) -> np.ndarray:
    e_m = np.exp(-0.5j * theta)
    e_p = np.exp(0.5j * theta)
    return np.diag([e_m, e_p, e_p, e_m]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    out = np.eye(4, dtype=np.complex128) * c
    out[0, 3] = out[3, 0] = s
    out[1, 2] = out[2, 1] = s
    return out


def _const(matrix: np.ndarray) -> Callable[..., np.ndarray]:
    return lambda: matrix


# The canonical gate set.  ``clifford`` marks gates the stabilizer simulator
# accepts; rotations are Clifford only at special angles, so they are not.
GATE_SET: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        GateSpec("i", 1, 0, True, True, _const(_I)),
        GateSpec("x", 1, 0, True, True, _const(_X)),
        GateSpec("y", 1, 0, True, True, _const(_Y)),
        GateSpec("z", 1, 0, True, True, _const(_Z)),
        GateSpec("h", 1, 0, True, True, _const(_H)),
        GateSpec("s", 1, 0, True, False, _const(_S)),
        GateSpec("s_adj", 1, 0, True, False, _const(_SDG)),
        GateSpec("t", 1, 0, False, False, _const(_T)),
        GateSpec("t_adj", 1, 0, False, False, _const(_TDG)),
        GateSpec("sx", 1, 0, True, False, _const(_SX)),
        GateSpec("rx", 1, 1, False, False, _rx),
        GateSpec("ry", 1, 1, False, False, _ry),
        GateSpec("rz", 1, 1, False, False, _rz),
        GateSpec("p", 1, 1, False, False, _p),
        GateSpec("u3", 1, 3, False, False, _u3),
        GateSpec("cnot", 2, 0, True, True, _const(_CNOT)),
        GateSpec("cz", 2, 0, True, True, _const(_CZ)),
        GateSpec("cy", 2, 0, True, True, _const(_CY)),
        GateSpec("swap", 2, 0, True, True, _const(_SWAP)),
        GateSpec("crz", 2, 1, False, False, _crz),
        GateSpec("cp", 2, 1, False, False, _cp),
        GateSpec("rzz", 2, 1, False, False, _rzz),
        GateSpec("rxx", 2, 1, False, False, _rxx),
        GateSpec("ccx", 3, 0, False, True, _const(_CCX)),
    ]
}

# OpenQASM / common aliases -> canonical names.
ALIASES: Dict[str, str] = {
    "id": "i",
    "cx": "cnot",
    "sdg": "s_adj",
    "tdg": "t_adj",
    "toffoli": "ccx",
    "ccnot": "ccx",
    "phase": "p",
    "u1": "p",
    "u": "u3",
    "cphase": "cp",
    "cu1": "cp",
}

# Adjoint pairs for the quantum optimisation passes.
ADJOINT: Dict[str, str] = {
    "s": "s_adj",
    "s_adj": "s",
    "t": "t_adj",
    "t_adj": "t",
}

# Rotation gates whose consecutive applications on the same qubits merge by
# summing angles (used by the rotation-merging pass).
MERGEABLE_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "crz", "cp"}


def canonical_name(name: str) -> str:
    name = name.lower()
    return ALIASES.get(name, name)


def get_gate(name: str) -> GateSpec:
    spec = GATE_SET.get(canonical_name(name))
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    return spec


def is_clifford_gate(name: str) -> bool:
    spec = GATE_SET.get(canonical_name(name))
    return spec is not None and spec.clifford


@lru_cache(maxsize=256)
def _cached_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    return get_gate(name).matrix(*params)


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """The unitary for a gate application; cached for repeated angles."""
    return _cached_matrix(canonical_name(name), tuple(float(p) for p in params))
