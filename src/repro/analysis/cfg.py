"""Control-flow-graph construction and traversals."""

from __future__ import annotations

from typing import List, Set

import networkx as nx

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function


def cfg_graph(fn: Function) -> "nx.DiGraph":
    """Build a networkx digraph over the function's basic blocks."""
    graph = nx.DiGraph()
    for block in fn.blocks:
        graph.add_node(block)
    for block in fn.blocks:
        for succ in block.successors():
            graph.add_edge(block, succ)
    return graph


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if not fn.blocks:
        return set()
    seen: Set[BasicBlock] = set()
    stack = [fn.entry_block]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def postorder(fn: Function) -> List[BasicBlock]:
    """Postorder DFS from the entry block (unreachable blocks excluded)."""
    if not fn.blocks:
        return []
    out: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        if block in seen:
            return
        seen.add(block)
        for succ in block.successors():
            visit(succ)
        out.append(block)

    # Iterative to survive deep CFGs from unrolled loops.
    stack: List[tuple] = [(fn.entry_block, iter(fn.entry_block.successors()))]
    seen.add(fn.entry_block)
    while stack:
        block, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            out.append(block)
            stack.pop()
    return out


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder: the canonical forward-dataflow iteration order."""
    return list(reversed(postorder(fn)))
