"""Natural-loop detection.

A natural loop is identified by a *back edge* ``latch -> header`` where the
header dominates the latch; the loop body is every block that can reach the
latch without passing through the header.  This is exactly the structure the
paper's Example 4 FOR-loop produces (``for.header`` / ``body`` / ``exit``),
and what the unrolling pass consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.dominators import DominatorTree
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function


@dataclass
class Loop:
    header: BasicBlock
    latches: List[BasicBlock]
    blocks: Set[BasicBlock]
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth, node = 1, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        out: List[BasicBlock] = []
        seen: Set[BasicBlock] = set()
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in seen:
                    seen.add(succ)
                    out.append(succ)
        return out

    def exiting_blocks(self) -> List[BasicBlock]:
        return [
            b
            for b in self.blocks
            if any(s not in self.blocks for s in b.successors())
        ]

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if there is one
        and it branches only to the header."""
        outside = [p for p in self.header.predecessors() if p not in self.blocks]
        if len(outside) != 1:
            return None
        cand = outside[0]
        if cand.successors() == [self.header]:
            return cand
        return None

    def __repr__(self) -> str:
        return (
            f"<Loop header=%{self.header.name} blocks={len(self.blocks)} "
            f"depth={self.depth}>"
        )


class LoopInfo:
    def __init__(self, loops: List[Loop]):
        self.top_level = [l for l in loops if l.parent is None]
        self.all_loops = loops
        self._block_map: Dict[BasicBlock, Loop] = {}
        # innermost loop per block
        for loop in sorted(loops, key=lambda l: l.depth):
            for block in loop.blocks:
                self._block_map[block] = loop

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        return self._block_map.get(block)

    def __iter__(self):
        return iter(self.all_loops)

    def __len__(self) -> int:
        return len(self.all_loops)


def find_natural_loops(fn: Function, domtree: Optional[DominatorTree] = None) -> LoopInfo:
    if not fn.blocks:
        return LoopInfo([])
    domtree = domtree or DominatorTree(fn)

    # Collect back edges, merging loops that share a header.
    header_latches: Dict[BasicBlock, List[BasicBlock]] = {}
    for block in fn.blocks:
        for succ in block.successors():
            if domtree.dominates(succ, block):
                header_latches.setdefault(succ, []).append(block)

    loops: List[Loop] = []
    for header, latches in header_latches.items():
        body: Set[BasicBlock] = {header}
        stack = list(latches)
        while stack:
            block = stack.pop()
            if block in body:
                continue
            body.add(block)
            stack.extend(block.predecessors())
        loops.append(Loop(header, latches, body))

    # Nesting: loop A is a child of the smallest loop strictly containing it.
    by_size = sorted(loops, key=lambda l: len(l.blocks))
    for i, inner in enumerate(by_size):
        for outer in by_size[i + 1 :]:
            if inner is not outer and inner.blocks < outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break
    return LoopInfo(loops)
