"""CFG analyses: dominators, natural loops, liveness-style dataflow.

These are the classical-compiler analyses the paper argues QIR inherits
"for free" from LLVM; here they are built once on top of
:mod:`repro.llvmir` and shared by every transformation pass.
"""

from repro.analysis.cfg import cfg_graph, postorder, reachable_blocks, reverse_postorder
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopInfo, find_natural_loops
from repro.analysis.dataflow import (
    compute_liveness,
    count_opcodes,
    quantum_call_sites,
    uses_outside_block,
)

__all__ = [
    "cfg_graph",
    "postorder",
    "reachable_blocks",
    "reverse_postorder",
    "DominatorTree",
    "Loop",
    "LoopInfo",
    "find_natural_loops",
    "compute_liveness",
    "count_opcodes",
    "quantum_call_sites",
    "uses_outside_block",
]
