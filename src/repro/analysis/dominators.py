"""Dominator tree and dominance frontiers (via networkx's Cooper-Harvey-
Kennedy implementation), used by mem2reg for phi placement."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from repro.analysis.cfg import cfg_graph
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import Instruction


class DominatorTree:
    def __init__(self, fn: Function):
        self.function = fn
        self.graph = cfg_graph(fn)
        entry = fn.entry_block
        self.idom: Dict[BasicBlock, BasicBlock] = dict(
            nx.immediate_dominators(self.graph, entry)
        )
        # Some networkx versions omit the reflexive entry mapping.
        self.idom[entry] = entry
        self.frontiers: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set(f) for b, f in nx.dominance_frontiers(self.graph, entry).items()
        }
        self._children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.idom}
        for block, parent in self.idom.items():
            if block is not parent:
                self._children[parent].append(block)
        self._reachable = set(self.idom)

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        parent = self.idom.get(block)
        if parent is None or parent is block:
            return None
        return parent

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does block ``a`` dominate block ``b``? (reflexive)"""
        if b not in self._reachable or a not in self._reachable:
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self.idom.get(node)
            node = parent if parent is not node else None
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominates_instruction(self, value: Instruction, user: Instruction) -> bool:
        """SSA dominance between two instructions (same or different blocks)."""
        vb, ub = value.parent, user.parent
        assert vb is not None and ub is not None
        if vb is ub:
            return vb.instructions.index(value) < vb.instructions.index(user)
        return self.strictly_dominates(vb, ub)

    def dominance_frontier(self, block: BasicBlock) -> Set[BasicBlock]:
        return set(self.frontiers.get(block, set()))

    def dfs_preorder(self) -> List[BasicBlock]:
        out: List[BasicBlock] = []
        stack = [self.function.entry_block]
        while stack:
            block = stack.pop()
            out.append(block)
            stack.extend(reversed(self._children.get(block, [])))
        return out
