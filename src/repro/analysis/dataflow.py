"""Small dataflow utilities shared by passes and the hybrid partitioner."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import reverse_postorder
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst, Instruction, PhiInst
from repro.llvmir.values import Argument, Value


def count_opcodes(fn: Function) -> Counter:
    """Histogram of instruction opcodes; used by benches to report IR shape."""
    counts: Counter = Counter()
    for inst in fn.instructions():
        counts[inst.opcode] += 1
    return counts


def quantum_call_sites(fn: Function) -> List[CallInst]:
    """All calls into the QIR quantum namespace (``__quantum__*``)."""
    out = []
    for inst in fn.instructions():
        if isinstance(inst, CallInst) and (inst.callee.name or "").startswith(
            "__quantum__"
        ):
            out.append(inst)
    return out


def uses_outside_block(inst: Instruction) -> bool:
    """Does any user of ``inst`` live in a different basic block?"""
    for user in inst.users:
        if user.parent is not inst.parent:
            return True
    return False


def compute_liveness(
    fn: Function,
) -> Tuple[Dict[BasicBlock, Set[Value]], Dict[BasicBlock, Set[Value]]]:
    """Classic backward liveness over SSA values.

    Returns ``(live_in, live_out)`` per block.  Phi semantics: a phi's
    operands are treated as live-out of the corresponding predecessor, not
    live-in of the phi's block.
    """
    use: Dict[BasicBlock, Set[Value]] = {}
    defs: Dict[BasicBlock, Set[Value]] = {}
    phi_uses: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}

    for block in fn.blocks:
        u: Set[Value] = set()
        d: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming:
                    if isinstance(value, (Instruction, Argument)):
                        phi_uses.setdefault(pred, set()).add(value)
            else:
                for op in inst.operands:
                    if isinstance(op, (Instruction, Argument)) and op not in d:
                        u.add(op)
            if not inst.type.is_void:
                d.add(inst)
        use[block] = u
        defs[block] = d

    live_in: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}
    live_out: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}

    changed = True
    order = list(reversed(reverse_postorder(fn)))
    while changed:
        changed = False
        for block in order:
            out: Set[Value] = set(phi_uses.get(block, ()))
            for succ in block.successors():
                out |= live_in[succ]
            inn = use[block] | (out - defs[block])
            if out != live_out[block] or inn != live_in[block]:
                live_out[block] = out
                live_in[block] = inn
                changed = True
    return live_in, live_out
