"""The custom base-profile line parser (paper, Example 3).

"For the base profile, it suffices to iterate over the lines to construct
an in-memory representation of the resulting quantum circuit.  [...] the
parser would need to track the assignment of variables (i.e. %9, %0, %1,
...) to their values to infer the respective qubit that is passed to a
quantum instruction.  The instructions themselves can be matched with a
simple pattern."

This parser does exactly that -- regular expressions over lines plus a
variable environment -- and deliberately knows nothing about LLVM: that is
its selling point (no heavyweight dependency) *and* its limitation (any
adaptive-profile construct raises :class:`BaseProfileParseError`).  The
EX3 benchmark compares its throughput against the full-AST route.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import Circuit
from repro.qir.catalog import parse_qis_name


class BaseProfileParseError(ValueError):
    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


# -- symbolic values the environment can hold ---------------------------------
class _Slot:
    """An alloca'd pointer cell."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: object = None


class _QubitArray:
    __slots__ = ("base", "size")

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size


class _Qubit:
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class _Result:
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class _ByteArray:
    """A plain rt array (the classical-bit container in Fig. 1)."""

    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size


# -- line patterns -----------------------------------------------------------
_RE_COMMENT = re.compile(r";.*$")
_RE_ALLOCA = re.compile(r"^%(?P<var>[\w.\-$]+) = alloca ptr(?:, align \d+)?$")
_RE_ALLOC_ARRAY = re.compile(
    r"^%(?P<var>[\w.\-$]+) = call ptr @__quantum__rt__qubit_allocate_array\(i64 (?P<n>\d+)\)$"
)
_RE_CREATE_ARRAY = re.compile(
    r"^%(?P<var>[\w.\-$]+) = call ptr @__quantum__rt__array_create_1d\(i32 \d+, i64 (?P<n>\d+)\)$"
)
_RE_STORE = re.compile(r"^store ptr (?P<src>%[\w.\-$]+|null), ptr %(?P<dst>[\w.\-$]+)(?:, align \d+)?$")
_RE_LOAD = re.compile(r"^%(?P<var>[\w.\-$]+) = load ptr, ptr %(?P<src>[\w.\-$]+)(?:, align \d+)?$")
_RE_ELEMENT_PTR = re.compile(
    r"^%(?P<var>[\w.\-$]+) = call ptr @__quantum__rt__array_get_element_ptr_1d"
    r"\(ptr %(?P<array>[\w.\-$]+), i64 (?P<idx>\d+)\)$"
)
_RE_QIS_CALL = re.compile(
    r"^call (?:void|ptr|i1) @(?P<fn>__quantum__qis__[\w]+)\((?P<args>.*)\)$"
)
_RE_RT_RELEASE = re.compile(
    r"^call void @__quantum__rt__qubit_release_array\(ptr %(?P<array>[\w.\-$]+)\)$"
)
_RE_RECORD = re.compile(
    r"^call void @__quantum__rt__(?P<kind>array|result|tuple|bool|int|double)_record_output\("
)
_RE_LABEL = re.compile(r"^[\w.\-$]+:$")
_RE_BR_UNCOND = re.compile(r"^br label %[\w.\-$]+$")
_RE_INITIALIZE = re.compile(r"^call void @__quantum__rt__initialize\(ptr (?:null|%[\w.\-$]+)\)$")

_RE_ARG_NULL = re.compile(r"^ptr(?: writeonly| readonly| nocapture)* null$")
_RE_ARG_INTTOPTR = re.compile(
    r"^ptr(?: writeonly| readonly| nocapture)* inttoptr \(i64 (?P<addr>\d+) to ptr\)$"
)
_RE_ARG_VAR = re.compile(r"^ptr(?: writeonly| readonly| nocapture)* %(?P<var>[\w.\-$]+)$")
_RE_ARG_DOUBLE = re.compile(
    r"^double (?P<val>-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|0x[0-9a-fA-F]+))$"
)

_SKIP_PREFIXES = (
    "source_filename",
    "target ",
    "declare ",
    "attributes ",
    "!",
    "@",
    "%Qubit = type",
    "%Result = type",
    "%Array = type",
    "define ",
    "}",
    "ret void",
)

# Disallowed-opcode detection keeps the error messages precise.
_ADAPTIVE_MARKERS = (
    " = icmp ",
    " = phi ",
    " = select ",
    "br i1 ",
    "switch ",
    " = add ",
    " = sub ",
    " = mul ",
    "__quantum__qis__read_result__body",
    "__quantum__rt__result_equal",
)


def _split_args(args: str) -> List[str]:
    """Split a call argument list on top-level commas (inttoptr contains
    parentheses, so a plain split would break)."""
    out: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in args:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        out.append(tail)
    return out


def parse_base_profile(text: str, name: str = "imported") -> Circuit:
    """Parse base-profile QIR text directly into a :class:`Circuit`."""
    env: Dict[str, object] = {}
    next_qubit_base = 0
    gates: List[Tuple[str, List[float], List[int]]] = []
    measurements: List[Tuple[int, int]] = []
    resets: List[int] = []
    max_qubit = -1
    max_result = -1
    in_body = False

    def resolve_qubit(token: str, line_number: int) -> int:
        nonlocal max_qubit
        index = _resolve_pointer(token, env, line_number, kind="qubit")
        max_qubit = max(max_qubit, index)
        return index

    def resolve_result(token: str, line_number: int) -> int:
        nonlocal max_result
        index = _resolve_pointer(token, env, line_number, kind="result")
        max_result = max(max_result, index)
        return index

    lines = text.splitlines()
    for line_number, raw in enumerate(lines, start=1):
        line = _RE_COMMENT.sub("", raw).strip()
        if not line:
            continue
        if line.startswith("define "):
            in_body = True
            continue
        if not in_body:
            continue
        if line == "}":
            in_body = False
            continue
        if line == "ret void" or _RE_LABEL.match(line) or _RE_BR_UNCOND.match(line):
            continue
        if _RE_INITIALIZE.match(line):
            continue

        for marker in _ADAPTIVE_MARKERS:
            if marker in line:
                raise BaseProfileParseError(
                    f"adaptive-profile construct {marker.strip()!r}; "
                    "the base-profile line parser cannot handle it",
                    line_number,
                )

        m = _RE_ALLOCA.match(line)
        if m:
            env[m.group("var")] = _Slot()
            continue
        m = _RE_ALLOC_ARRAY.match(line)
        if m:
            size = int(m.group("n"))
            env[m.group("var")] = _QubitArray(next_qubit_base, size)
            next_qubit_base += size
            continue
        m = _RE_CREATE_ARRAY.match(line)
        if m:
            env[m.group("var")] = _ByteArray(int(m.group("n")))
            continue
        m = _RE_STORE.match(line)
        if m:
            dst = env.get(m.group("dst"))
            if not isinstance(dst, _Slot):
                raise BaseProfileParseError(
                    f"store into non-slot %{m.group('dst')}", line_number
                )
            src_token = m.group("src")
            dst.value = (
                None if src_token == "null" else env.get(src_token[1:])
            )
            continue
        m = _RE_LOAD.match(line)
        if m:
            src = env.get(m.group("src"))
            if not isinstance(src, _Slot):
                raise BaseProfileParseError(
                    f"load from non-slot %{m.group('src')}", line_number
                )
            env[m.group("var")] = src.value
            continue
        m = _RE_ELEMENT_PTR.match(line)
        if m:
            array = env.get(m.group("array"))
            index = int(m.group("idx"))
            if isinstance(array, _QubitArray):
                if index >= array.size:
                    raise BaseProfileParseError(
                        f"qubit index {index} out of bounds", line_number
                    )
                env[m.group("var")] = _Qubit(array.base + index)
            elif isinstance(array, _ByteArray):
                env[m.group("var")] = _Result(index)
            else:
                raise BaseProfileParseError(
                    f"element_ptr into unknown array %{m.group('array')}",
                    line_number,
                )
            continue
        m = _RE_RT_RELEASE.match(line)
        if m:
            continue
        if _RE_RECORD.match(line):
            continue
        m = _RE_QIS_CALL.match(line)
        if m:
            fname = m.group("fn")
            entry = parse_qis_name(fname)
            if entry is None:
                raise BaseProfileParseError(f"unknown QIS function @{fname}", line_number)
            tokens = _split_args(m.group("args"))
            expected = entry.num_params + entry.num_qubits + (1 if entry.takes_result else 0)
            if len(tokens) != expected:
                raise BaseProfileParseError(
                    f"@{fname} expects {expected} args, got {len(tokens)}", line_number
                )
            params: List[float] = []
            for token in tokens[: entry.num_params]:
                dm = _RE_ARG_DOUBLE.match(token)
                if not dm:
                    raise BaseProfileParseError(
                        f"non-constant rotation angle {token!r}", line_number
                    )
                val = dm.group("val")
                if val.lower().startswith("0x"):
                    import struct as _struct

                    params.append(
                        _struct.unpack("<d", _struct.pack("<Q", int(val, 16)))[0]
                    )
                else:
                    params.append(float(val))
            qubit_tokens = tokens[entry.num_params : entry.num_params + entry.num_qubits]
            qubits = [resolve_qubit(t, line_number) for t in qubit_tokens]
            if entry.gate == "mz":
                result = resolve_result(tokens[-1], line_number)
                measurements.append((qubits[0], result))
            elif entry.gate == "reset":
                resets.append(qubits[0])
                gates.append(("__reset__", [], qubits))
            elif entry.returns_result:
                raise BaseProfileParseError(
                    "dynamic measurement (m__body) is not base profile", line_number
                )
            else:
                gates.append((entry.gate, params, qubits))
            continue

        raise BaseProfileParseError(f"unrecognised line {line!r}", line_number)

    num_qubits = max(max_qubit + 1, next_qubit_base)
    num_results = max_result + 1
    circuit = Circuit(name)
    if num_qubits:
        circuit.qreg(num_qubits, "q")
    if num_results:
        circuit.creg(num_results, "c")

    # Interleave gates and measurements in program order: rebuild from the
    # combined event list.  (Gates and measurements were collected in order
    # relative to each other via the shared list walk; simplest correct
    # approach is a second pass, so redo with a unified list.)
    return _rebuild(circuit, text, name)


def _rebuild(template: Circuit, text: str, name: str) -> Circuit:
    """Single-pass construction now that register sizes are known."""
    env: Dict[str, object] = {}
    next_qubit_base = 0
    circuit = Circuit(name)
    if template.num_qubits:
        circuit.qreg(template.num_qubits, "q")
    if template.num_clbits:
        circuit.creg(template.num_clbits, "c")

    in_body = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _RE_COMMENT.sub("", raw).strip()
        if not line:
            continue
        if line.startswith("define "):
            in_body = True
            continue
        if not in_body:
            continue
        if line == "}":
            in_body = False
            continue
        if line == "ret void" or _RE_LABEL.match(line) or _RE_BR_UNCOND.match(line):
            continue
        if _RE_INITIALIZE.match(line):
            continue
        m = _RE_ALLOCA.match(line)
        if m:
            env[m.group("var")] = _Slot()
            continue
        m = _RE_ALLOC_ARRAY.match(line)
        if m:
            size = int(m.group("n"))
            env[m.group("var")] = _QubitArray(next_qubit_base, size)
            next_qubit_base += size
            continue
        m = _RE_CREATE_ARRAY.match(line)
        if m:
            env[m.group("var")] = _ByteArray(int(m.group("n")))
            continue
        m = _RE_STORE.match(line)
        if m:
            dst = env[m.group("dst")]
            assert isinstance(dst, _Slot)
            src_token = m.group("src")
            dst.value = None if src_token == "null" else env.get(src_token[1:])
            continue
        m = _RE_LOAD.match(line)
        if m:
            src = env[m.group("src")]
            assert isinstance(src, _Slot)
            env[m.group("var")] = src.value
            continue
        m = _RE_ELEMENT_PTR.match(line)
        if m:
            array = env[m.group("array")]
            index = int(m.group("idx"))
            if isinstance(array, _QubitArray):
                env[m.group("var")] = _Qubit(array.base + index)
            else:
                assert isinstance(array, _ByteArray)
                env[m.group("var")] = _Result(index)
            continue
        if _RE_RT_RELEASE.match(line) or _RE_RECORD.match(line):
            continue
        m = _RE_QIS_CALL.match(line)
        if m:
            entry = parse_qis_name(m.group("fn"))
            assert entry is not None
            tokens = _split_args(m.group("args"))
            params = []
            for token in tokens[: entry.num_params]:
                dm = _RE_ARG_DOUBLE.match(token)
                assert dm is not None
                val = dm.group("val")
                if val.lower().startswith("0x"):
                    import struct as _struct

                    params.append(
                        _struct.unpack("<d", _struct.pack("<Q", int(val, 16)))[0]
                    )
                else:
                    params.append(float(val))
            qubit_tokens = tokens[entry.num_params : entry.num_params + entry.num_qubits]
            qubits = [
                _resolve_pointer(t, env, line_number, kind="qubit")
                for t in qubit_tokens
            ]
            if entry.gate == "mz":
                result = _resolve_pointer(tokens[-1], env, line_number, kind="result")
                circuit.measure(qubits[0], result)
            elif entry.gate == "reset":
                circuit.reset(qubits[0])
            else:
                circuit.gate(entry.gate, qubits, params)
            continue
    return circuit


def _resolve_pointer(token: str, env: Dict[str, object], line_number: int, kind: str) -> int:
    if _RE_ARG_NULL.match(token):
        return 0
    m = _RE_ARG_INTTOPTR.match(token)
    if m:
        return int(m.group("addr"))
    m = _RE_ARG_VAR.match(token)
    if m:
        value = env.get(m.group("var"))
        if kind == "qubit" and isinstance(value, _Qubit):
            return value.index
        if kind == "result" and isinstance(value, _Result):
            return value.index
        raise BaseProfileParseError(
            f"%{m.group('var')} does not hold a {kind} pointer", line_number
        )
    raise BaseProfileParseError(f"cannot resolve {kind} argument {token!r}", line_number)
