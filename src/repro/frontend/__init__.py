"""Frontends between textual QIR and the custom circuit IR.

The paper's Section III-A describes two ways a tool can accept QIR:

* a *custom parser* that skips LLVM entirely -- Example 3's "iterate over
  the lines [...] track the assignment of variables [...] match the
  instructions with a simple pattern".  That is
  :mod:`repro.frontend.base_parser`: fast, LLVM-free, **base profile
  only** (it rejects everything with classical control flow).
* the *LLVM AST route*: parse with the full IR parser, then walk the AST.
  That is :mod:`repro.frontend.importer`, which also understands the
  ``read_result``/branch diamonds of simple adaptive programs -- but, like
  any custom circuit IR, must give up (raise) on general classical code.

:mod:`repro.frontend.exporter` is the way back (Section III-B transpile
path): circuit -> QIR under either addressing mode.
"""

from repro.frontend.base_parser import BaseProfileParseError, parse_base_profile
from repro.frontend.importer import CircuitImportError, import_circuit
from repro.frontend.exporter import export_circuit, export_circuit_text

__all__ = [
    "BaseProfileParseError",
    "parse_base_profile",
    "CircuitImportError",
    "import_circuit",
    "export_circuit",
    "export_circuit_text",
]
