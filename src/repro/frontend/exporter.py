"""Circuit -> QIR exporter (the Section III-B transpile-back path)."""

from __future__ import annotations

from typing import Optional

from repro.circuit.circuit import Circuit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.llvmir.module import Module
from repro.qir.builder import SimpleModule
from repro.qir.profiles import AdaptiveProfile, BaseProfile, Profile


class CircuitExportError(ValueError):
    pass


def export_circuit(
    circuit: Circuit,
    addressing: str = "static",
    profile: Optional[Profile] = None,
    record_output: bool = True,
    entry_point_name: str = "main",
) -> SimpleModule:
    """Lower a circuit to a QIR :class:`SimpleModule`.

    The profile defaults to base when the circuit has no conditionals and
    adaptive otherwise.  Conditionals become ``read_result`` diamonds;
    OpenQASM-2 multi-bit register conditions are only exportable when they
    test a single bit (== 0 or a power of two), mirroring the adaptive
    profile's result-granularity feedback.
    """
    if profile is None:
        profile = AdaptiveProfile if circuit.has_conditionals() else BaseProfile
    if profile is BaseProfile and circuit.has_conditionals():
        raise CircuitExportError(
            "circuit contains classically-conditioned operations; "
            "the base profile cannot express them"
        )

    sm = SimpleModule(
        circuit.name,
        circuit.num_qubits,
        circuit.num_clbits,
        addressing=addressing,
        profile=profile,
        entry_point_name=entry_point_name,
    )

    for op in circuit.operations:
        _export_operation(sm, circuit, op)

    if record_output and circuit.num_clbits:
        labels = [repr(c) for c in circuit.clbits]
        sm.record_output(labels)
    return sm


def _export_operation(sm: SimpleModule, circuit: Circuit, op: Operation) -> None:
    if isinstance(op, GateOperation):
        sm.qis.gate(op.name, [circuit.qubit_index(q) for q in op.qubits], op.params)
        return
    if isinstance(op, Measurement):
        sm.qis.mz(circuit.qubit_index(op.qubit), circuit.clbit_index(op.clbit))
        return
    if isinstance(op, Reset):
        sm.qis.reset(circuit.qubit_index(op.qubit))
        return
    if isinstance(op, Barrier):
        return  # no QIR encoding; barriers are scheduling hints
    if isinstance(op, ConditionalOperation):
        _export_conditional(sm, circuit, op)
        return
    raise CircuitExportError(f"cannot export operation {op!r}")


def _export_conditional(
    sm: SimpleModule, circuit: Circuit, op: ConditionalOperation
) -> None:
    register = op.register
    value = op.value
    # Identify the single bit being tested.
    if register.size == 1:
        bit_index, expect_one = 0, bool(value)
    elif value == 0:
        raise CircuitExportError(
            "register == 0 conditions over multi-bit registers require "
            "conjunctive feedback; not expressible as one read_result"
        )
    elif value & (value - 1) == 0:  # single bit set
        bit_index, expect_one = value.bit_length() - 1, True
    else:
        raise CircuitExportError(
            f"condition {register.name} == {value} tests multiple bits; "
            "adaptive QIR feedback is per-result"
        )
    result_index = circuit.clbit_index(register[bit_index])

    def arm() -> None:
        _export_operation(sm, circuit, op.operation)

    if expect_one:
        sm.qis.if_result(result_index, one=arm)
    else:
        sm.qis.if_result(result_index, zero=arm)


def export_circuit_text(circuit: Circuit, **kwargs) -> str:
    """Convenience: circuit -> textual QIR."""
    return export_circuit(circuit, **kwargs).ir()
