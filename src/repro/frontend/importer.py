"""QIR AST -> circuit importer (the Section III-A "custom IR" route).

Walks the entry point's CFG symbolically.  Straight-line quantum code maps
one-to-one onto circuit operations.  The *only* classical control flow the
circuit IR can express is the single-result conditional
(:class:`~repro.circuit.operations.ConditionalOperation`), so the importer
recognises exactly the ``read_result`` diamond pattern the builder's
``if_result`` emits; anything richer raises :class:`CircuitImportError` --
the expressiveness wall the paper warns custom IRs hit on adaptive
programs (measured by the QOPT benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.operations import GateOperation, Operation
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    CondBranchInst,
    Instruction,
    LoadInst,
    ReturnInst,
    StoreInst,
)
from repro.llvmir.module import Module
from repro.llvmir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    Value,
)
from repro.qir.catalog import RT_PREFIX, parse_qis_name
from repro.passes.quantum.qubit_count import infer_counts


class CircuitImportError(ValueError):
    pass


class _SQubit:
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class _SResult:
    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class _SQubitArray:
    __slots__ = ("base", "size")

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size


class _SByteArray:
    __slots__ = ("size",)

    def __init__(self, size: int):
        self.size = size


class _SSlot:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: object = None


class _Importer:
    def __init__(self, fn: Function, name: str):
        self.fn = fn
        self.env: Dict[Value, object] = {}
        self.next_qubit_base = 0
        counts = infer_counts(fn)
        self.circuit = Circuit(name)
        self._pending_ops: List[Operation] = []
        # Honour the entry point's declared requirements (the Sec. IV-A
        # attribute route) -- programs may reserve more qubits/results than
        # their instructions touch, and register sizes should survive a
        # circuit -> QIR -> circuit round trip.
        declared_qubits = fn.get_attribute("required_num_qubits")
        declared_results = fn.get_attribute("required_num_results")
        self._num_results = max(
            counts.num_results,
            int(declared_results) if declared_results else 0,
        )
        self._max_qubit = max(
            counts.num_qubits,
            int(declared_qubits) if declared_qubits else 0,
        )

    def run(self) -> Circuit:
        ops = self._walk()
        num_qubits = max(self._max_qubit, self.next_qubit_base)
        if num_qubits:
            self.circuit.qreg(num_qubits, "q")
        if self._num_results:
            self.circuit.creg(self._num_results, "c")
        for op_kind, payload in ops:
            self._emit(op_kind, payload)
        return self.circuit

    # -- CFG walk -----------------------------------------------------------
    def _walk(self) -> List[Tuple[str, tuple]]:
        out: List[Tuple[str, tuple]] = []
        block: Optional[BasicBlock] = self.fn.entry_block
        visited = set()
        while block is not None:
            if block in visited:
                raise CircuitImportError(
                    f"loop detected at %{block.name}; unroll before importing"
                )
            visited.add(block)
            next_block: Optional[BasicBlock] = None
            for index, inst in enumerate(block.instructions):
                if isinstance(inst, ReturnInst):
                    return out
                if isinstance(inst, BranchInst):
                    next_block = inst.target
                    break
                if isinstance(inst, CondBranchInst):
                    merge = self._import_diamond(inst, out)
                    next_block = merge
                    break
                self._import_instruction(inst, out)
            block = next_block
        return out

    def _import_instruction(self, inst: Instruction, out: List[Tuple[str, tuple]]) -> None:
        if isinstance(inst, AllocaInst):
            self.env[inst] = _SSlot()
            return
        if isinstance(inst, StoreInst):
            slot = self.env.get(inst.pointer)
            if not isinstance(slot, _SSlot):
                raise CircuitImportError(f"store through unsupported pointer {inst!r}")
            slot.value = self._value(inst.value)
            return
        if isinstance(inst, LoadInst):
            slot = self.env.get(inst.pointer)
            if not isinstance(slot, _SSlot):
                raise CircuitImportError(f"load through unsupported pointer {inst!r}")
            self.env[inst] = slot.value
            return
        if isinstance(inst, CallInst):
            self._import_call(inst, out)
            return
        raise CircuitImportError(
            f"instruction '{inst.opcode}' has no circuit equivalent; "
            "the custom IR cannot represent general classical code"
        )

    def _import_call(self, inst: CallInst, out: List[Tuple[str, tuple]]) -> None:
        name = inst.callee.name or ""
        entry = parse_qis_name(name)
        if entry is not None:
            if entry.gate == "read_result":
                # Consumed by the block's conditional branch (the diamond
                # handler reads it straight off the branch condition).
                users = inst.users
                if len(users) == 1 and isinstance(users[0], CondBranchInst):
                    return
                raise CircuitImportError(
                    "read_result feeding general classical code is not "
                    "representable in the circuit IR"
                )
            params = [self._float(op) for op in inst.operands[: entry.num_params]]
            qubits = [
                self._qubit(op)
                for op in inst.operands[
                    entry.num_params : entry.num_params + entry.num_qubits
                ]
            ]
            if entry.gate == "mz":
                result = self._result(inst.operands[-1])
                out.append(("measure", (qubits[0], result)))
            elif entry.gate == "m":
                raise CircuitImportError(
                    "dynamic results (m__body) are not representable; "
                    "use mz with static results"
                )
            elif entry.gate == "reset":
                out.append(("reset", (qubits[0],)))
            else:
                out.append(("gate", (entry.gate, tuple(params), tuple(qubits))))
            return
        if name == f"{RT_PREFIX}qubit_allocate_array":
            size_op = inst.operands[0]
            if not isinstance(size_op, ConstantInt):
                raise CircuitImportError("non-constant qubit array size")
            self.env[inst] = _SQubitArray(self.next_qubit_base, size_op.value)
            self.next_qubit_base += size_op.value
            return
        if name == f"{RT_PREFIX}qubit_allocate":
            self.env[inst] = _SQubit(self.next_qubit_base)
            self.next_qubit_base += 1
            return
        if name == f"{RT_PREFIX}array_create_1d":
            size_op = inst.operands[1]
            if not isinstance(size_op, ConstantInt):
                raise CircuitImportError("non-constant array size")
            self.env[inst] = _SByteArray(size_op.value)
            return
        if name == f"{RT_PREFIX}array_get_element_ptr_1d":
            array = self._value(inst.operands[0])
            index_op = inst.operands[1]
            if not isinstance(index_op, ConstantInt):
                raise CircuitImportError("non-constant array index")
            if isinstance(array, _SQubitArray):
                if not 0 <= index_op.value < array.size:
                    raise CircuitImportError("qubit index out of bounds")
                self.env[inst] = _SQubit(array.base + index_op.value)
            elif isinstance(array, _SByteArray):
                self.env[inst] = _SResult(index_op.value)
                self._num_results = max(self._num_results, index_op.value + 1)
            else:
                raise CircuitImportError("element_ptr into unknown array")
            return
        if name in (
            f"{RT_PREFIX}qubit_release",
            f"{RT_PREFIX}qubit_release_array",
            f"{RT_PREFIX}initialize",
            f"{RT_PREFIX}array_update_reference_count",
            f"{RT_PREFIX}array_update_alias_count",
            f"{RT_PREFIX}result_update_reference_count",
            f"{RT_PREFIX}array_record_output",
            f"{RT_PREFIX}result_record_output",
            f"{RT_PREFIX}tuple_record_output",
        ):
            return
        raise CircuitImportError(f"call to @{name} has no circuit equivalent")

    # -- the read_result diamond (simple adaptive programs) -----------------
    def _import_diamond(
        self, branch: CondBranchInst, out: List[Tuple[str, tuple]]
    ) -> BasicBlock:
        cond = branch.condition
        if not (
            isinstance(cond, CallInst)
            and parse_qis_name(cond.callee.name or "") is not None
            and parse_qis_name(cond.callee.name or "").gate == "read_result"  # type: ignore[union-attr]
        ):
            raise CircuitImportError(
                "conditional branch on a value that is not read_result; "
                "general classical control flow is not representable"
            )
        result_index = self._result(cond.operands[0])

        then_ops = self._arm_ops(branch.true_target)
        else_ops = self._arm_ops(branch.false_target)
        then_merge = branch.true_target.terminator
        else_merge = branch.false_target.terminator
        assert isinstance(then_merge, BranchInst) and isinstance(else_merge, BranchInst)
        if then_merge.target is not else_merge.target:
            raise CircuitImportError("conditional arms do not reconverge")

        for op in then_ops:
            out.append(("cond", (result_index, 1, op)))
        for op in else_ops:
            out.append(("cond", (result_index, 0, op)))
        return then_merge.target

    def _arm_ops(self, block: BasicBlock) -> List[Tuple[str, tuple]]:
        ops: List[Tuple[str, tuple]] = []
        for inst in block.instructions:
            if isinstance(inst, BranchInst):
                return ops
            if not isinstance(inst, CallInst):
                raise CircuitImportError(
                    f"conditional arm contains non-call '{inst.opcode}'"
                )
            entry = parse_qis_name(inst.callee.name or "")
            if entry is None or entry.gate in ("m", "read_result"):
                raise CircuitImportError(
                    "conditional arm may contain only simple gates/mz/reset"
                )
            params = [self._float(op) for op in inst.operands[: entry.num_params]]
            qubits = [
                self._qubit(op)
                for op in inst.operands[
                    entry.num_params : entry.num_params + entry.num_qubits
                ]
            ]
            if entry.gate == "mz":
                result = self._result(inst.operands[-1])
                ops.append(("measure", (qubits[0], result)))
            elif entry.gate == "reset":
                ops.append(("reset", (qubits[0],)))
            else:
                ops.append(("gate", (entry.gate, tuple(params), tuple(qubits))))
        raise CircuitImportError("conditional arm lacks a terminator")

    # -- emission ---------------------------------------------------------------
    def _emit(self, kind: str, payload: tuple) -> None:
        if kind == "gate":
            gate, params, qubits = payload
            self._max_qubit = max(self._max_qubit, max(qubits) + 1)
            self.circuit.gate(gate, list(qubits), list(params))
        elif kind == "measure":
            qubit, result = payload
            self.circuit.measure(qubit, result)
        elif kind == "reset":
            (qubit,) = payload
            self.circuit.reset(qubit)
        elif kind == "cond":
            result_index, value, (ikind, ipayload) = payload
            creg = self.circuit.cregs[0]
            if ikind == "gate":
                gate, params, qubits = ipayload
                inner: Operation = GateOperation(
                    gate,
                    [self.circuit._resolve_qubit(q) for q in qubits],
                    list(params),
                )
            elif ikind == "measure":
                from repro.circuit.operations import Measurement

                qubit, result = ipayload
                inner = Measurement(
                    self.circuit._resolve_qubit(qubit),
                    self.circuit._resolve_clbit(result),
                )
            elif ikind == "reset":
                from repro.circuit.operations import Reset

                inner = Reset(self.circuit._resolve_qubit(ipayload[0]))
            else:  # pragma: no cover
                raise CircuitImportError(f"bad conditional payload {ikind}")
            # Single-bit condition: expressed as register == value only when
            # the register has one bit; otherwise refuse (OpenQASM-2 if
            # compares whole registers).
            if creg.size != 1 and value == 1:
                # register == value with only bit `result_index` set
                self.circuit.c_if(creg, 1 << result_index, inner)
            elif creg.size != 1 and value == 0:
                self.circuit.c_if(creg, 0, inner)
            else:
                self.circuit.c_if(creg, value, inner)
        else:  # pragma: no cover
            raise CircuitImportError(f"bad op kind {kind}")

    # -- value resolution ---------------------------------------------------------
    def _value(self, value: Value) -> object:
        if isinstance(value, ConstantNull):
            return _SQubit(0)  # interpretation depends on position; see _qubit
        if isinstance(value, ConstantPointerInt):
            return _SQubit(value.address)
        if isinstance(value, (ConstantInt, ConstantFloat)):
            return value  # scalar constants flow through slots untouched
        resolved = self.env.get(value)
        if resolved is None:
            raise CircuitImportError(f"cannot resolve value {value!r}")
        return resolved

    def _qubit(self, value: Value) -> int:
        if isinstance(value, ConstantNull):
            return 0
        if isinstance(value, ConstantPointerInt):
            return value.address
        resolved = self.env.get(value)
        if isinstance(resolved, _SQubit):
            return resolved.index
        raise CircuitImportError(f"operand {value!r} is not a qubit pointer")

    def _result(self, value: Value) -> int:
        if isinstance(value, ConstantNull):
            index = 0
        elif isinstance(value, ConstantPointerInt):
            index = value.address
        else:
            resolved = self.env.get(value)
            if not isinstance(resolved, _SResult):
                raise CircuitImportError(f"operand {value!r} is not a result pointer")
            index = resolved.index
        self._num_results = max(self._num_results, index + 1)
        return index

    def _float(self, value: Value) -> float:
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, ConstantInt):
            return float(value.value)
        raise CircuitImportError(
            f"non-constant gate parameter {value!r}; fold constants first"
        )


def import_circuit(
    module: Module, entry: Optional[str] = None, name: Optional[str] = None
) -> Circuit:
    """Convert a QIR module's entry point into a :class:`Circuit`."""
    if entry is not None:
        fn = module.get_function(entry)
        if fn is None or fn.is_declaration:
            raise CircuitImportError(f"no defined function @{entry}")
    else:
        entry_points = module.entry_points()
        if len(entry_points) != 1:
            defined = module.defined_functions()
            if len(defined) == 1:
                entry_points = defined
            else:
                raise CircuitImportError(
                    "ambiguous entry point; pass entry= explicitly"
                )
        fn = entry_points[0]
    return _Importer(fn, name or fn.name or "imported").run()
