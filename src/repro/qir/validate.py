"""Profile conformance validation.

``validate_profile(module, profile)`` returns the list of violations (empty
when conformant); ``check_profile`` raises on the first.  The PROF
benchmark measures validation cost and verifies that each adaptive-only
construct is individually rejected by the base profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GetElementPtrInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
    SwitchInst,
)
from repro.llvmir.module import Module
from repro.analysis.loops import find_natural_loops
from repro.qir.catalog import (
    QIS_PREFIX,
    RT_PREFIX,
    is_quantum_function,
    parse_qis_name,
)
from repro.qir.profiles import Profile


@dataclass(frozen=True)
class ProfileViolation:
    rule: str
    message: str
    function: Optional[str] = None

    def __str__(self) -> str:
        where = f" in @{self.function}" if self.function else ""
        return f"[{self.rule}]{where}: {self.message}"


class ProfileError(ValueError):
    def __init__(self, violations: List[ProfileViolation]):
        super().__init__(
            "profile validation failed:\n"
            + "\n".join(f"  - {v}" for v in violations)
        )
        self.violations = violations


_DYNAMIC_QUBIT_FNS = {
    f"{RT_PREFIX}qubit_allocate",
    f"{RT_PREFIX}qubit_release",
    f"{RT_PREFIX}qubit_allocate_array",
    f"{RT_PREFIX}qubit_release_array",
}

_RESULT_FEEDBACK_FNS = {
    f"{QIS_PREFIX}read_result__body",
    f"{RT_PREFIX}result_equal",
    f"{RT_PREFIX}result_get_one",
    f"{RT_PREFIX}result_get_zero",
}


def validate_profile(module: Module, profile: Profile) -> List[ProfileViolation]:
    violations: List[ProfileViolation] = []

    entry_points = module.entry_points()
    if profile.require_entry_point_attributes:
        if not entry_points:
            violations.append(
                ProfileViolation(
                    "entry-point", "module declares no entry_point function"
                )
            )
        for fn in entry_points:
            profiles_attr = fn.get_attribute("qir_profiles")
            if profiles_attr is None:
                violations.append(
                    ProfileViolation(
                        "entry-point",
                        'missing "qir_profiles" attribute',
                        fn.name,
                    )
                )
            if not profile.allow_dynamic_qubits and fn.get_attribute(
                "required_num_qubits"
            ) is None:
                violations.append(
                    ProfileViolation(
                        "entry-point",
                        'missing "required_num_qubits" attribute',
                        fn.name,
                    )
                )

    if profile.require_module_flags:
        if module.get_module_flag("qir_major_version") is None:
            violations.append(
                ProfileViolation(
                    "module-flags", 'missing "qir_major_version" module flag'
                )
            )

    for fn in module.defined_functions():
        if not fn.is_entry_point and not profile.allow_user_functions:
            violations.append(
                ProfileViolation(
                    "user-functions",
                    "defined non-entry-point functions are not allowed",
                    fn.name,
                )
            )
        violations.extend(_validate_body(fn, profile))

    return violations


def check_profile(module: Module, profile: Profile) -> None:
    violations = validate_profile(module, profile)
    if violations:
        raise ProfileError(violations)


def _validate_body(fn: Function, profile: Profile) -> List[ProfileViolation]:
    out: List[ProfileViolation] = []

    def bad(rule: str, message: str) -> None:
        out.append(ProfileViolation(rule, message, fn.name))

    if not profile.allow_multiple_blocks and len(fn.blocks) > 1:
        bad(
            "control-flow",
            f"{len(fn.blocks)} basic blocks; profile allows straight-line code only",
        )

    if profile.allow_multiple_blocks and not profile.allow_loops and len(fn.blocks) > 1:
        loops = find_natural_loops(fn)
        if len(loops):
            headers = ", ".join(f"%{l.header.name}" for l in loops)
            bad("loops", f"natural loops with headers {headers} are not allowed")

    seen_quantum_after_output = False
    for inst in fn.instructions():
        if isinstance(inst, (BranchInst,)):
            continue
        if isinstance(inst, (CondBranchInst, SwitchInst, PhiInst, SelectInst)):
            if not profile.allow_multiple_blocks:
                bad("control-flow", f"'{inst.opcode}' requires an adaptive profile")
            continue
        if isinstance(inst, (AllocaInst, LoadInst, StoreInst, GetElementPtrInst)):
            if not profile.allow_memory:
                bad("memory", f"'{inst.opcode}' is not allowed in this profile")
            continue
        if isinstance(inst, (BinaryInst, ICmpInst)):
            is_float = inst.opcode.startswith("f") and inst.opcode != "fcmp"
            if isinstance(inst, BinaryInst) and inst.opcode.startswith("f"):
                if not profile.allow_float_computations:
                    bad(
                        "float-computation",
                        f"'{inst.opcode}' requires float computation support",
                    )
            elif not profile.allow_int_computations:
                bad(
                    "int-computation",
                    f"'{inst.opcode}' requires integer computation support",
                )
            continue
        if isinstance(inst, FCmpInst):
            if not profile.allow_float_computations:
                bad("float-computation", "'fcmp' requires float computation support")
            continue
        if isinstance(inst, CastInst):
            if inst.opcode in ("sitofp", "uitofp", "fptosi", "fptoui"):
                if not profile.allow_float_computations:
                    bad(
                        "float-computation",
                        f"'{inst.opcode}' requires float computation support",
                    )
            elif not profile.allow_int_computations:
                bad("int-computation", f"'{inst.opcode}' requires integer computation support")
            continue
        if isinstance(inst, CallInst):
            name = inst.callee.name or ""
            if not is_quantum_function(name):
                if not profile.allow_user_functions:
                    bad("calls", f"call to non-quantum function @{name}")
                continue
            if name in _DYNAMIC_QUBIT_FNS and not profile.allow_dynamic_qubits:
                bad("dynamic-qubits", f"@{name} requires dynamic qubit management")
            if name in _RESULT_FEEDBACK_FNS and not profile.allow_result_feedback:
                bad("result-feedback", f"@{name} requires an adaptive profile")
            entry = parse_qis_name(name)
            if entry is not None and entry.returns_result and not profile.allow_dynamic_results:
                bad(
                    "dynamic-results",
                    f"@{name} returns a dynamic result; use mz with a static result",
                )
            continue

    return out
