"""PyQIR-style program construction: ``SimpleModule`` + ``BasicQisBuilder``.

Supports both qubit addressing schemes the paper contrasts:

* ``addressing="static"`` (Example 6): qubits and results are the constant
  pointers ``null``, ``inttoptr (i64 1 to ptr)``, ... -- no runtime
  allocation calls appear in the program.
* ``addressing="dynamic"`` (Example 2 / Figure 1): an entry sequence
  allocates a qubit array via ``__quantum__rt__qubit_allocate_array`` and
  every access goes through ``__quantum__rt__array_get_element_ptr_1d``
  with the array pointer spilled to / reloaded from an ``alloca`` slot,
  mirroring the unoptimised front-end output shown in Figure 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.llvmir.builder import IRBuilder
from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst
from repro.llvmir.module import Module
from repro.llvmir.printer import print_module
from repro.llvmir.types import FunctionType, double, i1, i64, ptr, void
from repro.llvmir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    ConstantString,
    GlobalVariable,
    Value,
)
from repro.qir.catalog import (
    QIS_PREFIX,
    RT_PREFIX,
    qis_function_name,
    qis_signature,
    rt_signature,
)
from repro.qir.profiles import BaseProfile, Profile


def static_qubit(index: int) -> Value:
    """The constant pointer for a statically-addressed qubit (Ex. 6)."""
    return ConstantNull() if index == 0 else ConstantPointerInt(index)


def static_result(index: int) -> Value:
    return ConstantNull() if index == 0 else ConstantPointerInt(index)


class SimpleModule:
    """A QIR module under construction with one entry point.

    Mirrors PyQIR's ``SimpleModule``: fixed numbers of qubits and results,
    a positioned builder, and a ``qis`` namespace for gate calls.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        num_results: int,
        addressing: str = "static",
        profile: Profile = BaseProfile,
        entry_point_name: str = "main",
    ):
        if addressing not in ("static", "dynamic"):
            raise ValueError(f"unknown addressing mode {addressing!r}")
        if num_qubits < 0 or num_results < 0:
            raise ValueError("qubit/result counts must be non-negative")
        self.module = Module(name)
        self.module.source_filename = f"{name}.ll"
        self.num_qubits = num_qubits
        self.num_results = num_results
        self.addressing = addressing
        self.profile = profile

        attrs = {
            "entry_point": None,
            "qir_profiles": profile.name,
            "output_labeling_schema": "schema_id",
            "required_num_qubits": str(num_qubits),
            "required_num_results": str(num_results),
        }
        group = self.module.create_attribute_group(attrs)
        self.entry_point: Function = self.module.define_function(
            entry_point_name, FunctionType(void, [])
        )
        self.entry_point.attribute_group = group
        entry_block = self.entry_point.create_block("entry")
        self.builder = IRBuilder(entry_block)

        self.module.set_qir_profile_flags(
            dynamic_qubit_management=(addressing == "dynamic"),
            dynamic_result_management=False,
        )

        self._qubit_array_slot = None
        self._qubit_values: Optional[List[Value]] = None
        self._result_values: List[Value] = [
            static_result(i) for i in range(num_results)
        ]
        self._finished = False
        self._label_counter = 0

        if addressing == "dynamic" and num_qubits > 0:
            alloc = self._declare_rt(f"{RT_PREFIX}qubit_allocate_array")
            slot = self.builder.alloca(ptr, align=8, name="q")
            array = self.builder.call(alloc, [ConstantInt(i64, num_qubits)])
            self.builder.store(array, slot, align=8)
            self._qubit_array_slot = slot
        else:
            self._qubit_values = [static_qubit(i) for i in range(num_qubits)]

        self.qis = BasicQisBuilder(self)

    # -- declarations -----------------------------------------------------------
    def _declare_rt(self, name: str) -> Function:
        return self.module.declare_function(name, rt_signature(name))

    def _declare_qis(self, name: str) -> Function:
        return self.module.declare_function(name, qis_signature(name))

    # -- qubit / result handles ---------------------------------------------------
    def qubit(self, index: int) -> Value:
        """The Value for qubit ``index`` (constant or freshly loaded)."""
        if not 0 <= index < self.num_qubits:
            raise IndexError(f"qubit {index} out of range")
        if self._qubit_values is not None:
            return self._qubit_values[index]
        # Dynamic: reload the array pointer and index it, as Fig. 1 does.
        load = self.builder.load(ptr, self._qubit_array_slot, align=8)
        getel = self._declare_rt(f"{RT_PREFIX}array_get_element_ptr_1d")
        return self.builder.call(getel, [load, ConstantInt(i64, index)])

    @property
    def qubits(self) -> List[Value]:
        return [self.qubit(i) for i in range(self.num_qubits)]

    def result(self, index: int) -> Value:
        if not 0 <= index < self.num_results:
            raise IndexError(f"result {index} out of range")
        return self._result_values[index]

    @property
    def results(self) -> List[Value]:
        return list(self._result_values)

    # -- output recording -----------------------------------------------------------
    def _label_global(self, text: str) -> GlobalVariable:
        name = str(self._label_counter)
        self._label_counter += 1
        gv = GlobalVariable(name, ConstantString.from_text(text))
        self.module.add_global(gv)
        return gv

    def record_output(self, labels: Optional[Sequence[str]] = None) -> None:
        """Emit the base-profile output-recording epilogue: one array header
        plus one ``result_record_output`` per result."""
        array_rec = self._declare_rt(f"{RT_PREFIX}array_record_output")
        result_rec = self._declare_rt(f"{RT_PREFIX}result_record_output")
        array_label = self._label_global("results")
        self.builder.call(
            array_rec, [ConstantInt(i64, self.num_results), array_label]
        )
        for i in range(self.num_results):
            text = labels[i] if labels is not None else f"r{i}"
            self.builder.call(
                result_rec, [self.result(i), self._label_global(text)]
            )

    # -- finalisation -----------------------------------------------------------
    def ir(self) -> str:
        """Serialise to textual QIR; terminates the entry point if needed."""
        if not self._finished:
            if self.addressing == "dynamic" and self._qubit_array_slot is not None:
                release = self._declare_rt(f"{RT_PREFIX}qubit_release_array")
                array = self.builder.load(ptr, self._qubit_array_slot, align=8)
                self.builder.call(release, [array])
            self.builder.ret_void()
            self._finished = True
        return print_module(self.module)

    def finished_module(self) -> Module:
        self.ir()
        return self.module


class BasicQisBuilder:
    """Gate-level construction API over a :class:`SimpleModule`.

    Every method emits a ``call`` to the corresponding QIS function, e.g.
    ``qis.h(0)`` emits ``call void @__quantum__qis__h__body(ptr null)``.
    Qubit arguments are indices (resolved per the module's addressing mode)
    or pre-built pointer Values.
    """

    def __init__(self, sm: SimpleModule):
        self._sm = sm

    def _q(self, qubit) -> Value:
        if isinstance(qubit, Value):
            return qubit
        return self._sm.qubit(int(qubit))

    def _r(self, result) -> Value:
        if isinstance(result, Value):
            return result
        return self._sm.result(int(result))

    def gate(self, name: str, qubits: Sequence, params: Sequence[float] = ()) -> CallInst:
        fname = qis_function_name(name)
        fn = self._sm._declare_qis(fname)
        args: List[Value] = [ConstantFloat(double, p) for p in params]
        args.extend(self._q(q) for q in qubits)
        return self._sm.builder.call(fn, args)

    def h(self, q) -> CallInst:
        return self.gate("h", [q])

    def x(self, q) -> CallInst:
        return self.gate("x", [q])

    def y(self, q) -> CallInst:
        return self.gate("y", [q])

    def z(self, q) -> CallInst:
        return self.gate("z", [q])

    def s(self, q) -> CallInst:
        return self.gate("s", [q])

    def s_adj(self, q) -> CallInst:
        return self.gate("s_adj", [q])

    def t(self, q) -> CallInst:
        return self.gate("t", [q])

    def t_adj(self, q) -> CallInst:
        return self.gate("t_adj", [q])

    def rx(self, theta: float, q) -> CallInst:
        return self.gate("rx", [q], [theta])

    def ry(self, theta: float, q) -> CallInst:
        return self.gate("ry", [q], [theta])

    def rz(self, theta: float, q) -> CallInst:
        return self.gate("rz", [q], [theta])

    def cnot(self, control, target) -> CallInst:
        return self.gate("cnot", [control, target])

    cx = cnot

    def cz(self, control, target) -> CallInst:
        return self.gate("cz", [control, target])

    def swap(self, a, b) -> CallInst:
        return self.gate("swap", [a, b])

    def ccx(self, c1, c2, target) -> CallInst:
        return self.gate("ccx", [c1, c2, target])

    def reset(self, q) -> CallInst:
        fname = f"{QIS_PREFIX}reset__body"
        fn = self._sm._declare_qis(fname)
        return self._sm.builder.call(fn, [self._q(q)])

    def mz(self, qubit, result) -> CallInst:
        """Measure into a static result (base-profile style)."""
        fname = f"{QIS_PREFIX}mz__body"
        fn = self._sm._declare_qis(fname)
        return self._sm.builder.call(
            fn,
            [self._q(qubit), self._r(result)],
            arg_attrs=[(), ("writeonly",)],
        )

    def m(self, qubit) -> CallInst:
        """Measure returning a dynamic result pointer (full QIR style)."""
        fname = f"{QIS_PREFIX}m__body"
        fn = self._sm._declare_qis(fname)
        return self._sm.builder.call(fn, [self._q(qubit)])

    def read_result(self, result) -> CallInst:
        """Read a measurement outcome as an ``i1`` (adaptive profiles)."""
        fname = f"{QIS_PREFIX}read_result__body"
        fn = self._sm.module.declare_function(
            fname, FunctionType(i1, [ptr])
        )
        return self._sm.builder.call(fn, [self._r(result)])

    def if_result(self, result, one=None, zero=None) -> None:
        """Branch on a measurement result (PyQIR's ``if_result``).

        ``one``/``zero`` are zero-argument callables emitting the
        respective arm's instructions; emits the CFG diamond around them.
        """
        sm = self._sm
        read = self.read_result(result)
        fn = sm.entry_point
        then_block = fn.create_block()
        else_block = fn.create_block()
        merge_block = fn.create_block()
        sm.builder.cbr(read, then_block, else_block)
        sm.builder.position_at_end(then_block)
        if one is not None:
            one()
        sm.builder.br(merge_block)
        sm.builder.position_at_end(else_block)
        if zero is not None:
            zero()
        sm.builder.br(merge_block)
        sm.builder.position_at_end(merge_block)
