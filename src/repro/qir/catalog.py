"""The QIR function vocabulary.

QIR expresses quantum operations as calls to declared functions in two
namespaces (paper, Section II-C):

* ``__quantum__qis__<op>__<variant>`` -- the *quantum instruction set*:
  gates, measurement, reset.  Parameters come first (``double``), then
  qubit pointers, then (for ``mz``) the result pointer.
* ``__quantum__rt__<name>`` -- the *runtime*: qubit/array/result management
  and output recording.

One deliberate simplification versus historical QIR (documented in
DESIGN.md): ``__quantum__rt__array_get_element_ptr_1d`` yields the qubit
pointer itself rather than a pointer-to-pointer needing a ``load``/
``bitcast`` pair -- the convention the paper's own Figure 1 uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.llvmir.types import FunctionType, IRType, double, i1, i32, i64, ptr, void
from repro.sim.gates import GATE_SET, canonical_name

QIS_PREFIX = "__quantum__qis__"
RT_PREFIX = "__quantum__rt__"


@dataclass(frozen=True)
class QisGate:
    """A quantum-instruction-set entry resolved to a canonical gate."""

    function_name: str
    gate: str  # canonical gate name in repro.sim.gates, or "mz"/"m"/"reset"...
    num_qubits: int
    num_params: int
    returns_result: bool = False  # __quantum__qis__m__body style
    takes_result: bool = False  # __quantum__qis__mz__body style
    returns_bool: bool = False  # read_result

    def signature(self) -> FunctionType:
        params: Tuple[IRType, ...] = tuple(
            [double] * self.num_params + [ptr] * self.num_qubits
        )
        if self.takes_result:
            params = params + (ptr,)
        if self.returns_result:
            return FunctionType(ptr, params)
        if self.returns_bool:
            # read_result consumes a result pointer rather than a qubit.
            return FunctionType(i1, params or (ptr,))
        return FunctionType(void, params)


def qis_function_name(gate: str, variant: str = "body") -> str:
    """``("h", "body") -> "__quantum__qis__h__body"``.

    Canonical adjoint gates map onto QIR's ``__adj`` variants:
    ``s_adj`` becomes ``__quantum__qis__s__adj``.
    """
    gate = canonical_name(gate)
    if gate.endswith("_adj"):
        gate, variant = gate[:-4], "adj"
    return f"{QIS_PREFIX}{gate}__{variant}"


def _build_qis_gates() -> Dict[str, QisGate]:
    table: Dict[str, QisGate] = {}
    for name, spec in GATE_SET.items():
        fname = qis_function_name(name)
        table[fname] = QisGate(fname, name, spec.num_qubits, spec.num_params)
    # Measurement / reset entries.
    mz = f"{QIS_PREFIX}mz__body"
    table[mz] = QisGate(mz, "mz", 1, 0, takes_result=True)
    m = f"{QIS_PREFIX}m__body"
    table[m] = QisGate(m, "m", 1, 0, returns_result=True)
    reset = f"{QIS_PREFIX}reset__body"
    table[reset] = QisGate(reset, "reset", 1, 0)
    read_result = f"{QIS_PREFIX}read_result__body"
    table[read_result] = QisGate(read_result, "read_result", 0, 0, returns_bool=True)
    # cz/cnot already covered via GATE_SET; toffoli alias for ccx:
    toffoli = f"{QIS_PREFIX}toffoli__body"
    table[toffoli] = QisGate(toffoli, "ccx", 3, 0)
    # cx alias appears in some emitters
    cx = f"{QIS_PREFIX}cx__body"
    table[cx] = QisGate(cx, "cnot", 2, 0)
    return table


QIS_GATES: Dict[str, QisGate] = _build_qis_gates()


def parse_qis_name(function_name: str) -> Optional[QisGate]:
    """Resolve a ``__quantum__qis__*`` symbol, or None if unknown."""
    return QIS_GATES.get(function_name)


def qis_signature(function_name: str) -> FunctionType:
    entry = QIS_GATES.get(function_name)
    if entry is None:
        raise KeyError(f"unknown QIS function {function_name!r}")
    return entry.signature()


# Runtime function signatures.
RT_FUNCTIONS: Dict[str, FunctionType] = {
    f"{RT_PREFIX}initialize": FunctionType(void, [ptr]),
    # qubit management (dynamic addressing, paper Ex. 2 / Sec. IV-A)
    f"{RT_PREFIX}qubit_allocate": FunctionType(ptr, []),
    f"{RT_PREFIX}qubit_release": FunctionType(void, [ptr]),
    f"{RT_PREFIX}qubit_allocate_array": FunctionType(ptr, [i64]),
    f"{RT_PREFIX}qubit_release_array": FunctionType(void, [ptr]),
    # generic 1-d arrays (classical-bit containers in Fig. 1)
    f"{RT_PREFIX}array_create_1d": FunctionType(ptr, [i32, i64]),
    f"{RT_PREFIX}array_get_element_ptr_1d": FunctionType(ptr, [ptr, i64]),
    f"{RT_PREFIX}array_get_size_1d": FunctionType(i64, [ptr]),
    f"{RT_PREFIX}array_update_reference_count": FunctionType(void, [ptr, i32]),
    f"{RT_PREFIX}array_update_alias_count": FunctionType(void, [ptr, i32]),
    # results
    f"{RT_PREFIX}result_get_one": FunctionType(ptr, []),
    f"{RT_PREFIX}result_get_zero": FunctionType(ptr, []),
    f"{RT_PREFIX}result_equal": FunctionType(i1, [ptr, ptr]),
    f"{RT_PREFIX}result_update_reference_count": FunctionType(void, [ptr, i32]),
    # output recording (base profile epilogue)
    f"{RT_PREFIX}result_record_output": FunctionType(void, [ptr, ptr]),
    f"{RT_PREFIX}array_record_output": FunctionType(void, [i64, ptr]),
    f"{RT_PREFIX}tuple_record_output": FunctionType(void, [i64, ptr]),
    f"{RT_PREFIX}bool_record_output": FunctionType(void, [i1, ptr]),
    f"{RT_PREFIX}int_record_output": FunctionType(void, [i64, ptr]),
    f"{RT_PREFIX}double_record_output": FunctionType(void, [double, ptr]),
    # diagnostics
    f"{RT_PREFIX}message": FunctionType(void, [ptr]),
    f"{RT_PREFIX}fail": FunctionType(void, [ptr]),
}


def rt_signature(function_name: str) -> FunctionType:
    sig = RT_FUNCTIONS.get(function_name)
    if sig is None:
        raise KeyError(f"unknown RT function {function_name!r}")
    return sig


def is_qis_function(name: str) -> bool:
    return name.startswith(QIS_PREFIX)


def is_rt_function(name: str) -> bool:
    return name.startswith(RT_PREFIX)


def is_quantum_function(name: str) -> bool:
    return is_qis_function(name) or is_rt_function(name)
