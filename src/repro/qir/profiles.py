"""QIR profiles: graded restrictions of full QIR (paper, Section II-C).

"In its most restrictive form, the *base profile* only allows a sequence of
quantum instructions that ends with the measurement of all qubits [...].
The more permissive *adaptive profiles* allow the successive transition to
fully support all features contained in LLVM IR."

Each profile is a declarative capability set; :mod:`repro.qir.validate`
enforces it against a module.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Profile:
    """A capability set restricting which IR constructs a module may use."""

    name: str
    # control flow
    allow_multiple_blocks: bool = False
    allow_loops: bool = False  # requires allow_multiple_blocks
    # classical computation
    allow_int_computations: bool = False
    allow_float_computations: bool = False
    allow_memory: bool = False  # alloca/load/store/gep
    # quantum/classical interaction
    allow_result_feedback: bool = False  # read_result / result_equal / br on it
    allow_dynamic_qubits: bool = False  # rt qubit_allocate*
    allow_dynamic_results: bool = False  # qis m (returns Result*)
    # structure
    require_entry_point_attributes: bool = True
    require_module_flags: bool = True
    allow_user_functions: bool = False  # callable non-entry definitions

    def flag_name(self) -> str:
        return self.name


# The canonical profile instances.
BaseProfile = Profile(name="base_profile")

# The adaptive profile as specified by the QIR Alliance (Adaptive_RI:
# "Results and Integers"): forward branching on measurement results and
# integer computation, no loops.
AdaptiveProfile = Profile(
    name="adaptive_profile",
    allow_multiple_blocks=True,
    allow_loops=False,
    allow_int_computations=True,
    allow_result_feedback=True,
)

# An adaptive variant that also admits floating-point computation (the
# "Adaptive_RIF" direction) -- used by the VQE example.
AdaptiveProfileF = Profile(
    name="adaptive_profile_f",
    allow_multiple_blocks=True,
    allow_loops=False,
    allow_int_computations=True,
    allow_float_computations=True,
    allow_result_feedback=True,
)

# Unrestricted QIR: the full superset of LLVM IR (paper, Sec. II-C).
FullProfile = Profile(
    name="full",
    allow_multiple_blocks=True,
    allow_loops=True,
    allow_int_computations=True,
    allow_float_computations=True,
    allow_memory=True,
    allow_result_feedback=True,
    allow_dynamic_qubits=True,
    allow_dynamic_results=True,
    require_entry_point_attributes=False,
    require_module_flags=False,
    allow_user_functions=True,
)

_PROFILES = {
    p.name: p
    for p in (BaseProfile, AdaptiveProfile, AdaptiveProfileF, FullProfile)
}


def profile_by_name(name: str) -> Profile:
    profile = _PROFILES.get(name)
    if profile is None:
        raise KeyError(
            f"unknown profile {name!r}; have {sorted(_PROFILES)}"
        )
    return profile
