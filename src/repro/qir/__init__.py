"""The QIR layer: everything that makes an LLVM module a *QIR* module.

* :mod:`repro.qir.catalog` -- the ``__quantum__qis__*`` / ``__quantum__rt__*``
  function vocabulary and signatures.
* :mod:`repro.qir.profiles` -- the base and adaptive profile definitions
  (paper, Section II-C).
* :mod:`repro.qir.validate` -- profile conformance checking.
* :mod:`repro.qir.builder` -- a PyQIR-style program construction API
  (``SimpleModule`` / ``BasicQisBuilder``) supporting both dynamic and
  static qubit addressing (paper, Examples 2 and 6).
"""

from repro.qir.catalog import (
    QIS_GATES,
    QisGate,
    parse_qis_name,
    qis_function_name,
    qis_signature,
    rt_signature,
    RT_FUNCTIONS,
)
from repro.qir.profiles import (
    AdaptiveProfile,
    BaseProfile,
    FullProfile,
    Profile,
    profile_by_name,
)
from repro.qir.validate import ProfileViolation, validate_profile
from repro.qir.builder import BasicQisBuilder, SimpleModule

__all__ = [
    "QIS_GATES",
    "QisGate",
    "parse_qis_name",
    "qis_function_name",
    "qis_signature",
    "rt_signature",
    "RT_FUNCTIONS",
    "AdaptiveProfile",
    "BaseProfile",
    "FullProfile",
    "Profile",
    "profile_by_name",
    "ProfileViolation",
    "validate_profile",
    "BasicQisBuilder",
    "SimpleModule",
]
