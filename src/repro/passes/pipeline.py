"""Standard pass pipelines.

``unroll_pipeline`` is the paper's Example 4 recipe: promote the loop
counter out of memory, unroll, fold the per-iteration induction values,
and flatten the CFG -- after which a quantum tool "sees only the ten
individual Hadamard gates".

The o1/unroll pipelines carry default per-pass :class:`Budget`
declarations (the ROADMAP "per-pass time budgets" item): generous
ceilings that a healthy pass never hits, so a bust in ``qir-opt
--profile`` or ``qir-bench check`` is a real anomaly, not noise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.passes.constant_fold import ConstantFoldPass
from repro.passes.constprop import ConstantPropagationPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.inline import InlinePass
from repro.passes.manager import Budget, PassManager
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.simplify_cfg import SimplifyCFGPass
from repro.passes.unroll import LoopUnrollPass

# One pass execution on a benchmark-sized module should finish well under
# a second; the iteration ceiling matches the pipelines' max_iterations
# so it only fires when a pass keeps rewriting at the fixpoint limit.
DEFAULT_PASS_BUDGET = Budget(max_seconds=1.0, max_iterations=4)


def _default_budgets(manager: PassManager) -> Dict[str, Budget]:
    return {pass_.name: DEFAULT_PASS_BUDGET for pass_ in manager.passes}


def o1_pipeline(
    verify_each: bool = False, budgets: Optional[Dict[str, Budget]] = None
) -> PassManager:
    """Cheap cleanup: folding, propagation, DCE, CFG simplification."""
    manager = PassManager(
        [
            ConstantFoldPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )
    manager.budgets = budgets if budgets is not None else _default_budgets(manager)
    return manager


def unroll_pipeline(
    verify_each: bool = False,
    max_trip_count: int = 4096,
    budgets: Optional[Dict[str, Budget]] = None,
) -> PassManager:
    """mem2reg + full unrolling + cleanup (Example 4)."""
    manager = PassManager(
        [
            Mem2RegPass(),
            ConstantPropagationPass(),
            LoopUnrollPass(max_trip_count=max_trip_count),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )
    manager.budgets = budgets if budgets is not None else _default_budgets(manager)
    return manager


def default_pipeline(verify_each: bool = False) -> PassManager:
    """The full classical pipeline: inline, SSA-ise, unroll, clean up."""
    return PassManager(
        [
            InlinePass(),
            Mem2RegPass(),
            ConstantFoldPass(),
            ConstantPropagationPass(),
            LoopUnrollPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )
