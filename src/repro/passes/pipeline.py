"""Standard pass pipelines.

``unroll_pipeline`` is the paper's Example 4 recipe: promote the loop
counter out of memory, unroll, fold the per-iteration induction values,
and flatten the CFG -- after which a quantum tool "sees only the ten
individual Hadamard gates".
"""

from __future__ import annotations

from repro.passes.constant_fold import ConstantFoldPass
from repro.passes.constprop import ConstantPropagationPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.inline import InlinePass
from repro.passes.manager import PassManager
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.simplify_cfg import SimplifyCFGPass
from repro.passes.unroll import LoopUnrollPass


def o1_pipeline(verify_each: bool = False) -> PassManager:
    """Cheap cleanup: folding, propagation, DCE, CFG simplification."""
    return PassManager(
        [
            ConstantFoldPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )


def unroll_pipeline(
    verify_each: bool = False, max_trip_count: int = 4096
) -> PassManager:
    """mem2reg + full unrolling + cleanup (Example 4)."""
    return PassManager(
        [
            Mem2RegPass(),
            ConstantPropagationPass(),
            LoopUnrollPass(max_trip_count=max_trip_count),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )


def default_pipeline(verify_each: bool = False) -> PassManager:
    """The full classical pipeline: inline, SSA-ise, unroll, clean up."""
    return PassManager(
        [
            InlinePass(),
            Mem2RegPass(),
            ConstantFoldPass(),
            ConstantPropagationPass(),
            LoopUnrollPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
        ],
        verify_each=verify_each,
        max_iterations=4,
    )
