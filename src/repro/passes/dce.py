"""Dead code elimination: unused pure instructions + unreachable blocks."""

from __future__ import annotations

from repro.analysis.cfg import reachable_blocks
from repro.llvmir.function import Function
from repro.passes.manager import FunctionPass


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        changed = self._remove_unreachable_blocks(fn)
        # Iterate: removing one dead instruction may make its operands dead.
        work = True
        while work:
            work = False
            for block in fn.blocks:
                for inst in reversed(list(block.instructions)):
                    if inst.is_terminator or inst.has_side_effects():
                        continue
                    if not inst.is_used():
                        block.remove(inst)
                        changed = work = True
        return changed

    def _remove_unreachable_blocks(self, fn: Function) -> bool:
        if not fn.blocks:
            return False
        live = reachable_blocks(fn)
        dead = [b for b in fn.blocks if b not in live]
        if not dead:
            return False
        # Phi nodes in live blocks may reference dead predecessors.
        for block in live:
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if pred not in live:
                        phi.remove_incoming(pred)
        for block in dead:
            fn.remove_block(block)
        return True
