"""Pass manager: ordered pipelines with optional verify-between-passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.llvmir.function import Function
from repro.llvmir.module import Module
from repro.llvmir.verifier import verify_module


@dataclass
class PassResult:
    """What one pipeline run did."""

    changed: bool = False
    per_pass: Dict[str, bool] = field(default_factory=dict)
    iterations: int = 1


class ModulePass:
    """Base class: transform a module, report whether anything changed."""

    name: str = "module-pass"

    def run_on_module(self, module: Module) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FunctionPass(ModulePass):
    """Convenience base: runs per defined function."""

    name = "function-pass"

    def run_on_function(self, fn: Function) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self.run_on_function(fn)
        return changed


class PassManager:
    """Run a pipeline, optionally to fixpoint, verifying between passes.

    ``verify_each`` mirrors ``opt -verify-each``: catches a pass corrupting
    the IR immediately rather than in a downstream consumer.
    """

    def __init__(
        self,
        passes: Sequence[ModulePass],
        verify_each: bool = False,
        max_iterations: int = 1,
    ):
        self.passes = list(passes)
        self.verify_each = verify_each
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def run(self, module: Module) -> PassResult:
        result = PassResult()
        for iteration in range(self.max_iterations):
            iteration_changed = False
            for pass_ in self.passes:
                changed = pass_.run_on_module(module)
                result.per_pass[pass_.name] = result.per_pass.get(pass_.name, False) or changed
                iteration_changed |= changed
                if self.verify_each:
                    verify_module(module)
            result.changed |= iteration_changed
            result.iterations = iteration + 1
            if not iteration_changed:
                break
        return result

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"<PassManager [{names}]>"
