"""Pass manager: ordered pipelines with optional verify-between-passes.

Observability (paper Ex. 4): pass an ``observer`` (see :mod:`repro.obs`)
to record, per pass execution, wall time, instruction counts before and
after, and whether the pass rewrote anything -- as spans in the trace,
labeled metrics (``passes.seconds{pass=...}``), and structured
:class:`PassRunRecord` rows on the returned :class:`PassResult`.

Time budgets (the continuous-performance gate): a pipeline may declare a
:class:`Budget` per pass name -- a ceiling on the wall time of one pass
execution and on how many pipeline iterations the pass may run in.
Busts never abort the run; they land as :class:`BudgetBust` rows on the
result, as ``pass.budget_bust{pass=...,kind=...}`` counters on the
observer, and (via ``qir-opt --profile`` / ``qir-bench check --strict``)
as human-visible warnings or a failing exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

from repro.llvmir.function import Function
from repro.llvmir.module import Module
from repro.llvmir.verifier import verify_module


def count_instructions(module: Module) -> int:
    """Total instruction count across defined functions (profile metric)."""
    return sum(len(fn) for fn in module.defined_functions())


@dataclass(frozen=True)
class PassRunRecord:
    """One pass execution inside one pipeline iteration."""

    pass_name: str
    iteration: int
    seconds: float
    instructions_before: int
    instructions_after: int
    changed: bool

    @property
    def instructions_delta(self) -> int:
        return self.instructions_after - self.instructions_before


@dataclass(frozen=True)
class Budget:
    """Per-pass performance budget.

    ``max_seconds`` caps the wall time of a *single* pass execution (one
    run inside one pipeline iteration); ``max_iterations`` caps how many
    pipeline iterations the pass may execute in before it is considered
    non-converging.  Either limit may be ``None`` (unbudgeted).
    """

    max_seconds: Optional[float] = None
    max_iterations: Optional[int] = None

    def check(self, pass_name: str, iteration: int, seconds: float) -> List["BudgetBust"]:
        busts: List[BudgetBust] = []
        if self.max_seconds is not None and seconds > self.max_seconds:
            busts.append(
                BudgetBust(pass_name, "seconds", self.max_seconds, seconds, iteration)
            )
        if self.max_iterations is not None and iteration + 1 > self.max_iterations:
            busts.append(
                BudgetBust(
                    pass_name, "iterations", self.max_iterations, iteration + 1, iteration
                )
            )
        return busts


@dataclass(frozen=True)
class BudgetBust:
    """One budget violation (never fatal; surfaced by profile/bench tools)."""

    pass_name: str
    kind: str  # "seconds" | "iterations"
    limit: float
    actual: float
    iteration: int

    def render(self) -> str:
        if self.kind == "seconds":
            return (
                f"budget bust: pass '{self.pass_name}' took {self.actual:.6f}s "
                f"(> {self.limit:.6f}s limit, iteration {self.iteration})"
            )
        return (
            f"budget bust: pass '{self.pass_name}' still running in iteration "
            f"{int(self.actual)} (> {int(self.limit)} iteration limit)"
        )


def budgets_from_specs(specs: Sequence[str]) -> Dict[str, Budget]:
    """Parse ``PASS=SECONDS`` budget specs (the CLI ``--budget`` syntax).

    >>> budgets_from_specs(["dce=0.5", "loop-unroll=2.0"])
    {'dce': Budget(max_seconds=0.5, ...), 'loop-unroll': ...}
    """
    budgets: Dict[str, Budget] = {}
    for spec in specs:
        name, sep, value = spec.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(f"invalid budget spec {spec!r} (expected PASS=SECONDS)")
        try:
            seconds = float(value)
        except ValueError:
            raise ValueError(f"invalid budget seconds in {spec!r}") from None
        if seconds < 0:
            raise ValueError(f"budget seconds must be >= 0 in {spec!r}")
        budgets[name] = Budget(max_seconds=seconds)
    return budgets


@dataclass
class PassResult:
    """What one pipeline run did."""

    changed: bool = False
    per_pass: Dict[str, bool] = field(default_factory=dict)
    iterations: int = 1
    # Populated only when an observer was attached to the run (profiling
    # costs an instruction recount per pass, so it is opt-in).
    per_pass_stats: List[PassRunRecord] = field(default_factory=list)
    # Budget violations (populated whenever the manager declares budgets,
    # with or without an observer -- the timing pair is cheap).
    budget_busts: List[BudgetBust] = field(default_factory=list)

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.per_pass_stats)


class ModulePass:
    """Base class: transform a module, report whether anything changed."""

    name: str = "module-pass"

    def run_on_module(self, module: Module) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FunctionPass(ModulePass):
    """Convenience base: runs per defined function."""

    name = "function-pass"

    def run_on_function(self, fn: Function) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self.run_on_function(fn)
        return changed


class PassManager:
    """Run a pipeline, optionally to fixpoint, verifying between passes.

    ``verify_each`` mirrors ``opt -verify-each``: catches a pass corrupting
    the IR immediately rather than in a downstream consumer.  ``observer``
    (overridable per ``run``) turns on per-pass profiling.
    """

    def __init__(
        self,
        passes: Sequence[ModulePass],
        verify_each: bool = False,
        max_iterations: int = 1,
        observer=None,
        budgets: Optional[Dict[str, Budget]] = None,
    ):
        self.passes = list(passes)
        self.verify_each = verify_each
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.observer = observer
        self.budgets: Dict[str, Budget] = dict(budgets) if budgets else {}

    def run(self, module: Module, observer=None) -> PassResult:
        obs = observer if observer is not None else self.observer
        profiled = obs is not None and obs.enabled
        result = PassResult()
        if not profiled:
            return self._run_inner(module, None, result)
        with obs.span(
            "pass_pipeline",
            passes=len(self.passes),
            max_iterations=self.max_iterations,
        ) as span:
            self._run_inner(module, obs, result)
            span.tag("iterations", result.iterations)
            span.tag("changed", result.changed)
        return result

    def _run_inner(self, module: Module, obs, result: PassResult) -> PassResult:
        for iteration in range(self.max_iterations):
            iteration_changed = False
            for pass_ in self.passes:
                if obs is not None:
                    changed = self._run_one_profiled(
                        pass_, module, iteration, obs, result
                    )
                elif pass_.name in self.budgets:
                    # Budgeted but unprofiled: time the pass (one clock
                    # pair) so busts are still caught, skip the rest.
                    t0 = perf_counter()
                    changed = pass_.run_on_module(module)
                    self._check_budget(
                        pass_.name, iteration, perf_counter() - t0, None, result
                    )
                else:
                    changed = pass_.run_on_module(module)
                result.per_pass[pass_.name] = result.per_pass.get(pass_.name, False) or changed
                iteration_changed |= changed
                if self.verify_each:
                    verify_module(module)
            result.changed |= iteration_changed
            result.iterations = iteration + 1
            if not iteration_changed:
                break
        return result

    def _run_one_profiled(
        self,
        pass_: ModulePass,
        module: Module,
        iteration: int,
        obs,
        result: PassResult,
    ) -> bool:
        before = count_instructions(module)
        span = obs.span(f"pass:{pass_.name}", iteration=iteration, before=before)
        with span:
            t0 = perf_counter()
            changed = pass_.run_on_module(module)
            seconds = perf_counter() - t0
        after = count_instructions(module)
        span.tag("after", after).tag("changed", changed)
        result.per_pass_stats.append(
            PassRunRecord(pass_.name, iteration, seconds, before, after, changed)
        )
        labels = {"pass": pass_.name}
        obs.inc("passes.runs", 1, **labels)
        obs.inc("passes.seconds", seconds, **labels)
        if changed:
            obs.inc("passes.changed", 1, **labels)
        if before != after:
            obs.inc("passes.instructions_delta_abs", abs(after - before), **labels)
        obs.set_gauge("passes.instructions", after)
        self._check_budget(pass_.name, iteration, seconds, obs, result)
        return changed

    def _check_budget(
        self,
        pass_name: str,
        iteration: int,
        seconds: float,
        obs,
        result: PassResult,
    ) -> None:
        budget = self.budgets.get(pass_name)
        if budget is None:
            return
        for bust in budget.check(pass_name, iteration, seconds):
            result.budget_busts.append(bust)
            if obs is not None:
                obs.inc(
                    "pass.budget_bust", 1,
                    **{"pass": pass_name, "kind": bust.kind},
                )

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"<PassManager [{names}]>"


def run_passes(
    module: Module,
    passes: Union[PassManager, Sequence[ModulePass]],
    *,
    verify_each: bool = False,
    max_iterations: int = 1,
    observer=None,
    budgets: Optional[Dict[str, Budget]] = None,
) -> PassResult:
    """Convenience entry point: run passes (or a ready manager) over a module.

    >>> run_passes(module, [Mem2RegPass(), DeadCodeEliminationPass()],
    ...            observer=obs)
    """
    if isinstance(passes, PassManager):
        return passes.run(module, observer=observer)
    manager = PassManager(
        list(passes),
        verify_each=verify_each,
        max_iterations=max_iterations,
        budgets=budgets,
    )
    return manager.run(module, observer=observer)
