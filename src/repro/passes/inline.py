"""Function inlining for defined (non-quantum) callees.

Full-QIR programs may factor subroutines; profiles that forbid user
functions need them inlined away before lowering.  Simple bottom-up
inliner with a size budget; recursive functions are skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    BranchInst,
    CallInst,
    Instruction,
    PhiInst,
    ReturnInst,
)
from repro.llvmir.module import Module
from repro.llvmir.values import Value
from repro.passes.cloning import clone_region
from repro.passes.manager import ModulePass


def _is_recursive(fn: Function, seen: Optional[Set[Function]] = None) -> bool:
    seen = seen or set()
    if fn in seen:
        return True
    seen = seen | {fn}
    for inst in fn.instructions():
        if isinstance(inst, CallInst) and not inst.callee.is_declaration:
            if _is_recursive(inst.callee, seen):
                return True
    return False


class InlinePass(ModulePass):
    name = "inline"

    def __init__(self, size_threshold: int = 1000):
        self.size_threshold = size_threshold

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            work = True
            while work:
                work = False
                for block in list(fn.blocks):
                    for inst in list(block.instructions):
                        if not isinstance(inst, CallInst):
                            continue
                        callee = inst.callee
                        if callee.is_declaration or callee is fn:
                            continue
                        if len(callee) > self.size_threshold:
                            continue
                        if _is_recursive(callee):
                            continue
                        self._inline_call(fn, inst)
                        changed = work = True
                        break
                    if work:
                        break
        return changed

    def _inline_call(self, caller: Function, call: CallInst) -> None:
        callee = call.callee
        call_block = call.parent
        assert call_block is not None

        # Split the call block after the call: `tail` gets everything below.
        index = call_block.instructions.index(call)
        tail_block = caller.create_block(
            f"{call_block.name}.inlined" if call_block.name else None
        )
        trailing = call_block.instructions[index + 1 :]
        del call_block.instructions[index + 1 :]
        for inst in trailing:
            inst.parent = tail_block
            tail_block.instructions.append(inst)
        # Successor phis must now see tail_block as the predecessor.
        for succ in tail_block.successors():
            for phi in succ.phis():
                phi.replace_block_target(call_block, tail_block)

        # Clone the callee body with arguments bound.
        value_map: Dict[Value, Value] = {}
        for formal, actual in zip(callee.arguments, call.operands):
            value_map[formal] = actual
        block_map = clone_region(callee.blocks, caller, value_map, suffix=f"inl.{callee.name}")
        entry_clone = block_map[callee.entry_block]

        # Rewrite cloned returns to branches into the tail, collecting the
        # return values for a result phi.
        returns: List[tuple] = []
        for original, clone in block_map.items():
            term = clone.terminator
            if isinstance(term, ReturnInst):
                value = term.return_value
                clone.remove(term)
                clone.append(BranchInst(tail_block))
                returns.append((clone, value))

        # Replace the call's value.
        if not call.type.is_void and returns:
            if len(returns) == 1:
                replacement = returns[0][1]
                assert replacement is not None
                call.replace_all_uses_with(replacement)
            else:
                phi = PhiInst(call.type)
                tail_block.insert(0, phi)
                for block, value in returns:
                    assert value is not None
                    phi.add_incoming(value, block)
                call.replace_all_uses_with(phi)

        # Replace the call instruction with a branch into the inlined entry.
        call_block.remove(call)
        call_block.append(BranchInst(entry_clone))
