"""Shared constant-evaluation helpers used by folding and propagation."""

from __future__ import annotations

import math
from typing import Optional

from repro.llvmir.instructions import (
    BinaryInst,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from repro.llvmir.types import IntType
from repro.llvmir.values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    Value,
)


def is_constant_scalar(value: Value) -> bool:
    return isinstance(value, (ConstantInt, ConstantFloat, ConstantNull, ConstantPointerInt))


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Evaluate an instruction with constant operands; None if not foldable."""
    if isinstance(inst, BinaryInst):
        return _fold_binary(inst)
    if isinstance(inst, ICmpInst):
        return _fold_icmp(inst)
    if isinstance(inst, FCmpInst):
        return _fold_fcmp(inst)
    if isinstance(inst, CastInst):
        return _fold_cast(inst)
    if isinstance(inst, SelectInst):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            chosen = inst.true_value if cond.value else inst.false_value
            return chosen if isinstance(chosen, Constant) else None
    return None


def _fold_binary(inst: BinaryInst) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    op = inst.opcode
    if op.startswith("f"):
        if not (isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat)):
            return None
        x, y = a.value, b.value
        try:
            if op == "fadd":
                return ConstantFloat(inst.type, x + y)  # type: ignore[arg-type]
            if op == "fsub":
                return ConstantFloat(inst.type, x - y)  # type: ignore[arg-type]
            if op == "fmul":
                return ConstantFloat(inst.type, x * y)  # type: ignore[arg-type]
            if op == "fdiv" and y != 0.0:
                return ConstantFloat(inst.type, x / y)  # type: ignore[arg-type]
            if op == "frem" and y != 0.0:
                return ConstantFloat(inst.type, math.fmod(x, y))  # type: ignore[arg-type]
        except (OverflowError, ValueError):
            return None
        return None

    if not (isinstance(a, ConstantInt) and isinstance(b, ConstantInt)):
        return _fold_binary_identities(inst)
    itype = inst.type
    assert isinstance(itype, IntType)
    x, y = a.value, b.value
    if op == "add":
        return ConstantInt(itype, x + y)
    if op == "sub":
        return ConstantInt(itype, x - y)
    if op == "mul":
        return ConstantInt(itype, x * y)
    if op == "sdiv":
        return ConstantInt(itype, int(x / y)) if y != 0 else None
    if op == "udiv":
        return (
            ConstantInt(itype, itype.to_unsigned(x) // itype.to_unsigned(y))
            if y != 0
            else None
        )
    if op == "srem":
        return ConstantInt(itype, x - int(x / y) * y) if y != 0 else None
    if op == "urem":
        return (
            ConstantInt(itype, itype.to_unsigned(x) % itype.to_unsigned(y))
            if y != 0
            else None
        )
    if op == "and":
        return ConstantInt(itype, x & y)
    if op == "or":
        return ConstantInt(itype, x | y)
    if op == "xor":
        return ConstantInt(itype, x ^ y)
    if op == "shl":
        return ConstantInt(itype, x << (y % itype.bits))
    if op == "lshr":
        return ConstantInt(itype, itype.to_unsigned(x) >> (y % itype.bits))
    if op == "ashr":
        return ConstantInt(itype, x >> (y % itype.bits))
    return None


def _fold_binary_identities(inst: BinaryInst) -> Optional[Constant]:
    """x+0, x*1, x*0, x&0, x|0, x^x style identities that return an
    operand or zero.  Only the constant-result cases are handled here (the
    operand-returning cases are done by propagation to keep folding pure)."""
    a, b = inst.lhs, inst.rhs
    itype = inst.type
    if not isinstance(itype, IntType):
        return None
    zero_a = isinstance(a, ConstantInt) and a.value == 0
    zero_b = isinstance(b, ConstantInt) and b.value == 0
    if inst.opcode == "mul" and (zero_a or zero_b):
        return ConstantInt(itype, 0)
    if inst.opcode == "and" and (zero_a or zero_b):
        return ConstantInt(itype, 0)
    if inst.opcode in ("sub", "xor") and a is b:
        return ConstantInt(itype, 0)
    return None


def simplify_to_operand(inst: Instruction) -> Optional[Value]:
    """Identities that reduce the instruction to one of its operands."""
    if not isinstance(inst, BinaryInst):
        return None
    a, b = inst.lhs, inst.rhs
    if not isinstance(inst.type, IntType):
        return None
    zero_a = isinstance(a, ConstantInt) and a.value == 0
    zero_b = isinstance(b, ConstantInt) and b.value == 0
    one_a = isinstance(a, ConstantInt) and a.value == 1
    one_b = isinstance(b, ConstantInt) and b.value == 1
    op = inst.opcode
    if op == "add":
        if zero_a:
            return b
        if zero_b:
            return a
    if op == "sub" and zero_b:
        return a
    if op == "mul":
        if one_a:
            return b
        if one_b:
            return a
    if op in ("sdiv", "udiv") and one_b:
        return a
    if op == "or":
        if zero_a:
            return b
        if zero_b:
            return a
    if op == "xor":
        if zero_a:
            return b
        if zero_b:
            return a
    if op in ("shl", "lshr", "ashr") and zero_b:
        return a
    return None


def _fold_icmp(inst: ICmpInst) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    i1 = IntType(1)
    if isinstance(a, (ConstantNull, ConstantPointerInt)) and isinstance(
        b, (ConstantNull, ConstantPointerInt)
    ):
        addr_a = a.address if isinstance(a, ConstantPointerInt) else 0
        addr_b = b.address if isinstance(b, ConstantPointerInt) else 0
        if inst.predicate == "eq":
            return ConstantInt(i1, int(addr_a == addr_b))
        if inst.predicate == "ne":
            return ConstantInt(i1, int(addr_a != addr_b))
        return None
    if not (isinstance(a, ConstantInt) and isinstance(b, ConstantInt)):
        return None
    x, y = a.value, b.value
    atype = a.type
    assert isinstance(atype, IntType)
    if inst.predicate.startswith("u"):
        x, y = atype.to_unsigned(x), atype.to_unsigned(y)
    table = {
        "eq": x == y,
        "ne": x != y,
        "sgt": x > y,
        "sge": x >= y,
        "slt": x < y,
        "sle": x <= y,
        "ugt": x > y,
        "uge": x >= y,
        "ult": x < y,
        "ule": x <= y,
    }
    return ConstantInt(i1, int(table[inst.predicate]))


def _fold_fcmp(inst: FCmpInst) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    if not (isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat)):
        return None
    x, y = a.value, b.value
    unordered = math.isnan(x) or math.isnan(y)
    i1 = IntType(1)
    pred = inst.predicate
    if pred == "true":
        return ConstantInt(i1, 1)
    if pred == "false":
        return ConstantInt(i1, 0)
    if pred == "ord":
        return ConstantInt(i1, int(not unordered))
    if pred == "uno":
        return ConstantInt(i1, int(unordered))
    base = {
        "eq": x == y,
        "gt": x > y,
        "ge": x >= y,
        "lt": x < y,
        "le": x <= y,
        "ne": x != y,
    }[pred[1:]]
    if pred.startswith("o"):
        return ConstantInt(i1, int(not unordered and base))
    return ConstantInt(i1, int(unordered or base))


def _fold_cast(inst: CastInst) -> Optional[Constant]:
    value = inst.value
    op = inst.opcode
    if op == "inttoptr" and isinstance(value, ConstantInt):
        if value.value == 0:
            return ConstantNull()
        src = value.type
        assert isinstance(src, IntType)
        return ConstantPointerInt(src.to_unsigned(value.value), src)
    if op == "ptrtoint":
        assert isinstance(inst.type, IntType)
        if isinstance(value, ConstantNull):
            return ConstantInt(inst.type, 0)
        if isinstance(value, ConstantPointerInt):
            return ConstantInt(inst.type, value.address)
        return None
    if not isinstance(value, (ConstantInt, ConstantFloat)):
        return None
    if op == "trunc" and isinstance(value, ConstantInt):
        assert isinstance(inst.type, IntType)
        return ConstantInt(inst.type, value.value)
    if op == "zext" and isinstance(value, ConstantInt):
        src = value.type
        assert isinstance(src, IntType) and isinstance(inst.type, IntType)
        return ConstantInt(inst.type, src.to_unsigned(value.value))
    if op == "sext" and isinstance(value, ConstantInt):
        assert isinstance(inst.type, IntType)
        return ConstantInt(inst.type, value.value)
    if op == "sitofp" and isinstance(value, ConstantInt):
        return ConstantFloat(inst.type, float(value.value))  # type: ignore[arg-type]
    if op == "uitofp" and isinstance(value, ConstantInt):
        src = value.type
        assert isinstance(src, IntType)
        return ConstantFloat(inst.type, float(src.to_unsigned(value.value)))  # type: ignore[arg-type]
    if op in ("fptosi", "fptoui") and isinstance(value, ConstantFloat):
        assert isinstance(inst.type, IntType)
        if math.isnan(value.value) or math.isinf(value.value):
            return None
        return ConstantInt(inst.type, int(value.value))
    return None
