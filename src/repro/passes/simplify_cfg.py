"""CFG simplification: merge trivially chained blocks, skip empty
forwarding blocks, and drop unreachable code.

Run after unrolling + constant propagation this flattens Example 4's loop
skeleton into one straight-line block -- the form the base profile wants.
"""

from __future__ import annotations


from repro.analysis.cfg import reachable_blocks
from repro.llvmir.function import Function
from repro.llvmir.instructions import BranchInst, CondBranchInst
from repro.passes.manager import FunctionPass


class SimplifyCFGPass(FunctionPass):
    name = "simplify-cfg"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        work = True
        while work:
            work = False
            work |= self._remove_unreachable(fn)
            work |= self._merge_straight_line(fn)
            work |= self._skip_empty_forwarders(fn)
            work |= self._dedupe_cond_branches(fn)
            changed |= work
        return changed

    def _remove_unreachable(self, fn: Function) -> bool:
        live = reachable_blocks(fn)
        dead = [b for b in fn.blocks if b not in live]
        if not dead:
            return False
        for block in live:
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if pred not in live:
                        phi.remove_incoming(pred)
        for block in dead:
            fn.remove_block(block)
        return True

    def _merge_straight_line(self, fn: Function) -> bool:
        """Merge B into A when A's only successor is B and B's only
        predecessor is A."""
        for a in fn.blocks:
            term = a.terminator
            if not isinstance(term, BranchInst):
                continue
            b = term.target
            if b is a or b.is_entry():
                continue
            preds = b.predecessors()
            if len(preds) != 1 or preds[0] is not a:
                continue
            # Phis in B have a single incoming edge; collapse them.
            for phi in b.phis():
                phi.replace_all_uses_with(phi.incoming_for(a))
            for phi in list(b.phis()):
                b.remove(phi)
            a.remove(term)
            for inst in list(b.instructions):
                b.instructions.remove(inst)
                inst.parent = a
                a.instructions.append(inst)
            # Successors of B now flow from A; update their phis.
            for succ in a.successors():
                for phi in succ.phis():
                    phi.replace_block_target(b, a)
            fn.remove_block(b)
            return True
        return False

    def _skip_empty_forwarders(self, fn: Function) -> bool:
        """Rewire branches through blocks that only contain ``br label %X``."""
        changed = False
        for block in list(fn.blocks):
            if block.is_entry():
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst):
                continue
            target = term.target
            if target is block:
                continue
            # Phi correctness: only safe if the target has no phis that would
            # need to distinguish the rerouted predecessors.  (A predecessor
            # already branching to `target` on another arm is fine -- cond
            # branches may have identical arms, deduped below.)
            if target.phis():
                continue
            preds = block.predecessors()
            if not preds:
                continue
            for pred in preds:
                pterm = pred.terminator
                assert pterm is not None
                pterm.replace_block_target(block, target)
            changed = True
        return changed

    def _dedupe_cond_branches(self, fn: Function) -> bool:
        """``br i1 %c, label %X, label %X`` -> ``br label %X``."""
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if (
                isinstance(term, CondBranchInst)
                and term.true_target is term.false_target
            ):
                target = term.true_target
                block.remove(term)
                block.append(BranchInst(target))
                changed = True
        return changed
