"""Constant folding: evaluate instructions whose operands are constants."""

from __future__ import annotations

from repro.llvmir.function import Function
from repro.passes.fold_utils import fold_instruction, simplify_to_operand
from repro.passes.manager import FunctionPass


class ConstantFoldPass(FunctionPass):
    name = "constant-fold"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        work = True
        while work:
            work = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.type.is_void or inst.is_terminator:
                        continue
                    folded = fold_instruction(inst)
                    if folded is not None:
                        inst.replace_all_uses_with(folded)
                        block.remove(inst)
                        changed = work = True
                        continue
                    operand = simplify_to_operand(inst)
                    if operand is not None:
                        inst.replace_all_uses_with(operand)
                        block.remove(inst)
                        changed = work = True
        return changed
