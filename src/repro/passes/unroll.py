"""Full unrolling of counted loops (paper, Example 4).

"Since QIR builds on the LLVM infrastructure, it is straight forward to
unroll any loops with statically known bounds [...] an optimization pass
does not have to handle the FOR-loop, but sees only the ten individual
Hadamard gates."

Recognised shape (what ``mem2reg`` produces from Example 4's IR):

* the loop header is the only exiting block, ending in a conditional
  branch with one in-loop and one out-of-loop successor;
* a single latch branches back to the header;
* an induction phi in the header steps by a constant from a constant
  start, and the header's branch condition compares that phi against a
  constant bound.

The loop is replaced by trip-count clones of its body chained in sequence
plus a final header clone that exits unconditionally; constant propagation
then folds each clone's induction value to a literal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import Loop, find_natural_loops
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    BinaryInst,
    BranchInst,
    CondBranchInst,
    ICmpInst,
    PhiInst,
)
from repro.llvmir.values import ConstantInt, Value
from repro.passes.cloning import clone_region
from repro.passes.manager import FunctionPass


class _CountedLoop:
    """Analysis result for an unrollable loop."""

    def __init__(
        self,
        loop: Loop,
        latch: BasicBlock,
        exit_block: BasicBlock,
        body_successor: BasicBlock,
        induction: PhiInst,
        trip_count: int,
        iteration_values: List[int],
    ):
        self.loop = loop
        self.latch = latch
        self.exit_block = exit_block
        self.body_successor = body_successor
        self.induction = induction
        self.trip_count = trip_count
        self.iteration_values = iteration_values


_PREDICATES = {
    "slt": lambda x, y: x < y,
    "sle": lambda x, y: x <= y,
    "sgt": lambda x, y: x > y,
    "sge": lambda x, y: x >= y,
    "ne": lambda x, y: x != y,
    "eq": lambda x, y: x == y,
    "ult": lambda x, y: x < y,
    "ule": lambda x, y: x <= y,
    "ugt": lambda x, y: x > y,
    "uge": lambda x, y: x >= y,
}


class LoopUnrollPass(FunctionPass):
    name = "loop-unroll"

    def __init__(self, max_trip_count: int = 4096, max_function_growth: int = 500_000):
        self.max_trip_count = max_trip_count
        self.max_function_growth = max_function_growth

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        # Re-analyse after each unroll: block structure changes wholesale.
        while True:
            loops = find_natural_loops(fn)
            candidate: Optional[_CountedLoop] = None
            for loop in loops:
                if loop.children:  # innermost first
                    continue
                counted = self._analyse(fn, loop)
                if counted is not None:
                    candidate = counted
                    break
            if candidate is None:
                return changed
            loop_size = sum(len(b) for b in candidate.loop.blocks)
            if loop_size * candidate.trip_count > self.max_function_growth:
                return changed
            self._unroll(fn, candidate)
            changed = True

    # -- analysis ---------------------------------------------------------------
    def _analyse(self, fn: Function, loop: Loop) -> Optional[_CountedLoop]:
        header = loop.header
        if len(loop.latches) != 1:
            return None
        latch = loop.latches[0]

        term = header.terminator
        if not isinstance(term, CondBranchInst):
            return None
        in_loop = [s for s in term.successors() if s in loop.blocks]
        out_loop = [s for s in term.successors() if s not in loop.blocks]
        if len(in_loop) != 1 or len(out_loop) != 1:
            return None
        body_successor, exit_block = in_loop[0], out_loop[0]

        # The header must be the only exiting block.
        for block in loop.blocks:
            if block is header:
                continue
            if any(s not in loop.blocks for s in block.successors()):
                return None

        # Find the counted induction phi.
        condition = term.condition
        if not isinstance(condition, ICmpInst):
            return None

        for phi in header.phis():
            counted = self._match_induction(
                loop, phi, latch, condition, term, body_successor
            )
            if counted is not None:
                trip_count, values = counted
                if trip_count > self.max_trip_count:
                    return None
                return _CountedLoop(
                    loop, latch, exit_block, body_successor, phi, trip_count, values
                )
        return None

    def _match_induction(
        self,
        loop: Loop,
        phi: PhiInst,
        latch: BasicBlock,
        condition: ICmpInst,
        term: CondBranchInst,
        body_successor: BasicBlock,
    ) -> Optional[Tuple[int, List[int]]]:
        if len(phi.incoming) != 2:
            return None
        init: Optional[ConstantInt] = None
        step_value: Optional[Value] = None
        for value, pred in phi.incoming:
            if pred is latch:
                step_value = value
            elif isinstance(value, ConstantInt):
                init = value
        if init is None or step_value is None:
            return None
        if not isinstance(step_value, BinaryInst) or step_value.opcode not in (
            "add",
            "sub",
        ):
            return None
        if step_value.lhs is phi and isinstance(step_value.rhs, ConstantInt):
            step = step_value.rhs.value
        elif (
            step_value.rhs is phi
            and isinstance(step_value.lhs, ConstantInt)
            and step_value.opcode == "add"
        ):
            step = step_value.lhs.value
        else:
            return None
        if step_value.opcode == "sub":
            step = -step
        if step == 0:
            return None

        # Normalise the exit condition to pred(phi, bound).
        if condition.lhs is phi and isinstance(condition.rhs, ConstantInt):
            predicate, bound = condition.predicate, condition.rhs.value
        elif condition.rhs is phi and isinstance(condition.lhs, ConstantInt):
            predicate = _swap_predicate(condition.predicate)
            bound = condition.lhs.value
        else:
            return None
        # `condition true` may mean *continue* or *exit* depending on branch arms.
        continue_on_true = term.true_target is body_successor
        test = _PREDICATES.get(predicate)
        if test is None:
            return None

        itype = phi.type
        values: List[int] = []
        current = init.value
        for _ in range(self.max_trip_count + 1):
            stays = test(current, bound)
            if not continue_on_true:
                stays = not stays
            if not stays:
                return len(values), values
            values.append(current)
            current = itype.wrap(current + step)  # type: ignore[union-attr]
        return None

    # -- transformation ------------------------------------------------------------
    def _unroll(self, fn: Function, counted: _CountedLoop) -> None:
        loop = counted.loop
        header = loop.header
        latch = counted.latch
        exit_block = counted.exit_block
        blocks = _region_order(loop)
        n = counted.trip_count

        outside_preds = [p for p in header.predecessors() if p not in loop.blocks]

        # Exit-block phis currently have an arm for the original header;
        # gather them to rewire onto the final header clone.
        exit_phis = exit_block.phis()

        # Values defined in the header and used outside the loop must be
        # remapped to the final clone.  Uses of body-defined values outside
        # the loop would be unsound to remap; analysis guarantees the header
        # is the only exit, so such IR would already violate dominance.
        header_defs = [inst for inst in header.instructions if not inst.type.is_void]
        outside_users: Dict = {}
        for inst in header_defs:
            for user in inst.users:
                if user.parent is not None and user.parent not in loop.blocks:
                    outside_users.setdefault(inst, []).append(user)

        prev_latch: Optional[BasicBlock] = None
        prev_header: Optional[BasicBlock] = None
        prev_map: Dict[Value, Value] = {}
        first_header: Optional[BasicBlock] = None
        final_value_map: Dict[Value, Value] = {}
        cloned_headers: List[Tuple[BasicBlock, Dict[Value, Value]]] = []

        for k in range(n + 1):
            value_map: Dict[Value, Value] = {}
            # Seed the induction phi and any other header phis for this clone.
            for phi in header.phis():
                if k == 0:
                    # Arms from outside the loop: single value required.
                    outside_values = [
                        v for v, p in phi.incoming if p not in loop.blocks
                    ]
                    seed = outside_values[0]
                else:
                    back = phi.incoming_for(latch)
                    seed = prev_map.get(back, back)
                value_map[phi] = seed

            # The final clone only needs the header (it evaluates the exit
            # branch, which we replace with an unconditional exit anyway).
            region = blocks if k < n else [header]
            block_map = clone_region(region, fn, value_map, suffix=f"it{k}")
            new_header = block_map[header]

            # Drop the cloned phis (their uses were already seeded through
            # value_map at clone time; any stragglers get explicit rewrites).
            originals = header.phis()
            clones = new_header.phis()
            for original, clone in zip(originals, clones):
                clone.replace_all_uses_with(value_map[original])
            for clone in list(new_header.phis()):
                new_header.remove(clone)

            if k == n:
                # Final clone: exit unconditionally.
                term = new_header.terminator
                assert term is not None
                new_header.remove(term)
                new_header.append(BranchInst(exit_block))

            if prev_latch is not None:
                # The cloned back edge targets its own clone's header (the
                # block map pointed `header` there); chain it forward.
                prev_term = prev_latch.terminator
                assert prev_term is not None
                prev_term.replace_block_target(prev_header, new_header)
            if first_header is None:
                first_header = new_header
            if k < n:
                prev_latch = block_map[latch]
            prev_header = new_header
            prev_map = value_map
            cloned_headers.append((new_header, dict(value_map)))
            if k == n:
                final_value_map = value_map

        assert first_header is not None

        # Route original entry edges to iteration 0.
        for pred in outside_preds:
            term = pred.terminator
            assert term is not None
            term.replace_block_target(header, first_header)

        # Rewire exit phis: the arm from the original header becomes one arm
        # per cloned header that (still) branches to the exit block, each
        # carrying that clone's mapping of the original value.
        for phi in exit_phis:
            original_arm = phi.incoming_for(header)
            phi.remove_incoming(header)
            for cloned_header, clone_map in cloned_headers:
                if exit_block in cloned_header.successors():
                    phi.add_incoming(
                        clone_map.get(original_arm, original_arm), cloned_header
                    )

        # Remap outside uses of header-defined values to the final clone.
        for inst, users in outside_users.items():
            mapped = final_value_map.get(inst)
            if mapped is None:
                continue
            for user in users:
                user.replace_operand(inst, mapped)

        # Delete the original loop blocks.
        for block in blocks:
            for inst in list(block.instructions):
                block.remove(inst)
        for block in blocks:
            fn.remove_block(block)


def _swap_predicate(predicate: str) -> str:
    swaps = {
        "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
        "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
        "eq": "eq", "ne": "ne",
    }
    return swaps[predicate]


def _region_order(loop: Loop) -> List[BasicBlock]:
    """Loop blocks with the header first, rest in function order."""
    fn = loop.header.parent
    assert fn is not None
    ordered = [loop.header] + [
        b for b in fn.blocks if b in loop.blocks and b is not loop.header
    ]
    return ordered


