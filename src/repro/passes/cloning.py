"""IR cloning with value remapping -- shared by unrolling and inlining."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GetElementPtrInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.llvmir.values import Value


def remap(value: Value, value_map: Dict[Value, Value]) -> Value:
    return value_map.get(value, value)


def clone_instruction(
    inst: Instruction,
    value_map: Dict[Value, Value],
    block_map: Dict[BasicBlock, BasicBlock],
) -> Instruction:
    """Clone one instruction, remapping operands and block targets.

    Phi nodes are cloned *without* incoming arms (the caller wires them,
    since the predecessor set usually changes during the transformation).
    """

    def v(x: Value) -> Value:
        return remap(x, value_map)

    def b(x: BasicBlock) -> BasicBlock:
        return block_map.get(x, x)

    clone: Instruction
    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.opcode, v(inst.lhs), v(inst.rhs), inst.flags)
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.predicate, v(inst.lhs), v(inst.rhs))
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.predicate, v(inst.lhs), v(inst.rhs))
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.opcode, v(inst.value), inst.type)
    elif isinstance(inst, SelectInst):
        clone = SelectInst(v(inst.condition), v(inst.true_value), v(inst.false_value))
    elif isinstance(inst, AllocaInst):
        clone = AllocaInst(inst.allocated_type, inst.align)
    elif isinstance(inst, LoadInst):
        clone = LoadInst(inst.type, v(inst.pointer), inst.align)
    elif isinstance(inst, StoreInst):
        clone = StoreInst(v(inst.value), v(inst.pointer), inst.align)
    elif isinstance(inst, GetElementPtrInst):
        clone = GetElementPtrInst(
            inst.source_type,
            v(inst.pointer),
            [v(i) for i in inst.indices],
            inst.inbounds,
        )
    elif isinstance(inst, CallInst):
        clone = CallInst(
            inst.callee, [v(a) for a in inst.operands], inst.arg_attrs, inst.tail
        )
    elif isinstance(inst, PhiInst):
        clone = PhiInst(inst.type)
    elif isinstance(inst, ReturnInst):
        clone = ReturnInst(v(inst.return_value) if inst.return_value else None)
    elif isinstance(inst, BranchInst):
        clone = BranchInst(b(inst.target))
    elif isinstance(inst, CondBranchInst):
        clone = CondBranchInst(v(inst.condition), b(inst.true_target), b(inst.false_target))
    elif isinstance(inst, SwitchInst):
        clone = SwitchInst(
            v(inst.value), b(inst.default), [(v(c), b(t)) for c, t in inst.cases]
        )
    elif isinstance(inst, UnreachableInst):
        clone = UnreachableInst()
    else:  # pragma: no cover - exhaustive over the instruction set
        raise TypeError(f"cannot clone {inst!r}")
    # A pre-seeded mapping (e.g. unrolling substituting an induction phi
    # with this iteration's value) takes precedence over the clone itself.
    value_map.setdefault(inst, clone)
    return clone


def clone_region(
    blocks: Sequence[BasicBlock],
    fn: Function,
    value_map: Optional[Dict[Value, Value]] = None,
    suffix: str = "clone",
) -> Dict[BasicBlock, BasicBlock]:
    """Clone a set of blocks into ``fn``.

    Returns the block map.  ``value_map`` (mutated in place) carries prior
    substitutions in and the per-instruction mapping out.  Branches to
    blocks outside the region keep their original targets; phi arms are
    wired for in-region predecessors only.
    """
    if value_map is None:
        value_map = {}
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in blocks:
        new = fn.create_block(
            f"{block.name}.{suffix}" if block.name is not None else None
        )
        block_map[block] = new

    region = set(blocks)
    for block in blocks:
        new = block_map[block]
        for inst in block.instructions:
            clone = clone_instruction(inst, value_map, block_map)
            new.append(clone)
    # Fixup pass: an operand defined later in the region (e.g. a body block
    # cloned before the header that defines its phi) was still unmapped when
    # its user was cloned; the value_map is complete only now.
    for block in blocks:
        for inst, clone in zip(block.instructions, block_map[block].instructions):
            for i, op in enumerate(list(clone.operands)):
                mapped = value_map.get(op)
                if mapped is not None and mapped is not op:
                    clone.set_operand(i, mapped)
            if isinstance(inst, PhiInst):
                assert isinstance(clone, PhiInst)
                for value, pred in inst.incoming:
                    if pred in region:
                        clone.add_incoming(remap(value, value_map), block_map[pred])
    return block_map
