"""Peephole gate optimisation directly on the QIR AST (paper, Sec. III-B).

Within each basic block the pass tracks, per qubit, the last gate call
still eligible for fusion.  Two adjacent self-inverse gates on identical
qubit operands annihilate (H-H, X-X, CNOT-CNOT, ...); adjacent mergeable
rotations about the same axis sum their (constant) angles.  Any other
touch of a qubit -- another gate, a measurement, a call whose qubit
operands overlap, or a block boundary -- invalidates the window, keeping
the transformation sound without commutation analysis.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst, Instruction
from repro.llvmir.values import ConstantFloat, Value
from repro.llvmir.types import double
from repro.passes.manager import FunctionPass
from repro.qir.catalog import parse_qis_name
from repro.sim.gates import ADJOINT, GATE_SET, MERGEABLE_ROTATIONS

_TWO_PI = 2.0 * math.pi


def _gate_call(inst: Instruction) -> Optional[Tuple[str, List[Value], List[Value]]]:
    """(canonical gate, param values, qubit values) for a unitary QIS call."""
    if not isinstance(inst, CallInst):
        return None
    name = inst.callee.name or ""
    entry = parse_qis_name(name)
    if entry is None or entry.gate not in GATE_SET:
        return None
    params = inst.operands[: entry.num_params]
    qubits = inst.operands[entry.num_params :]
    return entry.gate, list(params), list(qubits)


def _qubit_keys(values: List[Value]) -> Optional[Tuple]:
    """Hashable identities for qubit operands; None when not comparable."""
    keys = []
    for v in values:
        try:
            keys.append((type(v).__name__, v.ref() if v.name or not isinstance(v, Instruction) else id(v)))
        except ValueError:
            keys.append(("inst", id(v)))
    return tuple(keys)


class GateCancellationPass(FunctionPass):
    """Remove adjacent self-inverse / adjoint gate pairs."""

    name = "gate-cancellation"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block: BasicBlock) -> bool:
        changed = False
        work = True
        while work:
            work = False
            # last eligible gate call per qubit key
            window: Dict[object, Tuple[CallInst, str, Tuple]] = {}
            for inst in list(block.instructions):
                info = _gate_call(inst)
                if info is None:
                    if isinstance(inst, CallInst):
                        # Unknown call: conservatively clear everything.
                        window.clear()
                    continue
                gate, params, qubits = info
                keys = _qubit_keys(qubits)
                spec = GATE_SET[gate]

                prev = window.get(keys)
                cancels = False
                if prev is not None and not params:
                    prev_inst, prev_gate, _ = prev
                    if spec.hermitian and prev_gate == gate:
                        cancels = True
                    elif ADJOINT.get(prev_gate) == gate:
                        cancels = True
                if cancels:
                    assert prev is not None
                    prev_inst = prev[0]
                    block.remove(prev_inst)
                    block.remove(inst)
                    changed = work = True
                    break  # restart scan with a fresh window

                # This gate touches its qubits: invalidate overlapping windows.
                touched = set(keys)
                for k in list(window):
                    if set(k) & touched:  # type: ignore[arg-type]
                        del window[k]
                if not params:
                    window[keys] = (inst, gate, keys)
        return changed


class RotationMergingPass(FunctionPass):
    """Merge adjacent constant-angle rotations about the same axis."""

    name = "rotation-merging"

    def __init__(self, drop_zero_epsilon: float = 1e-12):
        self.drop_zero_epsilon = drop_zero_epsilon

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block: BasicBlock) -> bool:
        changed = False
        work = True
        while work:
            work = False
            window: Dict[object, Tuple[CallInst, str]] = {}
            for inst in list(block.instructions):
                info = _gate_call(inst)
                if info is None:
                    if isinstance(inst, CallInst):
                        window.clear()
                    continue
                gate, params, qubits = info
                keys = _qubit_keys(qubits)

                mergeable = (
                    gate in MERGEABLE_ROTATIONS
                    and len(params) == 1
                    and isinstance(params[0], ConstantFloat)
                )
                # A rotation by (exactly) zero is the identity: drop it.
                if mergeable and abs(params[0].value) < self.drop_zero_epsilon:
                    block.remove(inst)
                    changed = work = True
                    break
                prev = window.get(keys)
                if mergeable and prev is not None and prev[1] == gate:
                    prev_inst = prev[0]
                    prev_info = _gate_call(prev_inst)
                    assert prev_info is not None
                    # Angles sum exactly (rz(a)rz(b) == rz(a+b) as matrices);
                    # no 2-pi reduction, which would introduce a global phase.
                    total = prev_info[1][0].value + params[0].value  # type: ignore[union-attr]
                    block.remove(prev_inst)
                    if abs(total) < self.drop_zero_epsilon:
                        block.remove(inst)
                    else:
                        inst.set_operand(0, ConstantFloat(double, total))
                    changed = work = True
                    break

                touched = set(keys)
                for k in list(window):
                    if set(k) & touched:  # type: ignore[arg-type]
                        del window[k]
                if mergeable:
                    window[keys] = (inst, gate)
        return changed
