"""Qubit/result count inference (paper, Section IV-A).

"To support static qubit addresses, the runtime would either have to infer
the number of qubits required for the simulation from the QIR program,
such as via an attribute in the QIR file, or allocate qubits on the fly."

This pass performs that inference and writes the attributes.  Static
addresses are counted from ``inttoptr`` constants in QIS argument
positions; dynamic allocation contributes ``qubit_allocate_array`` sizes
(when constant) and individual ``qubit_allocate`` calls (an upper bound,
since release/reuse cannot be decided statically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst
from repro.llvmir.module import Module
from repro.llvmir.values import ConstantInt, ConstantNull, ConstantPointerInt
from repro.passes.manager import ModulePass
from repro.qir.catalog import RT_PREFIX, parse_qis_name


@dataclass
class InferredCounts:
    num_qubits: int
    num_results: int
    is_exact: bool  # False when dynamic single allocations forced a bound


def _static_address(value) -> Optional[int]:
    if isinstance(value, ConstantNull):
        return 0
    if isinstance(value, ConstantPointerInt):
        return value.address
    return None


def infer_counts(fn: Function) -> InferredCounts:
    max_qubit = -1
    max_result = -1
    dynamic_total = 0
    exact = True

    for inst in fn.instructions():
        if not isinstance(inst, CallInst):
            continue
        name = inst.callee.name or ""
        entry = parse_qis_name(name)
        if entry is not None:
            qubit_args = inst.operands[entry.num_params : entry.num_params + entry.num_qubits]
            for arg in qubit_args:
                addr = _static_address(arg)
                if addr is not None:
                    max_qubit = max(max_qubit, addr)
            if entry.takes_result:
                addr = _static_address(inst.operands[-1])
                if addr is not None:
                    max_result = max(max_result, addr)
            if entry.gate == "read_result":
                addr = _static_address(inst.operands[0])
                if addr is not None:
                    max_result = max(max_result, addr)
            continue
        if name == f"{RT_PREFIX}qubit_allocate_array":
            size = inst.operands[0]
            if isinstance(size, ConstantInt):
                dynamic_total += size.value
            else:
                exact = False
        elif name == f"{RT_PREFIX}qubit_allocate":
            dynamic_total += 1
        elif name == f"{RT_PREFIX}result_record_output":
            addr = _static_address(inst.operands[0])
            if addr is not None:
                max_result = max(max_result, addr)

    return InferredCounts(
        num_qubits=max(max_qubit + 1, dynamic_total),
        num_results=max_result + 1,
        is_exact=exact,
    )


class QubitCountInferencePass(ModulePass):
    """Write ``required_num_qubits`` / ``required_num_results`` attributes."""

    name = "qubit-count-inference"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            if not fn.is_entry_point:
                continue
            counts = infer_counts(fn)
            for key, value in (
                ("required_num_qubits", str(counts.num_qubits)),
                ("required_num_results", str(counts.num_results)),
            ):
                if fn.get_attribute(key) != value:
                    fn.attributes[key] = value
                    changed = True
        return changed
