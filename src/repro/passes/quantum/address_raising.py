"""Static -> dynamic qubit address raising (the inverse of lowering).

Paper, Section IV-A: "In the context of implementing a QIR runtime for a
quantum circuit simulator, dynamic qubit addresses are the preferred way
to address qubits."  This pass rewrites a statically-addressed program
into the allocate/index/release form such a runtime prefers: one
``qubit_allocate_array`` covering the static address range, every constant
qubit pointer replaced by an ``array_get_element_ptr_1d`` call, and a
release at each ``ret``.

Result pointers stay static (the base profile keeps result management
static even under dynamic qubit management).
"""

from __future__ import annotations

from typing import List

from repro.llvmir.builder import IRBuilder
from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst, ReturnInst
from repro.llvmir.module import Module
from repro.llvmir.types import i1, i64
from repro.llvmir.values import ConstantInt, ConstantNull, ConstantPointerInt
from repro.passes.manager import ModulePass
from repro.passes.quantum.qubit_count import infer_counts
from repro.qir.catalog import RT_PREFIX, parse_qis_name, rt_signature


class DynamicAddressRaisingPass(ModulePass):
    name = "dynamic-address-raising"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            if fn.is_entry_point:
                changed |= self._run_on_function(module, fn)
        if changed:
            module.module_flags = [
                (b, k, v)
                for b, k, v in module.module_flags
                if k != "dynamic_qubit_management"
            ]
            module.add_module_flag(1, "dynamic_qubit_management", ConstantInt(i1, 1))
        return changed

    def _run_on_function(self, module: Module, fn: Function) -> bool:
        counts = infer_counts(fn)
        if counts.num_qubits == 0:
            return False

        # Collect QIS calls whose qubit arguments are static constants.
        rewrites: List[tuple] = []  # (call, operand index)
        for inst in fn.instructions():
            if not isinstance(inst, CallInst):
                continue
            entry = parse_qis_name(inst.callee.name or "")
            if entry is None:
                continue
            lo = entry.num_params
            hi = entry.num_params + entry.num_qubits
            for i in range(lo, hi):
                arg = inst.operands[i]
                if isinstance(arg, (ConstantNull, ConstantPointerInt)):
                    rewrites.append((inst, i))
        if not rewrites:
            return False

        allocate = module.declare_function(
            f"{RT_PREFIX}qubit_allocate_array",
            rt_signature(f"{RT_PREFIX}qubit_allocate_array"),
        )
        element_ptr = module.declare_function(
            f"{RT_PREFIX}array_get_element_ptr_1d",
            rt_signature(f"{RT_PREFIX}array_get_element_ptr_1d"),
        )
        release = module.declare_function(
            f"{RT_PREFIX}qubit_release_array",
            rt_signature(f"{RT_PREFIX}qubit_release_array"),
        )

        # Allocate once at the top of the entry block.
        builder = IRBuilder()
        entry_block = fn.entry_block
        builder.position_at_end(entry_block)
        if entry_block.instructions:
            builder.position_before(entry_block.instructions[0])
        array = builder.call(allocate, [ConstantInt(i64, counts.num_qubits)])

        # Replace each static pointer argument with an indexed access,
        # emitted immediately before its use (reloading per use like the
        # paper's Fig. 1; a CSE pass could coalesce these).
        for call, index in rewrites:
            arg = call.operands[index]
            address = arg.address if isinstance(arg, ConstantPointerInt) else 0
            builder.position_before(call)
            qubit = builder.call(
                element_ptr, [array, ConstantInt(i64, address)]
            )
            call.set_operand(index, qubit)

        # Release before every return.
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, ReturnInst):
                builder.position_before(term)
                builder.call(release, [array])

        fn.attributes["required_num_qubits"] = str(counts.num_qubits)
        return True
