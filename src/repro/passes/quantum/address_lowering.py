"""Dynamic -> static qubit address lowering (paper, Section IV-A).

"The compiler must at some point assign the program's qubits to the
hardware's qubits -- a process very similar to register allocation in
classical compilers."

The pass eliminates runtime qubit management: each
``__quantum__rt__qubit_allocate_array`` with a constant size is assigned a
contiguous base address, every
``__quantum__rt__array_get_element_ptr_1d(array, const)`` becomes the
constant pointer ``inttoptr (i64 base+const to ptr)``, and singleton
``qubit_allocate`` calls get the next free address.  Release calls vanish.
Non-constant indices or escaping array pointers are reported as
:class:`AddressLoweringError` -- run ``mem2reg``/unrolling first (the
pipeline in :func:`lowering_pipeline` does).

Note this is first-fit assignment, not liveness-aware colouring: released
addresses are not reused.  The inferred counts therefore upper-bound the
paper's "fixed number of qubits" constraint check, which
:class:`repro.hybrid.feasibility` enforces against a device.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.llvmir.function import Function
from repro.llvmir.instructions import CallInst, Instruction
from repro.llvmir.module import Module
from repro.llvmir.types import i1
from repro.llvmir.values import ConstantInt, ConstantNull, ConstantPointerInt, Value
from repro.passes.manager import ModulePass, PassManager
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.constprop import ConstantPropagationPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.quantum.qubit_count import QubitCountInferencePass
from repro.passes.simplify_cfg import SimplifyCFGPass
from repro.passes.unroll import LoopUnrollPass
from repro.qir.catalog import RT_PREFIX


class AddressLoweringError(ValueError):
    pass


def _static_pointer(address: int) -> Value:
    return ConstantNull() if address == 0 else ConstantPointerInt(address)


class StaticAddressLoweringPass(ModulePass):
    """Assign static addresses to dynamically managed qubits.

    ``reuse_released=True`` turns first-fit assignment into the liveness-
    aware variant of the paper's register-allocation analogy: a singleton
    ``qubit_release`` returns its address to a free pool, so programs with
    allocate/use/release churn need only their *peak* width of hardware
    qubits instead of their total allocation count.  Reuse requires
    straight-line (single-block) code so program order is well defined;
    multi-block functions silently fall back to first-fit.
    """

    name = "static-address-lowering"

    def __init__(self, reuse_released: bool = False):
        self.reuse_released = reuse_released

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self._run_on_function(fn)
        if changed:
            # The module no longer manages qubits dynamically.
            flags = [
                (b, k, v)
                for b, k, v in module.module_flags
                if k != "dynamic_qubit_management"
            ]
            module.module_flags = flags
            module.add_module_flag(
                1, "dynamic_qubit_management", ConstantInt(i1, 0)
            )
            QubitCountInferencePass().run_on_module(module)
        return changed

    def _run_on_function(self, fn: Function) -> bool:
        allocate_array = f"{RT_PREFIX}qubit_allocate_array"
        allocate_one = f"{RT_PREFIX}qubit_allocate"
        release_array = f"{RT_PREFIX}qubit_release_array"
        release_one = f"{RT_PREFIX}qubit_release"
        element_ptr = f"{RT_PREFIX}array_get_element_ptr_1d"
        array_size = f"{RT_PREFIX}array_get_size_1d"

        next_address = 0
        free_pool: List[int] = []
        reuse = self.reuse_released and len(fn.blocks) == 1
        array_base: Dict[Instruction, int] = {}
        array_len: Dict[Instruction, int] = {}
        to_remove: List[Instruction] = []
        changed = False

        for inst in list(fn.instructions()):
            if not isinstance(inst, CallInst):
                continue
            name = inst.callee.name or ""
            if name == allocate_array:
                size = inst.operands[0]
                if not isinstance(size, ConstantInt):
                    raise AddressLoweringError(
                        f"@{fn.name}: qubit_allocate_array with non-constant "
                        "size; run constant propagation first"
                    )
                array_base[inst] = next_address
                array_len[inst] = size.value
                next_address += size.value
                changed = True
            elif name == allocate_one:
                if reuse and free_pool:
                    address = free_pool.pop()
                else:
                    address = next_address
                    next_address += 1
                inst.replace_all_uses_with(_static_pointer(address))
                to_remove.append(inst)
                changed = True
            elif name == release_one and reuse:
                released = inst.operands[0]
                if isinstance(released, ConstantPointerInt):
                    address: Optional[int] = released.address
                elif isinstance(released, ConstantNull):
                    address = 0
                else:
                    address = None
                if address is not None:
                    free_pool.append(address)
                    # Reuse soundness: the released qubit may hold arbitrary
                    # state; the dynamic runtime's release re-zeroes it, so
                    # the lowered program must reset before the address is
                    # handed out again.
                    from repro.qir.catalog import QIS_PREFIX, qis_signature

                    reset_name = f"{QIS_PREFIX}reset__body"
                    reset_fn = fn.parent.declare_function(  # type: ignore[union-attr]
                        reset_name, qis_signature(reset_name)
                    )
                    block = inst.parent
                    assert block is not None
                    block.insert_before(
                        inst, CallInst(reset_fn, [_static_pointer(address)])
                    )
                    to_remove.append(inst)
                    changed = True

        # Resolve every use of each lowered array.
        for array_call, base in array_base.items():
            for user in list(array_call.users):
                if not isinstance(user, CallInst):
                    raise AddressLoweringError(
                        f"@{fn.name}: qubit array escapes into {user!r}; "
                        "run mem2reg first"
                    )
                uname = user.callee.name or ""
                if uname == element_ptr:
                    index = user.operands[1]
                    if not isinstance(index, ConstantInt):
                        raise AddressLoweringError(
                            f"@{fn.name}: non-constant qubit index; "
                            "unroll loops first"
                        )
                    if not 0 <= index.value < array_len[array_call]:
                        raise AddressLoweringError(
                            f"@{fn.name}: qubit index {index.value} out of "
                            f"bounds for array of {array_len[array_call]}"
                        )
                    user.replace_all_uses_with(_static_pointer(base + index.value))
                    to_remove.append(user)
                elif uname == array_size:
                    user.replace_all_uses_with(
                        ConstantInt(user.type, array_len[array_call])  # type: ignore[arg-type]
                    )
                    to_remove.append(user)
                elif uname == release_array:
                    to_remove.append(user)
                elif uname in (
                    f"{RT_PREFIX}array_update_reference_count",
                    f"{RT_PREFIX}array_update_alias_count",
                ):
                    to_remove.append(user)
                else:
                    raise AddressLoweringError(
                        f"@{fn.name}: unsupported qubit-array consumer @{uname}"
                    )
            to_remove.append(array_call)

        # Plain release of a lowered singleton: drop it.
        for inst in list(fn.instructions()):
            if (
                isinstance(inst, CallInst)
                and (inst.callee.name or "") == release_one
                and isinstance(
                    inst.operands[0], (ConstantNull, ConstantPointerInt)
                )
            ):
                to_remove.append(inst)
                changed = True

        seen = set()
        for inst in to_remove:
            if id(inst) in seen or inst.parent is None:
                continue
            seen.add(id(inst))
            if inst.is_used():
                raise AddressLoweringError(
                    f"@{fn.name}: lowered call still has users: {inst!r}"
                )
            inst.erase_from_parent()
        return changed


def lowering_pipeline(
    max_trip_count: int = 4096, reuse_released: bool = False
) -> PassManager:
    """The full dynamic->static recipe: SSA-ise, unroll, fold, lower.

    ``reuse_released`` selects the liveness-style address allocator (see
    :class:`StaticAddressLoweringPass`)."""
    return PassManager(
        [
            Mem2RegPass(),
            ConstantPropagationPass(),
            LoopUnrollPass(max_trip_count=max_trip_count),
            ConstantPropagationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
            StaticAddressLoweringPass(reuse_released=reuse_released),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
        ],
        max_iterations=2,
    )
