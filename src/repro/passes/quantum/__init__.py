"""Quantum-specific transformation passes over QIR.

These are the passes a *quantum* tool contributes on top of the inherited
classical ones (paper, Section III-B): peephole gate optimisation directly
on the QIR AST, and the qubit-addressing conversions of Section IV-A
(dynamic -> static lowering, the "register allocation" analogue; and
static -> dynamic raising, the simulator-friendly direction).
"""

from repro.passes.quantum.cancellation import (
    GateCancellationPass,
    RotationMergingPass,
)
from repro.passes.quantum.qubit_count import (
    InferredCounts,
    QubitCountInferencePass,
    infer_counts,
)
from repro.passes.quantum.address_lowering import (
    AddressLoweringError,
    StaticAddressLoweringPass,
)
from repro.passes.quantum.address_raising import DynamicAddressRaisingPass

__all__ = [
    "GateCancellationPass",
    "RotationMergingPass",
    "InferredCounts",
    "QubitCountInferencePass",
    "infer_counts",
    "AddressLoweringError",
    "StaticAddressLoweringPass",
    "DynamicAddressRaisingPass",
]
