"""Conditional constant propagation (a pragmatic SCCP).

Beyond plain folding this pass:

* folds conditional branches whose condition is constant into
  unconditional ones (fixing up phi nodes on the dead edge), and
* collapses single-input phi nodes,

which is what turns an unrolled counted loop (Ex. 4) into straight-line
code once the induction variable is constant per clone.
"""

from __future__ import annotations

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    BranchInst,
    CondBranchInst,
    PhiInst,
    SwitchInst,
)
from repro.llvmir.values import ConstantInt
from repro.passes.fold_utils import fold_instruction, simplify_to_operand
from repro.passes.manager import FunctionPass


def _remove_edge_phis(from_block: BasicBlock, to_block: BasicBlock) -> None:
    for phi in to_block.phis():
        phi.remove_incoming(from_block)


class ConstantPropagationPass(FunctionPass):
    name = "constprop"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        work = True
        while work:
            work = False
            for block in list(fn.blocks):
                for inst in list(block.instructions):
                    if inst.is_terminator:
                        continue
                    if isinstance(inst, PhiInst):
                        values = [v for v, _ in inst.incoming]
                        if values and all(
                            v is values[0] or v == values[0] for v in values[1:]
                        ):
                            only = values[0]
                            if only is not inst:
                                inst.replace_all_uses_with(only)
                                block.remove(inst)
                                changed = work = True
                        continue
                    if inst.type.is_void:
                        continue
                    folded = fold_instruction(inst)
                    if folded is not None:
                        inst.replace_all_uses_with(folded)
                        block.remove(inst)
                        changed = work = True
                        continue
                    operand = simplify_to_operand(inst)
                    if operand is not None:
                        inst.replace_all_uses_with(operand)
                        block.remove(inst)
                        changed = work = True

                term = block.terminator
                if isinstance(term, CondBranchInst) and isinstance(
                    term.condition, ConstantInt
                ):
                    taken = (
                        term.true_target if term.condition.value else term.false_target
                    )
                    dead = (
                        term.false_target if term.condition.value else term.true_target
                    )
                    block.remove(term)
                    block.append(BranchInst(taken))
                    if dead is not taken:
                        _remove_edge_phis(block, dead)
                    changed = work = True
                elif isinstance(term, SwitchInst) and isinstance(
                    term.value, ConstantInt
                ):
                    taken = term.default
                    for const, case_block in term.cases:
                        if (
                            isinstance(const, ConstantInt)
                            and const.value == term.value.value
                        ):
                            taken = case_block
                            break
                    dead_targets = {
                        b for b in term.successors() if b is not taken
                    }
                    block.remove(term)
                    block.append(BranchInst(taken))
                    for dead in dead_targets:
                        _remove_edge_phis(block, dead)
                    changed = work = True
        return changed
