"""mem2reg: promote stack slots to SSA registers.

Front-ends emit memory form (Fig. 1 and Ex. 4 both spill to ``alloca``
slots); nearly every later pass wants SSA.  Classic algorithm: phi
insertion at the iterated dominance frontier of the stores, then a
renaming walk over the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.dominators import DominatorTree
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.llvmir.types import IRType
from repro.llvmir.values import ConstantUndef
from repro.passes.manager import FunctionPass


def _promotable(alloca: AllocaInst) -> bool:
    """A slot is promotable when it is only ever loaded from / stored to
    (never GEP'd, never passed to a call, never stored *as a value*)."""
    if alloca.allocated_type.is_aggregate:
        return False
    for user in alloca.users:
        if isinstance(user, LoadInst) and user.pointer is alloca:
            continue
        if (
            isinstance(user, StoreInst)
            and user.pointer is alloca
            and user.value is not alloca
        ):
            continue
        return False
    return True


class Mem2RegPass(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        if not fn.blocks:
            return False
        allocas = [
            inst
            for inst in fn.entry_block.instructions
            if isinstance(inst, AllocaInst) and _promotable(inst)
        ]
        if not allocas:
            return False

        domtree = DominatorTree(fn)
        for alloca in allocas:
            self._promote(fn, alloca, domtree)
        return True

    def _promote(self, fn: Function, alloca: AllocaInst, domtree: DominatorTree) -> None:
        loads = [u for u in alloca.users if isinstance(u, LoadInst)]
        stores = [u for u in alloca.users if isinstance(u, StoreInst)]
        value_type: IRType = alloca.allocated_type

        # Fast path: no loads -> drop everything.
        if not loads:
            for store in stores:
                store.erase_from_parent()
            alloca.erase_from_parent()
            return

        # Phi placement at the iterated dominance frontier of def blocks.
        def_blocks: Set[BasicBlock] = {s.parent for s in stores if s.parent}
        phi_blocks: Set[BasicBlock] = set()
        worklist = list(def_blocks)
        while worklist:
            block = worklist.pop()
            for frontier in domtree.dominance_frontier(block):
                if frontier not in phi_blocks:
                    phi_blocks.add(frontier)
                    worklist.append(frontier)

        phis: Dict[BasicBlock, PhiInst] = {}
        for block in phi_blocks:
            if block not in domtree.idom:  # unreachable
                continue
            phi = PhiInst(value_type)
            block.insert(0, phi)
            phis[block] = phi

        undef = ConstantUndef(value_type)

        # Renaming walk over the dominator tree.  Iterative pre-order with a
        # per-node incoming value (children see the value at the end of
        # their dominator), since recursion depth can exceed Python's limit
        # on long unrolled chains.
        stack: List = [(fn.entry_block, undef)]
        visited: Set[BasicBlock] = set()
        while stack:
            block, incoming = stack.pop()
            if block in visited:
                continue
            visited.add(block)
            current = incoming
            phi = phis.get(block)
            if phi is not None:
                current = phi
            for inst in list(block.instructions):
                if isinstance(inst, LoadInst) and inst.pointer is alloca:
                    inst.replace_all_uses_with(current)
                    block.remove(inst)
                elif isinstance(inst, StoreInst) and inst.pointer is alloca:
                    current = inst.value
                    block.remove(inst)
            for succ in block.successors():
                succ_phi = phis.get(succ)
                if succ_phi is not None:
                    succ_phi.add_incoming(current, block)
            for child in domtree.children(block):
                stack.append((child, current))

        # Phis in unreachable blocks were skipped; the alloca must now be dead.
        assert not alloca.is_used(), "mem2reg left dangling alloca uses"
        alloca.erase_from_parent()

        # Prune phi nodes that ended up with missing predecessors (e.g. the
        # dominance frontier included a block whose other predecessor is
        # unreachable): fill from undef for verifier correctness.
        for block, phi in phis.items():
            have = set(phi.incoming_blocks)
            for pred in block.predecessors():
                if pred not in have:
                    phi.add_incoming(undef, pred)
