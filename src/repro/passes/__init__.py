"""Transformation passes over the IR.

Classical passes (the ones the paper says QIR inherits from LLVM "for
free", Sec. II-C and Ex. 4): constant folding, constant propagation, dead
code elimination, CFG simplification, ``mem2reg`` and loop unrolling, plus
function inlining.

Quantum passes (the ones a *quantum* tool adds on top, Sec. III-B and
IV-A) live in :mod:`repro.passes.quantum`.
"""

from repro.passes.manager import (
    Budget,
    BudgetBust,
    FunctionPass,
    ModulePass,
    PassManager,
    PassResult,
    PassRunRecord,
    count_instructions,
    run_passes,
)
from repro.passes.constant_fold import ConstantFoldPass
from repro.passes.constprop import ConstantPropagationPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.simplify_cfg import SimplifyCFGPass
from repro.passes.mem2reg import Mem2RegPass
from repro.passes.unroll import LoopUnrollPass
from repro.passes.inline import InlinePass
from repro.passes.pipeline import default_pipeline, o1_pipeline, unroll_pipeline

__all__ = [
    "Budget",
    "BudgetBust",
    "FunctionPass",
    "ModulePass",
    "PassManager",
    "PassResult",
    "PassRunRecord",
    "count_instructions",
    "run_passes",
    "ConstantFoldPass",
    "ConstantPropagationPass",
    "DeadCodeEliminationPass",
    "SimplifyCFGPass",
    "Mem2RegPass",
    "LoopUnrollPass",
    "InlinePass",
    "default_pipeline",
    "o1_pipeline",
    "unroll_pipeline",
]
