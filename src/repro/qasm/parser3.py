"""An OpenQASM 3 *subset* parser (paper, Section II-B).

OpenQASM 3 folded classical logic into the language; supporting it means
the parser itself must implement what a classical compiler would provide.
This subset demonstrates exactly that burden:

* ``qubit[n] name;`` / ``bit[n] name;`` declarations,
* gate calls (same vocabulary as OpenQASM 2),
* assignment measurement ``c[0] = measure q[0];``,
* ``if (c[0] == 1) { ... }`` blocks (single-bit conditions),
* ``for <type> i in [lo:hi] { ... }`` -- which this parser must **unroll
  itself**, re-doing by hand the loop handling LLVM gives QIR for free
  (contrast with :class:`repro.passes.unroll.LoopUnrollPass`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuit.circuit import Circuit
from repro.circuit.operations import ConditionalOperation, GateOperation, Reset
from repro.circuit.registers import ClassicalRegister, QuantumRegister, Qubit
from repro.qasm.expr import evaluate_expression
from repro.qasm.lexer import QasmToken, tokenize
from repro.qasm.parser2 import _QELIB_GATES


class Qasm3ParseError(ValueError):
    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


_MAX_UNROLL = 100_000


class _Parser3:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.circuit = Circuit("qasm3")
        self.qregs: Dict[str, QuantumRegister] = {}
        self.cregs: Dict[str, ClassicalRegister] = {}
        self.loop_vars: Dict[str, int] = {}

    def _peek(self, offset: int = 0) -> Optional[QasmToken]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> QasmToken:
        tok = self._peek()
        if tok is None:
            raise Qasm3ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> QasmToken:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise Qasm3ParseError(f"expected {text or kind}, got {tok.text!r}", tok.line)
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[QasmToken]:
        tok = self._peek()
        if tok is not None and tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    # -- top level ---------------------------------------------------------------
    def parse(self) -> Circuit:
        self._expect("ID", "OPENQASM")
        version = self._expect("NUMBER")
        if not version.text.startswith("3"):
            raise Qasm3ParseError(
                f"OPENQASM {version.text} is not version 3", version.line
            )
        self._expect("PUNCT", ";")
        while self._peek() is not None:
            self._statement()
        return self.circuit

    def _statement(self) -> None:
        tok = self._peek()
        assert tok is not None
        if tok.text == "include":
            self._next()
            self._expect("STRING")
            self._expect("PUNCT", ";")
            return
        if tok.text in ("qubit", "bit"):
            self._declaration(tok.text)
            return
        if tok.text == "for":
            self._for_loop()
            return
        if tok.text == "if":
            self._if_block()
            return
        if tok.text == "reset":
            self._next()
            qubit = self._qubit_ref()
            self._expect("PUNCT", ";")
            self.circuit.reset(qubit)
            return
        if tok.text == "barrier":
            self._next()
            while self._peek() is not None and self._peek().text != ";":
                self._next()
            self._expect("PUNCT", ";")
            self.circuit.barrier()
            return
        # `c[i] = measure q[j];` assignment form?
        if (
            tok.kind == "ID"
            and tok.text in self.cregs
        ):
            self._measure_assignment()
            return
        self._gate_call()

    def _declaration(self, kind: str) -> None:
        self._next()
        size = 1
        if self._accept("PUNCT", "["):
            size_tok = self._expect("NUMBER")
            self._expect("PUNCT", "]")
            size = int(size_tok.text)
        name = self._expect("ID")
        self._expect("PUNCT", ";")
        if kind == "qubit":
            register = QuantumRegister(name.text, size)
            self.circuit.add_qreg(register)
            self.qregs[name.text] = register
        else:
            register = ClassicalRegister(name.text, size)
            self.circuit.add_creg(register)
            self.cregs[name.text] = register

    # -- references -----------------------------------------------------------
    def _index_expr(self) -> int:
        """An integer index: literal, loop variable, or simple arithmetic."""
        expr: List[str] = []
        depth = 0
        while True:
            tok = self._peek()
            if tok is None:
                raise Qasm3ParseError("unterminated index expression")
            if tok.text == "[":
                depth += 1
            elif tok.text == "]":
                if depth == 0:
                    break
                depth -= 1
            expr.append(self._next().text)
        bindings = {k: float(v) for k, v in self.loop_vars.items()}
        value = evaluate_expression(expr, bindings)
        if abs(value - round(value)) > 1e-9:
            raise Qasm3ParseError(f"non-integer index {value}")
        return int(round(value))

    def _qubit_ref(self) -> Qubit:
        name = self._expect("ID")
        register = self.qregs.get(name.text)
        if register is None:
            raise Qasm3ParseError(f"unknown qubit register {name.text!r}", name.line)
        self._expect("PUNCT", "[")
        index = self._index_expr()
        self._expect("PUNCT", "]")
        if not 0 <= index < register.size:
            raise Qasm3ParseError(
                f"index {index} out of range for {name.text}[{register.size}]",
                name.line,
            )
        return register[index]

    # -- statements -----------------------------------------------------------
    def _measure_assignment(self) -> None:
        creg_name = self._expect("ID")
        register = self.cregs[creg_name.text]
        self._expect("PUNCT", "[")
        clbit_index = self._index_expr()
        self._expect("PUNCT", "]")
        self._expect("PUNCT", "=")
        self._expect("ID", "measure")
        qubit = self._qubit_ref()
        self._expect("PUNCT", ";")
        self.circuit.measure(qubit, register[clbit_index])

    def _gate_call(self, condition=None) -> None:
        name_tok = self._expect("ID")
        params: List[float] = []
        if self._accept("PUNCT", "("):
            expr: List[str] = []
            depth = 0
            exprs: List[List[str]] = []
            while True:
                tok = self._next()
                if tok.text == "(":
                    depth += 1
                    expr.append(tok.text)
                elif tok.text == ")":
                    if depth == 0:
                        break
                    depth -= 1
                    expr.append(tok.text)
                elif tok.text == "," and depth == 0:
                    exprs.append(expr)
                    expr = []
                else:
                    expr.append(tok.text)
            if expr:
                exprs.append(expr)
            bindings = {k: float(v) for k, v in self.loop_vars.items()}
            params = [evaluate_expression(e, bindings) for e in exprs]
        qubits: List[Qubit] = []
        while True:
            qubits.append(self._qubit_ref())
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")

        entry = _QELIB_GATES.get(name_tok.text)
        if entry is None:
            raise Qasm3ParseError(f"unknown gate {name_tok.text!r}", name_tok.line)
        canonical, num_params, num_qubits = entry
        if name_tok.text == "u2":
            import math

            phi, lam = params
            canonical, params = "u3", [math.pi / 2, phi, lam]
        if canonical is None:
            raise Qasm3ParseError(f"unsupported gate {name_tok.text!r}", name_tok.line)
        op = GateOperation(canonical, qubits, params)
        if condition is not None:
            register, value = condition
            self.circuit.append(ConditionalOperation(register, value, op))
        else:
            self.circuit.append(op)

    def _if_block(self) -> None:
        self._expect("ID", "if")
        self._expect("PUNCT", "(")
        creg_name = self._expect("ID")
        register = self.cregs.get(creg_name.text)
        if register is None:
            raise Qasm3ParseError(
                f"unknown bit register {creg_name.text!r}", creg_name.line
            )
        value_mask: int
        if self._accept("PUNCT", "["):
            bit_index = self._index_expr()
            self._expect("PUNCT", "]")
            self._expect("EQEQ")
            bit_value = int(self._expect("NUMBER").text)
            self._expect("PUNCT", ")")
            if register.size == 1:
                condition = (register, bit_value)
            elif bit_value == 1:
                condition = (register, 1 << bit_index)
            else:
                raise Qasm3ParseError(
                    "only '== 1' single-bit conditions are supported on "
                    "multi-bit registers",
                    creg_name.line,
                )
        else:
            self._expect("EQEQ")
            value_mask = int(self._expect("NUMBER").text)
            self._expect("PUNCT", ")")
            condition = (register, value_mask)
        self._expect("PUNCT", "{")
        while self._peek() is not None and self._peek().text != "}":
            tok = self._peek()
            if tok.text in ("if", "for"):
                raise Qasm3ParseError("nested control flow is not supported", tok.line)
            if tok.text == "reset":
                self._next()
                qubit = self._qubit_ref()
                self._expect("PUNCT", ";")
                self.circuit.append(
                    ConditionalOperation(condition[0], condition[1], Reset(qubit))
                )
                continue
            self._gate_call(condition=condition)
        self._expect("PUNCT", "}")

    def _for_loop(self) -> None:
        self._expect("ID", "for")
        type_tok = self._expect("ID")  # uint / int
        if type_tok.text not in ("uint", "int"):
            raise Qasm3ParseError(
                f"unsupported loop variable type {type_tok.text!r}", type_tok.line
            )
        var = self._expect("ID").text
        self._expect("ID", "in")
        self._expect("PUNCT", "[")
        lo = int(self._expect("NUMBER").text)
        self._expect("PUNCT", ":")
        hi = int(self._expect("NUMBER").text)
        self._expect("PUNCT", "]")
        self._expect("PUNCT", "{")
        body_start = self.pos
        # find matching close brace
        depth = 1
        while depth:
            tok = self._next()
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth -= 1
        body_end = self.pos - 1

        if (hi - lo + 1) > _MAX_UNROLL:
            raise Qasm3ParseError(f"loop range [{lo}:{hi}] too large to unroll")
        outer = self.loop_vars.get(var)
        # The parser itself performs the unrolling (the very machinery QIR
        # inherits from LLVM): replay the body token range per iteration.
        for i in range(lo, hi + 1):
            self.loop_vars[var] = i
            self.pos = body_start
            while self.pos < body_end:
                self._statement()
        self.pos = body_end + 1
        if outer is None:
            self.loop_vars.pop(var, None)
        else:
            self.loop_vars[var] = outer


def parse_qasm3(source: str) -> Circuit:
    """Parse the OpenQASM 3 subset into a :class:`Circuit`."""
    return _Parser3(source).parse()
