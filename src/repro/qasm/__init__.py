"""OpenQASM support: the incumbent IR the paper contrasts QIR against.

* :mod:`repro.qasm.parser2` -- OpenQASM 2.0 parser (Sec. II-A): registers,
  gate applications with parameter expressions, user ``gate`` definitions
  (macro-expanded), ``measure``/``reset``/``barrier`` and the OpenQASM-2
  ``if (creg == n)`` conditional.
* :mod:`repro.qasm.exporter` -- circuit -> OpenQASM 2.0 text.
* :mod:`repro.qasm.parser3` -- an OpenQASM 3 *subset* (Sec. II-B):
  ``qubit[n]``/``bit[n]`` declarations, assignment-style measurement,
  ``if`` blocks, and classical ``for`` loops -- which the parser must
  unroll itself, the very reimplementation-of-compiler-machinery burden
  the paper attributes to the OpenQASM 3 route.
"""

from repro.qasm.parser2 import QasmParseError, parse_qasm2
from repro.qasm.exporter import circuit_to_qasm2
from repro.qasm.exporter3 import circuit_to_qasm3
from repro.qasm.parser3 import Qasm3ParseError, parse_qasm3

__all__ = [
    "QasmParseError",
    "parse_qasm2",
    "circuit_to_qasm2",
    "circuit_to_qasm3",
    "Qasm3ParseError",
    "parse_qasm3",
]
