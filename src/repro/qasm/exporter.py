"""Circuit -> OpenQASM 2.0 exporter."""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import Circuit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)

# canonical name -> qasm2 spelling
_QASM_NAMES: Dict[str, str] = {
    "i": "id",
    "cnot": "cx",
    "s_adj": "sdg",
    "t_adj": "tdg",
    "p": "u1",
    "u3": "u3",
    "cp": "cu1",
}


def _format_angle(value: float) -> str:
    import math

    # Render familiar multiples of pi symbolically for readability.
    for denom in (1, 2, 3, 4, 6, 8):
        for num in range(-16, 17):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                sign = "-" if num < 0 else ""
                n = abs(num)
                numer = "pi" if n == 1 else f"{n}*pi"
                return f"{sign}{numer}" if denom == 1 else f"{sign}{numer}/{denom}"
    if value == 0:
        return "0"
    return repr(value)


def _op_to_line(circuit: Circuit, op: Operation) -> str:
    if isinstance(op, GateOperation):
        name = _QASM_NAMES.get(op.name, op.name)
        params = (
            "(" + ",".join(_format_angle(p) for p in op.params) + ")"
            if op.params
            else ""
        )
        targets = ",".join(repr(q) for q in op.qubits)
        return f"{name}{params} {targets};"
    if isinstance(op, Measurement):
        return f"measure {op.qubit!r} -> {op.clbit!r};"
    if isinstance(op, Reset):
        return f"reset {op.qubit!r};"
    if isinstance(op, Barrier):
        targets = ",".join(repr(q) for q in op.qubits)
        return f"barrier {targets};"
    if isinstance(op, ConditionalOperation):
        inner = _op_to_line(circuit, op.operation)
        return f"if({op.register.name}=={op.value}) {inner}"
    raise ValueError(f"cannot export operation {op!r}")


def circuit_to_qasm2(circuit: Circuit) -> str:
    """Serialise a circuit as OpenQASM 2.0 text (Fig. 1, top-left form)."""
    lines: List[str] = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    for register in circuit.qregs:
        lines.append(f"qreg {register.name}[{register.size}];")
    for register in circuit.cregs:
        lines.append(f"creg {register.name}[{register.size}];")
    for op in circuit.operations:
        lines.append(_op_to_line(circuit, op))
    return "\n".join(lines) + "\n"
