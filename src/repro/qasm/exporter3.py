"""Circuit -> OpenQASM 3 exporter.

Completes the format bridge: the toolchain can now read and write both
OpenQASM generations (Sec. II-A/B) as well as QIR.  Conditionals use the
OpenQASM 3 ``if (...) { ... }`` statement form; measurements use the
assignment form.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import Circuit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.qasm.exporter import _format_angle

# canonical -> stdgates.inc spellings
_QASM3_NAMES: Dict[str, str] = {
    "i": "id",
    "cnot": "cx",
    "s_adj": "sdg",
    "t_adj": "tdg",
    "cp": "cp",
}


def _gate_line(op: GateOperation) -> str:
    name = _QASM3_NAMES.get(op.name, op.name)
    params = (
        "(" + ", ".join(_format_angle(p) for p in op.params) + ")"
        if op.params
        else ""
    )
    targets = ", ".join(repr(q) for q in op.qubits)
    return f"{name}{params} {targets};"


def _statement(op: Operation) -> str:
    if isinstance(op, GateOperation):
        return _gate_line(op)
    if isinstance(op, Measurement):
        return f"{op.clbit!r} = measure {op.qubit!r};"
    if isinstance(op, Reset):
        return f"reset {op.qubit!r};"
    if isinstance(op, Barrier):
        targets = ", ".join(repr(q) for q in op.qubits)
        return f"barrier {targets};"
    raise ValueError(f"cannot export operation {op!r}")


def circuit_to_qasm3(circuit: Circuit) -> str:
    """Serialise a circuit as OpenQASM 3 text."""
    lines: List[str] = ["OPENQASM 3;", 'include "stdgates.inc";']
    for register in circuit.qregs:
        lines.append(f"qubit[{register.size}] {register.name};")
    for register in circuit.cregs:
        lines.append(f"bit[{register.size}] {register.name};")
    for op in circuit.operations:
        if isinstance(op, ConditionalOperation):
            # Register-wide comparison is native in OpenQASM 3.
            inner = _statement(op.operation)
            lines.append(f"if ({op.register.name} == {op.value}) {{ {inner} }}")
        else:
            lines.append(_statement(op))
    return "\n".join(lines) + "\n"
