"""OpenQASM 2.0 parser -> :class:`repro.circuit.Circuit`.

Covers the language as used in practice (and in the paper's Figure 1):
register declarations, the qelib1 gate vocabulary, user ``gate``
definitions (macro-expanded at the call site -- OpenQASM 2 subroutines are
pure substitution), register broadcasting, ``measure``/``reset``/
``barrier``, and ``if (creg == n) <op>;``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.operations import GateOperation, Operation, Reset
from repro.circuit.registers import ClassicalRegister, QuantumRegister, Qubit
from repro.qasm.expr import evaluate_expression
from repro.qasm.lexer import QasmToken, tokenize

# Gates provided by qelib1.inc (plus the builtins U and CX), mapped to the
# canonical vocabulary.  u0/u1/u2/u3 are expressed through p/u3.
_QELIB_GATES = {
    "u3": ("u3", 3, 1),
    "u2": (None, 2, 1),  # expanded specially below
    "u1": ("p", 1, 1),
    "u": ("u3", 3, 1),
    "p": ("p", 1, 1),
    "cx": ("cnot", 0, 2),
    "id": ("i", 0, 1),
    "x": ("x", 0, 1),
    "y": ("y", 0, 1),
    "z": ("z", 0, 1),
    "h": ("h", 0, 1),
    "s": ("s", 0, 1),
    "sdg": ("s_adj", 0, 1),
    "t": ("t", 0, 1),
    "tdg": ("t_adj", 0, 1),
    "sx": ("sx", 0, 1),
    "rx": ("rx", 1, 1),
    "ry": ("ry", 1, 1),
    "rz": ("rz", 1, 1),
    "cz": ("cz", 0, 2),
    "cy": ("cy", 0, 2),
    "swap": ("swap", 0, 2),
    "ccx": ("ccx", 0, 3),
    "crz": ("crz", 1, 2),
    "cp": ("cp", 1, 2),
    "cu1": ("cp", 1, 2),
    "rzz": ("rzz", 1, 2),
    "rxx": ("rxx", 1, 2),
}


class QasmParseError(ValueError):
    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


@dataclass
class _GateDef:
    name: str
    params: List[str]
    qubits: List[str]
    body: List[List[QasmToken]]  # statements as token lists


class _Parser2:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.circuit = Circuit("qasm2")
        self.qregs: Dict[str, QuantumRegister] = {}
        self.cregs: Dict[str, ClassicalRegister] = {}
        self.gate_defs: Dict[str, _GateDef] = {}
        self.included_qelib = False

    # -- token helpers ---------------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[QasmToken]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> QasmToken:
        tok = self._peek()
        if tok is None:
            raise QasmParseError("unexpected end of input")
        self.pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> QasmToken:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise QasmParseError(
                f"expected {text or kind}, got {tok.text!r}", tok.line
            )
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[QasmToken]:
        tok = self._peek()
        if tok is not None and tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    # -- top level ---------------------------------------------------------------
    def parse(self) -> Circuit:
        self._expect("ID", "OPENQASM")
        version = self._expect("NUMBER")
        if not version.text.startswith("2"):
            raise QasmParseError(
                f"OPENQASM {version.text} is not version 2; use parse_qasm3",
                version.line,
            )
        self._expect("PUNCT", ";")
        while self._peek() is not None:
            self._statement()
        return self.circuit

    def _statement(self) -> None:
        tok = self._peek()
        assert tok is not None
        if tok.kind != "ID":
            raise QasmParseError(f"unexpected token {tok.text!r}", tok.line)
        keyword = tok.text
        if keyword == "include":
            self._next()
            path = self._expect("STRING")
            self._expect("PUNCT", ";")
            if path.text != "qelib1.inc":
                raise QasmParseError(
                    f"cannot resolve include {path.text!r} (only qelib1.inc "
                    "is built in)",
                    path.line,
                )
            self.included_qelib = True
            return
        if keyword == "qreg":
            self._next()
            name, size = self._reg_decl()
            register = QuantumRegister(name, size)
            self.circuit.add_qreg(register)
            self.qregs[name] = register
            return
        if keyword == "creg":
            self._next()
            name, size = self._reg_decl()
            register = ClassicalRegister(name, size)
            self.circuit.add_creg(register)
            self.cregs[name] = register
            return
        if keyword == "gate":
            self._parse_gate_def()
            return
        if keyword == "opaque":
            # declaration only; skip to ';'
            while self._next().text != ";":
                pass
            return
        if keyword == "measure":
            self._next()
            self._parse_measure()
            return
        if keyword == "reset":
            self._next()
            targets = self._qubit_args(1, broadcast=True)
            self._expect("PUNCT", ";")
            for (qubit,) in targets:
                self.circuit.reset(qubit)
            return
        if keyword == "barrier":
            self._next()
            qubits: List[Qubit] = []
            while True:
                qubits.extend(self._qubit_operand())
                if not self._accept("PUNCT", ","):
                    break
            self._expect("PUNCT", ";")
            self.circuit.barrier(*qubits)
            return
        if keyword == "if":
            self._next()
            self._parse_if()
            return
        # otherwise: a gate application
        self._parse_gate_application(conditional=None)

    def _reg_decl(self) -> Tuple[str, int]:
        name = self._expect("ID")
        self._expect("PUNCT", "[")
        size = self._expect("NUMBER")
        self._expect("PUNCT", "]")
        self._expect("PUNCT", ";")
        if "." in size.text:
            raise QasmParseError("register size must be an integer", size.line)
        return name.text, int(size.text)

    # -- gate definitions -----------------------------------------------------------
    def _parse_gate_def(self) -> None:
        self._expect("ID", "gate")
        name = self._expect("ID").text
        params: List[str] = []
        if self._accept("PUNCT", "("):
            if not self._accept("PUNCT", ")"):
                while True:
                    params.append(self._expect("ID").text)
                    if not self._accept("PUNCT", ","):
                        break
                self._expect("PUNCT", ")")
        qubits: List[str] = []
        while True:
            qubits.append(self._expect("ID").text)
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", "{")
        body: List[List[QasmToken]] = []
        statement: List[QasmToken] = []
        depth = 1
        while True:
            tok = self._next()
            if tok.kind == "PUNCT" and tok.text == "{":
                depth += 1
            elif tok.kind == "PUNCT" and tok.text == "}":
                depth -= 1
                if depth == 0:
                    break
            elif tok.kind == "PUNCT" and tok.text == ";":
                if statement:
                    body.append(statement)
                statement = []
                continue
            statement.append(tok)
        self.gate_defs[name] = _GateDef(name, params, qubits, body)

    # -- applications -----------------------------------------------------------
    def _parse_gate_application(self, conditional) -> None:
        name_tok = self._expect("ID")
        name = name_tok.text
        params: List[float] = []
        if self._accept("PUNCT", "("):
            params = self._param_exprs()
        operands: List[List[Qubit]] = []
        while True:
            operands.append(self._qubit_operand())
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ";")
        self._apply_gate(name, params, operands, conditional, name_tok.line)

    def _param_exprs(self, bindings: Optional[Dict[str, float]] = None) -> List[float]:
        """Parse comma-separated expressions up to the closing ')'."""
        params: List[float] = []
        current: List[str] = []
        depth = 0
        while True:
            tok = self._next()
            if tok.kind == "PUNCT" and tok.text == "(":
                depth += 1
                current.append(tok.text)
            elif tok.kind == "PUNCT" and tok.text == ")":
                if depth == 0:
                    if current:
                        params.append(evaluate_expression(current, bindings))
                    return params
                depth -= 1
                current.append(tok.text)
            elif tok.kind == "PUNCT" and tok.text == "," and depth == 0:
                params.append(evaluate_expression(current, bindings))
                current = []
            else:
                current.append(tok.text)

    def _qubit_operand(self) -> List[Qubit]:
        """A register name (whole register) or an indexed qubit."""
        name = self._expect("ID")
        register = self.qregs.get(name.text)
        if register is None:
            raise QasmParseError(f"unknown quantum register {name.text!r}", name.line)
        if self._accept("PUNCT", "["):
            index = self._expect("NUMBER")
            self._expect("PUNCT", "]")
            i = int(index.text)
            if i >= register.size:
                raise QasmParseError(
                    f"index {i} out of range for {name.text}[{register.size}]",
                    index.line,
                )
            return [register[i]]
        return list(register)

    def _qubit_args(
        self, arity: int, broadcast: bool = False
    ) -> List[Tuple[Qubit, ...]]:
        operands: List[List[Qubit]] = []
        for i in range(arity):
            operands.append(self._qubit_operand())
            if i + 1 < arity:
                self._expect("PUNCT", ",")
        return _broadcast(operands)

    def _apply_gate(
        self,
        name: str,
        params: List[float],
        operands: List[List[Qubit]],
        conditional,
        line: int,
    ) -> None:
        rows = _broadcast(operands)
        for row in rows:
            for op in self._build_ops(name, params, list(row), line):
                if conditional is not None:
                    register, value = conditional
                    from repro.circuit.operations import ConditionalOperation

                    self.circuit.append(
                        ConditionalOperation(register, value, op)
                    )
                else:
                    self.circuit.append(op)

    def _build_ops(
        self, name: str, params: List[float], qubits: List[Qubit], line: int
    ) -> List[Operation]:
        if name in ("U",):
            if len(params) != 3 or len(qubits) != 1:
                raise QasmParseError("U takes 3 params and 1 qubit", line)
            return [GateOperation("u3", qubits, params)]
        if name == "CX":
            return [GateOperation("cnot", qubits)]
        entry = _QELIB_GATES.get(name)
        if entry is not None:
            canonical, num_params, num_qubits = entry
            if len(params) != num_params or len(qubits) != num_qubits:
                raise QasmParseError(
                    f"{name} takes {num_params} params and {num_qubits} qubits",
                    line,
                )
            if name == "u2":
                phi, lam = params
                import math

                return [GateOperation("u3", qubits, [math.pi / 2, phi, lam])]
            assert canonical is not None
            return [GateOperation(canonical, qubits, params)]
        gate_def = self.gate_defs.get(name)
        if gate_def is not None:
            return self._expand_gate_def(gate_def, params, qubits, line)
        raise QasmParseError(f"unknown gate {name!r}", line)

    def _expand_gate_def(
        self, gate_def: _GateDef, params: List[float], qubits: List[Qubit], line: int
    ) -> List[Operation]:
        if len(params) != len(gate_def.params) or len(qubits) != len(gate_def.qubits):
            raise QasmParseError(
                f"{gate_def.name} takes {len(gate_def.params)} params and "
                f"{len(gate_def.qubits)} qubits",
                line,
            )
        bindings = dict(zip(gate_def.params, params))
        qubit_map = dict(zip(gate_def.qubits, qubits))
        ops: List[Operation] = []
        for statement in gate_def.body:
            ops.extend(self._expand_statement(statement, bindings, qubit_map, line))
        return ops

    def _expand_statement(
        self,
        statement: List[QasmToken],
        bindings: Dict[str, float],
        qubit_map: Dict[str, Qubit],
        line: int,
    ) -> List[Operation]:
        if not statement:
            return []
        head = statement[0]
        if head.text == "barrier":
            return []
        index = 1
        inner_params: List[float] = []
        if index < len(statement) and statement[index].text == "(":
            depth = 0
            expr: List[str] = []
            exprs: List[List[str]] = []
            index += 1
            while index < len(statement):
                tok = statement[index]
                if tok.text == "(":
                    depth += 1
                    expr.append(tok.text)
                elif tok.text == ")":
                    if depth == 0:
                        index += 1
                        break
                    depth -= 1
                    expr.append(tok.text)
                elif tok.text == "," and depth == 0:
                    exprs.append(expr)
                    expr = []
                else:
                    expr.append(tok.text)
                index += 1
            if expr:
                exprs.append(expr)
            inner_params = [evaluate_expression(e, bindings) for e in exprs]
        inner_qubits: List[Qubit] = []
        while index < len(statement):
            tok = statement[index]
            if tok.kind == "ID":
                mapped = qubit_map.get(tok.text)
                if mapped is None:
                    raise QasmParseError(
                        f"unbound qubit {tok.text!r} in gate body", tok.line
                    )
                inner_qubits.append(mapped)
            index += 1
        return self._build_ops(head.text, inner_params, inner_qubits, line)

    # -- measure / if -----------------------------------------------------------
    def _parse_measure(self) -> None:
        sources = self._qubit_operand()
        self._expect("ARROW")
        name = self._expect("ID")
        register = self.cregs.get(name.text)
        if register is None:
            raise QasmParseError(f"unknown classical register {name.text!r}", name.line)
        if self._accept("PUNCT", "["):
            index = self._expect("NUMBER")
            self._expect("PUNCT", "]")
            targets = [register[int(index.text)]]
        else:
            targets = list(register)
        self._expect("PUNCT", ";")
        if len(sources) != len(targets):
            raise QasmParseError(
                f"measure width mismatch: {len(sources)} qubits -> "
                f"{len(targets)} bits",
                name.line,
            )
        for qubit, clbit in zip(sources, targets):
            self.circuit.measure(qubit, clbit)

    def _parse_if(self) -> None:
        self._expect("PUNCT", "(")
        name = self._expect("ID")
        register = self.cregs.get(name.text)
        if register is None:
            raise QasmParseError(f"unknown classical register {name.text!r}", name.line)
        self._expect("EQEQ")
        value = self._expect("NUMBER")
        self._expect("PUNCT", ")")
        head = self._peek()
        assert head is not None
        if head.text == "measure":
            raise QasmParseError("conditional measure is not supported", head.line)
        if head.text == "reset":
            self._next()
            targets = self._qubit_operand()
            self._expect("PUNCT", ";")
            from repro.circuit.operations import ConditionalOperation

            for qubit in targets:
                self.circuit.append(
                    ConditionalOperation(register, int(value.text), Reset(qubit))
                )
            return
        self._parse_gate_application(conditional=(register, int(value.text)))


def _broadcast(operands: List[List[Qubit]]) -> List[Tuple[Qubit, ...]]:
    """OpenQASM register broadcasting: ``cx q, r`` on size-n registers means
    n pairwise applications; scalars broadcast against registers."""
    width = max(len(o) for o in operands)
    for operand in operands:
        if len(operand) not in (1, width):
            raise QasmParseError(
                f"cannot broadcast operands of sizes {[len(o) for o in operands]}"
            )
    rows: List[Tuple[Qubit, ...]] = []
    for i in range(width):
        rows.append(tuple(o[i] if len(o) == width else o[0] for o in operands))
    return rows


def parse_qasm2(source: str) -> Circuit:
    """Parse OpenQASM 2.0 source into a :class:`Circuit`."""
    return _Parser2(source).parse()
