"""Parameter-expression evaluation shared by both OpenQASM parsers.

OpenQASM angle expressions: ``pi``, literals, identifiers (bound gate
parameters), ``+ - * / ^``, unary minus, parentheses, and the standard
functions.  Evaluated eagerly to floats (the circuit IR stores concrete
angles).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
}


class ExprError(ValueError):
    pass


class ExprParser:
    """Pratt-style parser over a token list (tokens from the QASM lexer)."""

    def __init__(self, tokens: List[str], bindings: Optional[Dict[str, float]] = None):
        self.tokens = tokens
        self.pos = 0
        self.bindings = bindings or {}

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        tok = self._peek()
        if tok is None:
            raise ExprError("unexpected end of expression")
        self.pos += 1
        return tok

    def parse(self) -> float:
        value = self._additive()
        if self._peek() is not None:
            raise ExprError(f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return value

    def _additive(self) -> float:
        value = self._multiplicative()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._multiplicative()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _multiplicative(self) -> float:
        value = self._power()
        while self._peek() in ("*", "/"):
            op = self._next()
            rhs = self._power()
            if op == "/":
                if rhs == 0:
                    raise ExprError("division by zero in expression")
                value = value / rhs
            else:
                value = value * rhs
        return value

    def _power(self) -> float:
        value = self._unary()
        if self._peek() == "^":
            self._next()
            return value ** self._power()  # right associative
        return value

    def _unary(self) -> float:
        tok = self._peek()
        if tok == "-":
            self._next()
            return -self._unary()
        if tok == "+":
            self._next()
            return self._unary()
        return self._primary()

    def _primary(self) -> float:
        tok = self._next()
        if tok == "(":
            value = self._additive()
            if self._next() != ")":
                raise ExprError("missing ')'")
            return value
        if tok == "pi":
            return math.pi
        if tok in _FUNCTIONS:
            if self._next() != "(":
                raise ExprError(f"expected '(' after {tok}")
            arg = self._additive()
            if self._next() != ")":
                raise ExprError("missing ')'")
            return _FUNCTIONS[tok](arg)
        if tok in self.bindings:
            return self.bindings[tok]
        try:
            return float(tok)
        except ValueError:
            raise ExprError(f"unknown symbol {tok!r} in expression") from None


def evaluate_expression(
    tokens: List[str], bindings: Optional[Dict[str, float]] = None
) -> float:
    return ExprParser(tokens, bindings).parse()
