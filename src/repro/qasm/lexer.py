"""Tokenizer shared by the OpenQASM 2 and 3 parsers."""

from __future__ import annotations

import re
from typing import List, NamedTuple


class QasmToken(NamedTuple):
    kind: str  # ID NUMBER STRING PUNCT ARROW EQEQ
    text: str
    line: int


class QasmLexError(ValueError):
    pass


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"[^"\n]*")
  | (?P<arrow>->)
  | (?P<eqeq>==)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}()\[\];,+\-*/^=:<>])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> List[QasmToken]:
    tokens: List[QasmToken] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise QasmLexError(
                f"line {line}: unexpected character {source[pos]!r}"
            )
        text = match.group(0)
        kind = match.lastgroup
        if kind == "comment" or kind == "ws":
            line += text.count("\n")
            pos = match.end()
            continue
        mapped = {
            "string": "STRING",
            "arrow": "ARROW",
            "eqeq": "EQEQ",
            "number": "NUMBER",
            "id": "ID",
            "punct": "PUNCT",
        }[kind]
        if mapped == "STRING":
            text = text[1:-1]
        tokens.append(QasmToken(mapped, text, line))
        pos = match.end()
    return tokens
