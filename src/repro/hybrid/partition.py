"""Feedback-region extraction and host/controller partitioning.

A *feedback region* is the classical computation on a dependence path from
a measurement readout (``read_result``-style) to a later quantum
operation.  That code cannot run on the host after the fact -- the qubits
are waiting -- so it belongs on the fast classical co-processor, and its
execution time counts against the coherence budget (Sec. IV-B).

Dependences tracked:

* data: SSA operand edges,
* control: an instruction in a block depends on every conditional branch
  whose outcome decides whether the block executes (computed via
  control-dependence from branch successors; approximated as "all blocks
  reachable from one successor but not the other").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.hybrid.classify import InstructionClass, classify_instruction
from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import CondBranchInst, Instruction, SwitchInst


@dataclass
class FeedbackRegion:
    """One readout and everything between it and its dependent quantum ops."""

    readout: Instruction
    classical_instructions: List[Instruction]
    control_instructions: List[Instruction]
    dependent_quantum: List[Instruction]

    @property
    def classical_op_count(self) -> int:
        return len(self.classical_instructions)

    @property
    def control_op_count(self) -> int:
        return len(self.control_instructions)

    def __repr__(self) -> str:
        return (
            f"<FeedbackRegion {self.classical_op_count} classical + "
            f"{self.control_op_count} control ops -> "
            f"{len(self.dependent_quantum)} quantum ops>"
        )


@dataclass
class Partition:
    """Host / controller split of one function."""

    function: Function
    regions: List[FeedbackRegion]
    controller_instructions: Set[Instruction] = field(default_factory=set)
    host_instructions: Set[Instruction] = field(default_factory=set)
    quantum_instructions: Set[Instruction] = field(default_factory=set)

    @property
    def controller_count(self) -> int:
        return len(self.controller_instructions)

    @property
    def host_count(self) -> int:
        return len(self.host_instructions)


def _reachable_from(block: BasicBlock) -> Set[BasicBlock]:
    seen: Set[BasicBlock] = set()
    stack = [block]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(current.successors())
    return seen


def _control_dependents(fn: Function) -> Dict[Instruction, Set[BasicBlock]]:
    """For each conditional terminator, the blocks whose execution depends
    on its outcome (reachable from one successor but not all)."""
    out: Dict[Instruction, Set[BasicBlock]] = {}
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, (CondBranchInst, SwitchInst)):
            continue
        succ_reach = [_reachable_from(s) for s in term.successors()]
        if not succ_reach:
            continue
        common = set.intersection(*succ_reach)
        dependent: Set[BasicBlock] = set()
        for reach in succ_reach:
            dependent |= reach - common
        out[term] = dependent
    return out


def partition_function(fn: Function) -> Partition:
    """Extract feedback regions and assign every instruction a side."""
    classes = {inst: classify_instruction(inst) for inst in fn.instructions()}
    control_deps = _control_dependents(fn)
    # Reverse map: block -> conditional terminators it depends on.
    block_ctrl: Dict[BasicBlock, List[Instruction]] = {}
    for term, blocks in control_deps.items():
        for block in blocks:
            block_ctrl.setdefault(block, []).append(term)

    readouts = [
        inst for inst, cls in classes.items() if cls is InstructionClass.READOUT
    ]

    regions: List[FeedbackRegion] = []
    all_region_members: Set[Instruction] = set()

    for readout in readouts:
        classical: List[Instruction] = []
        control: List[Instruction] = []
        quantum: List[Instruction] = []
        seen: Set[Instruction] = {readout}
        stack: List[Instruction] = [readout]
        while stack:
            inst = stack.pop()
            # forward data edges
            consumers = list(inst.users)
            # control edges: if inst is a conditional terminator, everything
            # in its dependent blocks is downstream.
            if inst in control_deps:
                for block in control_deps[inst]:
                    consumers.extend(block.instructions)
            for consumer in consumers:
                if consumer in seen:
                    continue
                seen.add(consumer)
                cls = classes.get(consumer)
                if cls is None:
                    continue
                if cls in (
                    InstructionClass.QUANTUM_GATE,
                    InstructionClass.MEASUREMENT,
                ):
                    quantum.append(consumer)
                    # quantum ops end the region along this path
                    continue
                if cls is InstructionClass.CLASSICAL:
                    classical.append(consumer)
                    stack.append(consumer)
                elif cls is InstructionClass.CONTROL:
                    control.append(consumer)
                    stack.append(consumer)
                elif cls is InstructionClass.READOUT:
                    stack.append(consumer)
                else:
                    # output recording / structural: host-side, do not extend
                    continue
        if quantum:
            region = FeedbackRegion(readout, classical, control, quantum)
            regions.append(region)
            all_region_members.update(classical)
            all_region_members.update(control)
            all_region_members.add(readout)

    partition = Partition(fn, regions)
    for inst, cls in classes.items():
        if cls in (
            InstructionClass.QUANTUM_GATE,
            InstructionClass.MEASUREMENT,
            InstructionClass.QUANTUM_MGMT,
        ):
            partition.quantum_instructions.add(inst)
        elif cls in (InstructionClass.CLASSICAL, InstructionClass.CONTROL, InstructionClass.READOUT):
            if inst in all_region_members:
                partition.controller_instructions.add(inst)
            else:
                partition.host_instructions.add(inst)
    return partition
