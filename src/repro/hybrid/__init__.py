"""Hybrid classical-quantum partitioning and feasibility (paper, Sec. IV-B).

"The question naturally arises for a hybrid classical-quantum program [...]
how to decide which part of the code should be executed on the classical
hardware and which part on the quantum hardware.  [...] it must be
ensured, that the classical code offloaded to the quantum hardware can be
executed in the required time frame to uphold the coherence of the qubits.
Hence, [...] there will always be programs that describe an infeasible
execution and must be rejected."

This package implements that decision procedure:

* :mod:`~repro.hybrid.classify` tags each instruction quantum / classical
  / feedback.
* :mod:`~repro.hybrid.partition` extracts *feedback regions* -- classical
  computation on the path from a measurement readout to a later quantum
  operation, which therefore must run on the quantum computer's
  co-processor (controller) rather than the host.
* :mod:`~repro.hybrid.latency` models the device: gate/measure times,
  controller instruction timing and capability set, host round-trip.
* :mod:`~repro.hybrid.feasibility` accepts or rejects the program against
  a coherence budget (the HYB benchmark sweeps this crossover).
"""

from repro.hybrid.classify import InstructionClass, classify_instruction
from repro.hybrid.partition import FeedbackRegion, Partition, partition_function
from repro.hybrid.latency import ControllerCapability, DeviceModel
from repro.hybrid.feasibility import (
    FeasibilityReport,
    InfeasibleProgramError,
    RegionTiming,
    check_feasibility,
)

__all__ = [
    "InstructionClass",
    "classify_instruction",
    "FeedbackRegion",
    "Partition",
    "partition_function",
    "ControllerCapability",
    "DeviceModel",
    "FeasibilityReport",
    "InfeasibleProgramError",
    "RegionTiming",
    "check_feasibility",
]
