"""Coherence-budget feasibility checking (paper, Sec. IV-B).

For every feedback region: time the classical work on the controller; if
any instruction exceeds the controller's capability set, the whole region
must round-trip to the host (adding ``host_round_trip``).  The region's
total latency -- measurement readout plus classical work -- must fit the
coherence budget, else the program "describes an infeasible execution and
must be rejected."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hybrid.latency import DeviceModel
from repro.hybrid.partition import FeedbackRegion, Partition, partition_function
from repro.llvmir.function import Function
from repro.llvmir.module import Module


@dataclass
class RegionTiming:
    region: FeedbackRegion
    controller_time: float  # ns of classical work on the controller
    needs_host_round_trip: bool
    total_latency: float  # measurement + classical work (+ round trip)
    feasible: bool

    def describe(self) -> str:
        route = "host round-trip" if self.needs_host_round_trip else "controller"
        status = "OK" if self.feasible else "REJECT"
        return (
            f"[{status}] {self.region.classical_op_count} classical ops via "
            f"{route}: {self.total_latency:.0f} ns"
        )


@dataclass
class FeasibilityReport:
    function_name: str
    device: DeviceModel
    timings: List[RegionTiming]

    @property
    def feasible(self) -> bool:
        return all(t.feasible for t in self.timings)

    @property
    def worst_latency(self) -> float:
        return max((t.total_latency for t in self.timings), default=0.0)

    def describe(self) -> str:
        lines = [
            f"feasibility of @{self.function_name} "
            f"(coherence budget {self.device.coherence_budget:.0f} ns):"
        ]
        for timing in self.timings:
            lines.append("  " + timing.describe())
        lines.append(f"  => {'FEASIBLE' if self.feasible else 'INFEASIBLE'}")
        return "\n".join(lines)


class InfeasibleProgramError(ValueError):
    def __init__(self, report: FeasibilityReport):
        super().__init__(report.describe())
        self.report = report


def time_region(region: FeedbackRegion, device: DeviceModel) -> RegionTiming:
    controller_time = 0.0
    needs_host = False
    for inst in region.classical_instructions:
        op_time = device.classical_op_time(inst)
        if op_time == float("inf"):
            needs_host = True
        else:
            controller_time += op_time
    for _ in region.control_instructions:
        op_time = device.control_op_time()
        if op_time == float("inf"):
            needs_host = True
        else:
            controller_time += op_time

    total = device.measurement_time + controller_time
    if needs_host:
        host_ops = region.classical_op_count + region.control_op_count
        total += device.host_round_trip + host_ops * device.host_op_time
    feasible = total <= device.coherence_budget
    return RegionTiming(region, controller_time, needs_host, total, feasible)


def check_feasibility(
    target: "Module | Function | Partition",
    device: Optional[DeviceModel] = None,
    raise_on_reject: bool = False,
) -> FeasibilityReport:
    """Evaluate every feedback region against the device's coherence budget."""
    device = device or DeviceModel()
    if isinstance(target, Partition):
        partition = target
    elif isinstance(target, Function):
        partition = partition_function(target)
    else:
        entry_points = target.entry_points() or target.defined_functions()
        if len(entry_points) != 1:
            raise ValueError("pass a specific Function for multi-entry modules")
        partition = partition_function(entry_points[0])

    timings = [time_region(r, device) for r in partition.regions]
    report = FeasibilityReport(
        partition.function.name or "?", device, timings
    )
    if raise_on_reject and not report.feasible:
        raise InfeasibleProgramError(report)
    return report
