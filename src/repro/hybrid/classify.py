"""Per-instruction classification for the hybrid partitioner."""

from __future__ import annotations

from enum import Enum

from repro.llvmir.instructions import (
    BranchInst,
    CallInst,
    Instruction,
    ReturnInst,
    UnreachableInst,
)
from repro.qir.catalog import QIS_PREFIX, RT_PREFIX, parse_qis_name


class InstructionClass(Enum):
    QUANTUM_GATE = "quantum-gate"  # unitary QIS call
    MEASUREMENT = "measurement"  # mz / m / reset
    READOUT = "readout"  # read_result / result_equal: classical view of a result
    QUANTUM_MGMT = "quantum-mgmt"  # rt qubit/array management
    OUTPUT = "output"  # rt record_output / message
    CLASSICAL = "classical"  # arithmetic, memory, casts, selects
    CONTROL = "control"  # branches / switches / phis
    STRUCTURAL = "structural"  # ret / unreachable


def classify_instruction(inst: Instruction) -> InstructionClass:
    if isinstance(inst, (ReturnInst, UnreachableInst)):
        return InstructionClass.STRUCTURAL
    if isinstance(inst, BranchInst):
        return InstructionClass.STRUCTURAL  # unconditional: no decision
    if inst.is_terminator or inst.opcode == "phi":
        return InstructionClass.CONTROL
    if isinstance(inst, CallInst):
        name = inst.callee.name or ""
        if name.startswith(QIS_PREFIX):
            entry = parse_qis_name(name)
            if entry is None:
                return InstructionClass.QUANTUM_GATE
            if entry.gate in ("mz", "m", "reset"):
                return InstructionClass.MEASUREMENT
            if entry.gate == "read_result":
                return InstructionClass.READOUT
            return InstructionClass.QUANTUM_GATE
        if name.startswith(RT_PREFIX):
            if "record_output" in name or name.endswith("message"):
                return InstructionClass.OUTPUT
            if name.endswith("result_equal"):
                return InstructionClass.READOUT
            return InstructionClass.QUANTUM_MGMT
        return InstructionClass.CLASSICAL
    return InstructionClass.CLASSICAL
