"""Device timing model for feasibility checking.

The paper's premise (Sec. IV-B): the classical co-processor of a quantum
computer is fast but restricted ("special purpose hardware like FPGAs or
ASICs [...] incapable of executing arbitrary classical code"), while the
host is general but far away.  The model captures exactly those two
facts: a per-instruction controller cost with a *capability set*, and a
host round-trip penalty for anything beyond it.

Defaults are order-of-magnitude values for a superconducting device with
an FPGA controller; all fields are sweepable (the HYB benchmark does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto

from repro.llvmir.instructions import BinaryInst, CastInst, FCmpInst, Instruction


class ControllerCapability(Flag):
    """What the co-processor can execute natively."""

    NONE = 0
    INT_ARITHMETIC = auto()
    BRANCHING = auto()
    FLOAT_ARITHMETIC = auto()  # rare on real control FPGAs

    @classmethod
    def typical_fpga(cls) -> "ControllerCapability":
        return cls.INT_ARITHMETIC | cls.BRANCHING


@dataclass(frozen=True)
class DeviceModel:
    """Timing parameters, all in nanoseconds."""

    gate_time_1q: float = 20.0
    gate_time_2q: float = 60.0
    measurement_time: float = 300.0
    reset_time: float = 200.0
    # controller (FPGA) per classical instruction
    controller_int_op_time: float = 10.0
    controller_branch_time: float = 15.0
    controller_float_op_time: float = 100.0  # when supported at all
    capabilities: ControllerCapability = field(
        default_factory=ControllerCapability.typical_fpga
    )
    # host offload
    host_round_trip: float = 100_000.0  # 100 us network + OS
    host_op_time: float = 1.0
    # coherence budget: how long a qubit can idle mid-feedback
    coherence_budget: float = 5_000.0  # ~T2 margin available for feedback

    def classical_op_time(self, inst: Instruction) -> float:
        """Controller execution time for one classical instruction, or
        ``float('inf')`` when the controller cannot execute it at all."""
        if _needs_float(inst):
            if ControllerCapability.FLOAT_ARITHMETIC in self.capabilities:
                return self.controller_float_op_time
            return float("inf")
        if ControllerCapability.INT_ARITHMETIC not in self.capabilities:
            return float("inf")
        return self.controller_int_op_time

    def control_op_time(self) -> float:
        if ControllerCapability.BRANCHING not in self.capabilities:
            return float("inf")
        return self.controller_branch_time


def _needs_float(inst: Instruction) -> bool:
    if isinstance(inst, FCmpInst):
        return True
    if isinstance(inst, BinaryInst) and inst.opcode.startswith("f"):
        return True
    if isinstance(inst, CastInst) and inst.opcode in (
        "sitofp",
        "uitofp",
        "fptosi",
        "fptoui",
    ):
        return True
    return inst.type.is_float


# Preset devices for examples/benchmarks.
SUPERCONDUCTING_FPGA = DeviceModel()

TRAPPED_ION = DeviceModel(
    gate_time_1q=10_000.0,
    gate_time_2q=200_000.0,
    measurement_time=400_000.0,
    reset_time=50_000.0,
    coherence_budget=50_000_000.0,  # seconds-scale T2: feedback is easy
)

NEUTRAL_ATOM = DeviceModel(
    gate_time_1q=500.0,
    gate_time_2q=400.0,
    measurement_time=10_000.0,
    reset_time=10_000.0,
    coherence_budget=1_000_000.0,
)
