"""An end-to-end compilation driver over the whole toolchain.

This is the "software stack" of the paper's introduction assembled into
one pipeline: accept a program in any supported format, optimise it,
map it onto a hardware topology, lower it to profile-conformant QIR, and
(optionally) check hybrid feasibility -- every stage being one of the
subsystems this package reproduces.

    source (QASM2 / QASM3 / QIR text / Circuit)
      -> frontend                 (repro.qasm / repro.frontend)
      -> circuit-level peephole   (repro.circuit.optimize)
      -> routing to the device    (repro.circuit.routing)
      -> QIR emission             (repro.frontend.exporter)
      -> QIR-level passes         (repro.passes.quantum)
      -> profile validation       (repro.qir.validate)
      -> feasibility check        (repro.hybrid)               [optional]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.circuit.circuit import Circuit
from repro.circuit.optimize import optimize_circuit, optimize_circuit_commuting
from repro.circuit.routing import CouplingMap, route_circuit, verify_routing
from repro.frontend.exporter import export_circuit
from repro.frontend.importer import import_circuit
from repro.hybrid.feasibility import FeasibilityReport, check_feasibility
from repro.hybrid.latency import DeviceModel
from repro.llvmir.module import Module
from repro.llvmir.parser import parse_assembly
from repro.llvmir.printer import print_module
from repro.llvmir.verifier import verify_module
from repro.passes.quantum.cancellation import (
    GateCancellationPass,
    RotationMergingPass,
)
from repro.qasm.parser2 import parse_qasm2
from repro.qasm.parser3 import parse_qasm3
from repro.qir.profiles import Profile
from repro.qir.validate import ProfileViolation, validate_profile


class CompilationError(ValueError):
    pass


@dataclass
class Target:
    """What we are compiling *for*."""

    coupling: Optional[CouplingMap] = None  # None = all-to-all
    profile: Optional[Profile] = None  # None = auto (base/adaptive)
    addressing: str = "static"
    device: Optional[DeviceModel] = None  # feasibility model, if any


@dataclass
class CompilationResult:
    module: Module
    circuit: Circuit  # the routed, optimised circuit
    qir: str
    violations: List[ProfileViolation] = field(default_factory=list)
    feasibility: Optional[FeasibilityReport] = None
    swaps_inserted: int = 0
    gates_removed: int = 0
    stage_log: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        infeasible = self.feasibility is not None and not self.feasibility.feasible
        return not self.violations and not infeasible


SourceLike = Union[str, Circuit, Module]


def _to_circuit(source: SourceLike, log: List[str]) -> Circuit:
    if isinstance(source, Circuit):
        log.append("frontend: circuit input")
        return source
    if isinstance(source, Module):
        log.append("frontend: QIR module input")
        return import_circuit(source)
    stripped = source.lstrip()
    if stripped.startswith("OPENQASM 3"):
        log.append("frontend: OpenQASM 3 (subset)")
        return parse_qasm3(source)
    if stripped.startswith("OPENQASM"):
        log.append("frontend: OpenQASM 2")
        return parse_qasm2(source)
    log.append("frontend: textual QIR")
    return import_circuit(parse_assembly(source))


def compile_program(
    source: SourceLike,
    target: Optional[Target] = None,
    optimize: "bool | str" = True,
    run_quantum_passes: bool = True,
) -> CompilationResult:
    """Compile any supported source down to validated QIR for a target.

    ``optimize``: ``True`` runs the adjacency peephole, ``"commuting"`` the
    stronger commutation-aware one, ``False`` skips circuit optimisation.

    Raises :class:`CompilationError` on structural failures (unparseable
    input, unroutable gates); profile violations and infeasibility are
    *reported* in the result rather than raised, so callers can decide.
    """
    target = target or Target()
    log: List[str] = []

    try:
        circuit = _to_circuit(source, log)
    except ValueError as error:
        raise CompilationError(f"frontend failed: {error}") from error

    gates_before = len(circuit)
    if optimize:
        optimizer = (
            optimize_circuit_commuting if optimize == "commuting" else optimize_circuit
        )
        circuit = optimizer(circuit)
        log.append(
            f"peephole: {gates_before} -> {len(circuit)} operations"
        )
    gates_removed = gates_before - len(circuit)

    swaps = 0
    if target.coupling is not None:
        try:
            routing = route_circuit(circuit, target.coupling)
        except ValueError as error:
            raise CompilationError(f"routing failed: {error}") from error
        verify_routing(routing, target.coupling)
        circuit = routing.circuit
        swaps = routing.swaps_inserted
        log.append(
            f"routing: {swaps} SWAPs onto {target.coupling!r}"
        )

    try:
        sm = export_circuit(
            circuit, addressing=target.addressing, profile=target.profile
        )
    except ValueError as error:
        raise CompilationError(f"QIR emission failed: {error}") from error
    module = sm.finished_module()

    if run_quantum_passes:
        changed = GateCancellationPass().run_on_module(module)
        changed |= RotationMergingPass().run_on_module(module)
        log.append(f"QIR peephole: {'changed' if changed else 'no change'}")

    verify_module(module)

    # Dynamic addressing implies runtime qubit management, which no
    # restricted profile admits -- default to full QIR there.
    if target.profile is not None:
        profile = target.profile
    elif target.addressing == "dynamic":
        from repro.qir.profiles import FullProfile

        profile = FullProfile
    else:
        profile = sm.profile
    violations = validate_profile(module, profile)
    log.append(
        f"profile {profile.name}: "
        + ("conformant" if not violations else f"{len(violations)} violations")
    )

    feasibility: Optional[FeasibilityReport] = None
    if target.device is not None:
        feasibility = check_feasibility(module, target.device)
        log.append(
            "feasibility: "
            + ("ok" if feasibility.feasible else "REJECTED")
        )

    return CompilationResult(
        module=module,
        circuit=circuit,
        qir=print_module(module),
        violations=violations,
        feasibility=feasibility,
        swaps_inserted=swaps,
        gates_removed=gates_removed,
        stage_log=log,
    )
