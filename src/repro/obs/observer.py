"""The Observer facade and its no-op default.

Instrumented layers (parser, pass manager, runtime, resilience) accept an
``observer`` and guard every measurement behind ``observer.enabled`` -- a
plain attribute load -- so the default :data:`NULL_OBSERVER` costs nothing
on the hot path (guarded by ``benchmarks/bench_obs.py``).  An enabled
:class:`Observer` bundles a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` behind convenience methods.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.runctx import RunContext
from repro.obs.tracer import Span, Tracer

Number = Union[int, float]


class Observer:
    """Enabled observer: spans go to ``tracer``, metrics to ``metrics``."""

    enabled: bool = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.run_context: Optional[RunContext] = None
        # Out-of-order span exits clamp tracer depth; surface each one as
        # a counter so misuse shows up in metrics, not just in a corrupt
        # trace.
        self.tracer.on_depth_underflow = (
            lambda name: self.metrics.counter(
                "tracer.depth_underflow", span=name
            ).inc()
        )

    # -- run identity ---------------------------------------------------------
    def set_run_context(self, context: Optional[RunContext]) -> None:
        """Bind (or clear) the current run's identity.

        While bound, every span the tracer records carries ``run_id`` in
        its args, and the registry holds a ``run.info`` gauge (value 1,
        identity in the labels -- the Prometheus ``*_info`` idiom) so a
        scraped snapshot can be joined to a ledger row.
        """
        self.run_context = context
        self.tracer.run_id = context.run_id if context is not None else None
        if context is not None:
            self.metrics.gauge("run.info", **context.labels()).set(1)

    # -- tracing --------------------------------------------------------------
    def span(self, name: str, **tags: object) -> Span:
        return self.tracer.span(name, **tags)

    def instant(self, name: str, **tags: object) -> None:
        self.tracer.instant(name, **tags)

    # -- metrics --------------------------------------------------------------
    def inc(self, name: str, amount: Number = 1, **labels: object) -> None:
        self.metrics.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: Number, **labels: object) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> None:
        self.metrics.histogram(name, bounds, **labels).observe(value)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.metrics.snapshot()

    def __repr__(self) -> str:
        return f"<Observer spans={len(self.tracer)} metrics={len(self.metrics)}>"


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def tag(self, key: str, value: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullObserver(Observer):
    """Disabled observer: every method is a no-op, ``enabled`` is False.

    Hot paths should prefer ``if observer.enabled:`` over calling these
    no-ops, but calling them is still safe (and cheap).
    """

    enabled = False

    def __init__(self) -> None:  # no tracer/metrics allocation
        self.tracer = None  # type: ignore[assignment]
        self.metrics = None  # type: ignore[assignment]
        self.run_context = None

    def set_run_context(self, context: Optional[RunContext]) -> None:
        return None

    def span(self, name: str, **tags: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, **tags: object) -> None:
        return None

    def inc(self, name: str, amount: Number = 1, **labels: object) -> None:
        return None

    def set_gauge(self, name: str, value: Number, **labels: object) -> None:
        return None

    def observe(self, name, value, bounds=DEFAULT_TIME_BUCKETS, **labels) -> None:
        return None

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def __repr__(self) -> str:
        return "<NullObserver>"


NULL_OBSERVER = NullObserver()


def as_observer(observer: Optional[Observer]) -> Observer:
    """Normalise an optional observer argument (None -> the shared no-op)."""
    return NULL_OBSERVER if observer is None else observer
