"""Regression gating: diff two :class:`~repro.obs.snapshot.BenchSnapshot`\\ s.

The differ is direction-aware: a record whose ``direction`` is ``lower``
(seconds) regresses when the current value exceeds baseline by more than
the relative threshold; a ``higher`` record (throughput, speedup ratio)
regresses when it falls short by more than the threshold.  Thresholds are
configurable globally and per record name, so a noisy record can carry a
looser gate without loosening the whole suite.

The product is a :class:`RegressionReport` whose ``exit_code`` follows
the ``qir-bench`` contract: 0 when every shared record passes, 4
(:data:`EXIT_REGRESSION`) when any record regressed.  Records present on
only one side are reported (``new`` / ``missing``) but never fail the
gate -- a growing suite must not brick its own CI on the first run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional

from repro.obs.snapshot import BenchSnapshot

EXIT_OK = 0
EXIT_REGRESSION = 4

DEFAULT_THRESHOLD = 0.25

# Delta statuses, in severity order for the rendered table.
STATUS_REGRESSION = "regression"
STATUS_PASS = "pass"
STATUS_IMPROVED = "improved"
STATUS_NEW = "new"
STATUS_MISSING = "missing"
_STATUS_ORDER = (STATUS_REGRESSION, STATUS_MISSING, STATUS_NEW, STATUS_PASS, STATUS_IMPROVED)


@dataclass(frozen=True)
class RecordDelta:
    """One record's baseline-vs-current comparison."""

    name: str
    unit: str
    direction: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    change: Optional[float] = None  # signed relative change vs baseline
    threshold: Optional[float] = None

    @property
    def regressed(self) -> bool:
        return self.status == STATUS_REGRESSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "unit": self.unit,
            "direction": self.direction,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "change": self.change,
            "threshold": self.threshold,
        }


@dataclass
class RegressionReport:
    """Outcome of one snapshot diff (render as table or JSON)."""

    deltas: List[RecordDelta] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    environment_changed: bool = False
    environment_diff: Dict[str, object] = field(default_factory=dict)

    @property
    def regressions(self) -> List[RecordDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.passed else EXIT_REGRESSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "exit_code": self.exit_code,
            "threshold": self.threshold,
            "environment_changed": self.environment_changed,
            "environment_diff": self.environment_diff,
            "regressions": len(self.regressions),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def write_json(self, destination: IO[str]) -> None:
        json.dump(self.to_dict(), destination, indent=2, sort_keys=True)
        destination.write("\n")

    def render(self) -> str:
        """Per-record human table (the stderr half of ``qir-bench diff``)."""
        header = ("record", "unit", "baseline", "current", "change", "status")
        rows: List[tuple] = []
        ordered = sorted(
            self.deltas, key=lambda d: (_STATUS_ORDER.index(d.status), d.name)
        )
        for d in ordered:
            rows.append(
                (
                    d.name,
                    d.unit or "-",
                    _fmt(d.baseline),
                    _fmt(d.current),
                    f"{d.change * 100:+.1f}%" if d.change is not None else "-",
                    d.status,
                )
            )
        widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
                  for i in range(len(header))]
        lines = [f"== qir-bench diff (threshold {self.threshold * 100:.0f}%) =="]
        if self.environment_changed:
            # One line per drifted fingerprint key: a "regression" against
            # a different python/numpy/platform is apples to oranges, and
            # the report itself must say which apple changed.
            lines.append(
                "  WARNING environment changed -- timings compare "
                "different environments:"
            )
            for key, value in sorted(self.environment_diff.items()):
                baseline = value.get("baseline") if isinstance(value, dict) else None
                current = value.get("current") if isinstance(value, dict) else None
                lines.append(
                    f"    {key}: {_fmt_env(baseline)} -> {_fmt_env(current)}"
                )
        lines.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        for row in rows:
            lines.append("  " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        verdict = "PASS" if self.passed else f"FAIL ({len(self.regressions)} regression(s))"
        lines.append(f"  -> {verdict}")
        return "\n".join(lines)


def _fmt_env(value: object) -> str:
    """Fingerprint values for the delta block; absent keys show as '(absent)'."""
    return "(absent)" if value is None else str(value)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}"
    return f"{value:.6f}"


def diff_snapshots(
    baseline: BenchSnapshot,
    current: BenchSnapshot,
    threshold: float = DEFAULT_THRESHOLD,
    per_record_thresholds: Optional[Dict[str, float]] = None,
) -> RegressionReport:
    """Compare ``current`` against ``baseline`` with relative thresholds.

    ``per_record_thresholds`` maps record names to overriding thresholds;
    every other shared record uses the global ``threshold``.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    overrides = per_record_thresholds or {}
    base_records = baseline.by_name()
    cur_records = current.by_name()
    deltas: List[RecordDelta] = []

    for name in sorted(set(base_records) | set(cur_records)):
        base = base_records.get(name)
        cur = cur_records.get(name)
        if base is None:
            assert cur is not None
            deltas.append(
                RecordDelta(name, cur.unit, cur.direction, STATUS_NEW, current=cur.value)
            )
            continue
        if cur is None:
            deltas.append(
                RecordDelta(
                    name, base.unit, base.direction, STATUS_MISSING, baseline=base.value
                )
            )
            continue
        limit = overrides.get(name, threshold)
        change = _relative_change(base.value, cur.value)
        status = _judge(base.direction, change, limit)
        deltas.append(
            RecordDelta(
                name,
                cur.unit,
                base.direction,
                status,
                baseline=base.value,
                current=cur.value,
                change=change,
                threshold=limit,
            )
        )

    env_diff = _environment_diff(baseline.environment, current.environment)
    return RegressionReport(
        deltas=deltas,
        threshold=threshold,
        environment_changed=bool(env_diff),
        environment_diff=env_diff,
    )


def _relative_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0:
        return None if current == 0 else float("inf") if current > 0 else float("-inf")
    return (current - baseline) / abs(baseline)


def _judge(direction: str, change: Optional[float], limit: float) -> str:
    if change is None:
        return STATUS_PASS
    if direction == "lower":
        if change > limit:
            return STATUS_REGRESSION
        return STATUS_IMPROVED if change < -limit else STATUS_PASS
    # direction == "higher"
    if change < -limit:
        return STATUS_REGRESSION
    return STATUS_IMPROVED if change > limit else STATUS_PASS


def _environment_diff(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Dict[str, object]:
    diff: Dict[str, object] = {}
    for key in sorted(set(baseline) | set(current)):
        b, c = baseline.get(key), current.get(key)
        if b != c:
            diff[key] = {"baseline": b, "current": c}
    return diff
