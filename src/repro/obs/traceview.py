"""Trace model: the tracer's output, parsed back into a span tree.

:class:`~repro.obs.tracer.Tracer` writes flat Chrome ``trace_event``
records (JSONL or the bracketed ``{"traceEvents": [...]}`` document);
this module is the inverse -- :class:`Trace` loads either form and
reconstructs the hierarchy the spans had when they were recorded, so the
analytics layer (:mod:`repro.obs.analytics`) can reason about *structure*
(who contains whom, which worker ran when) instead of raw rows.

Reconstruction rules:

* Events are grouped into **tracks** by ``(pid, tid)``.  Track ``(0, 0)``
  is the main thread; ``process.worker`` spans folded back from worker
  processes ride ``tid >= 1`` (see ``ProcessScheduler._merge``).
* Within a track, nesting is recovered from interval containment (the
  tracer records spans at *exit*, so children appear before parents in
  file order; sorting by ``(ts, -dur)`` restores entry order).
* Spans on non-main tracks are then attached to the deepest main-track
  span that temporally contains them as ``parallel`` children -- a worker
  span "belongs to" the supervisor interval it ran under, but runs on its
  own clock track, so it never contributes to the container's self time.

Validation is collected, not raised: a loadable-but-odd trace (negative
durations, partial overlaps from threaded tracer misuse, spans carrying
two different ``run_id`` tags) produces :class:`ValidationIssue` records
on ``trace.issues`` and the best tree the evidence supports.  Only
*unreadable* input (not JSON, no events) raises :class:`TraceError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

#: Containment slack in microseconds: ``ts`` and ``dur`` are rounded to
#: 3 decimals (nanosecond precision) on write, so a child's rounded end
#: can exceed its parent's rounded end by up to 0.001 us twice over.
CONTAINMENT_EPSILON_US = 0.01

#: The span name ProcessScheduler gives folded worker intervals.
WORKER_SPAN = "process.worker"


class TraceError(Exception):
    """The input is not a trace: unreadable, not JSON, or no events."""


@dataclass
class ValidationIssue:
    """One oddity found while reconstructing the tree (never fatal)."""

    kind: str  # negative_time | overlap | mixed_run_ids | orphan_track
    message: str

    def render(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class TraceSpan:
    """One complete (``ph: "X"``) event, re-attached to its tree."""

    name: str
    start_us: float
    duration_us: float
    pid: int = 0
    tid: int = 0
    category: str = "repro"
    args: Dict[str, object] = field(default_factory=dict)
    #: Same-track children, in start order; their durations subtract from
    #: this span's self time.
    children: List["TraceSpan"] = field(default_factory=list)
    #: Cross-track spans temporally contained here (worker intervals);
    #: they overlap each other and never reduce self time.
    parallel: List["TraceSpan"] = field(default_factory=list)
    parent: Optional["TraceSpan"] = field(default=None, repr=False)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    @property
    def run_id(self) -> Optional[str]:
        value = self.args.get("run_id")
        return value if isinstance(value, str) else None

    @property
    def self_us(self) -> float:
        """Time spent in this span but in no same-track child."""
        return max(0.0, self.duration_us - sum(c.duration_us for c in self.children))

    @property
    def is_worker(self) -> bool:
        return self.name == WORKER_SPAN

    @property
    def worker_label(self) -> str:
        """Disambiguated frame name for paths and flamegraph stacks."""
        if self.is_worker and "worker" in self.args:
            return f"{self.name}#{self.args['worker']}"
        return self.name

    def contains(self, other: "TraceSpan") -> bool:
        return (
            other.start_us >= self.start_us - CONTAINMENT_EPSILON_US
            and other.end_us <= self.end_us + CONTAINMENT_EPSILON_US
        )

    def walk(self) -> Iterable["TraceSpan"]:
        """This span, then every (tree + parallel) descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()
        for worker in self.parallel:
            yield from worker.walk()


def _parse_events(text: str, issues: List["ValidationIssue"]) -> List[dict]:
    stripped = text.strip()
    if not stripped:
        raise TraceError("empty trace input")
    try:
        document = json.loads(stripped)
    except ValueError:
        # Not one JSON value: treat as JSONL, one event object per line.
        # Non-JSON lines are skipped (with an issue), not fatal: piping
        # ``qir-run ... --trace - | qir-trace summary -`` interleaves the
        # program's own stdout with the trace lines.
        events = []
        skipped = 0
        for line in stripped.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                skipped += 1
        if skipped and not events:
            raise TraceError(f"no JSON lines among {skipped} line(s)")
        if skipped:
            issues.append(
                ValidationIssue(
                    "malformed_event",
                    f"skipped {skipped} non-JSON line(s) "
                    "(program output interleaved with the trace?)",
                )
            )
        return events
    if isinstance(document, dict):
        if "traceEvents" in document:
            events = document["traceEvents"]
            if not isinstance(events, list):
                raise TraceError("traceEvents is not a list")
            return list(events)
        if "ph" in document:  # a single bare event
            return [document]
        raise TraceError("JSON object has no traceEvents")
    if isinstance(document, list):
        return document
    raise TraceError(f"unexpected trace JSON of type {type(document).__name__}")


class Trace:
    """A loaded trace: the span forest plus everything found on the way."""

    def __init__(
        self,
        spans: List[TraceSpan],
        roots: List[TraceSpan],
        instants: List[dict],
        issues: List[ValidationIssue],
    ):
        self.spans = spans
        self.roots = roots
        self.instants = instants
        self.issues = issues

    # -- construction ---------------------------------------------------------
    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "Trace":
        """Load a trace file (path or stream), JSONL or Chrome-document."""
        if isinstance(source, str):
            try:
                with open(source, "r", encoding="utf-8") as handle:
                    return cls.load(handle)
            except OSError as error:
                raise TraceError(f"cannot read {source}: {error}") from error
        return cls.from_text(source.read())

    @classmethod
    def from_text(cls, text: str) -> "Trace":
        issues: List[ValidationIssue] = []
        return cls.from_events(_parse_events(text, issues), issues=issues)

    @classmethod
    def from_events(
        cls,
        events: Iterable[dict],
        issues: Optional[List[ValidationIssue]] = None,
    ) -> "Trace":
        issues = issues if issues is not None else []
        instants: List[dict] = []
        spans: List[TraceSpan] = []
        for event in events:
            if not isinstance(event, dict) or "ph" not in event:
                issues.append(
                    ValidationIssue("malformed_event", f"skipped {event!r:.80}")
                )
                continue
            phase = event["ph"]
            if phase == "i":
                instants.append(event)
                continue
            if phase != "X":  # metadata and async phases are not ours
                continue
            span = TraceSpan(
                name=str(event.get("name", "?")),
                start_us=float(event.get("ts", 0.0)),
                duration_us=float(event.get("dur", 0.0)),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                category=str(event.get("cat", "repro")),
                args=dict(event.get("args") or {}),
            )
            if span.start_us < 0 or span.duration_us < 0:
                issues.append(
                    ValidationIssue(
                        "negative_time",
                        f"span {span.name!r} has ts={span.start_us} "
                        f"dur={span.duration_us} (worker clock not rebased?)",
                    )
                )
            spans.append(span)
        if not spans and not instants:
            raise TraceError("no trace events found")
        roots = _build_forest(spans, issues)
        _check_run_ids(spans, issues)
        return cls(spans=spans, roots=roots, instants=instants, issues=issues)

    # -- queries --------------------------------------------------------------
    @property
    def start_us(self) -> float:
        return min((s.start_us for s in self.spans), default=0.0)

    @property
    def end_us(self) -> float:
        return max((s.end_us for s in self.spans), default=0.0)

    @property
    def duration_us(self) -> float:
        """Wall-clock extent of the trace (first start to last end)."""
        return max(0.0, self.end_us - self.start_us) if self.spans else 0.0

    def run_ids(self) -> List[str]:
        """Distinct ``run_id`` tags, sorted (normally zero or one)."""
        return sorted({s.run_id for s in self.spans if s.run_id})

    def find(self, name: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.name == name]

    @property
    def worker_spans(self) -> List[TraceSpan]:
        return self.find(WORKER_SPAN)

    def __len__(self) -> int:
        return len(self.spans)


# -- forest reconstruction ----------------------------------------------------


def _build_track(
    spans: List[TraceSpan], issues: List[ValidationIssue]
) -> List[TraceSpan]:
    """Containment-nest one track's spans; returns the track's roots.

    Entry order is ``(ts, -dur)``: at equal timestamps the longer span
    entered first (it is the parent).  A span that starts inside the
    stack top but ends outside it *partially overlaps* -- impossible for
    a single-threaded tracer, so it is flagged and treated as a sibling
    of the nearest span that fully contains it.
    """
    roots: List[TraceSpan] = []
    stack: List[TraceSpan] = []
    for span in sorted(spans, key=lambda s: (s.start_us, -s.duration_us)):
        while stack and span.start_us >= stack[-1].end_us - CONTAINMENT_EPSILON_US:
            stack.pop()
        if stack and not stack[-1].contains(span):
            issues.append(
                ValidationIssue(
                    "overlap",
                    f"span {span.name!r} [{span.start_us:.1f}, "
                    f"{span.end_us:.1f}] partially overlaps "
                    f"{stack[-1].name!r} [{stack[-1].start_us:.1f}, "
                    f"{stack[-1].end_us:.1f}] (threaded tracer misuse?)",
                )
            )
            while stack and not stack[-1].contains(span):
                stack.pop()
        if stack:
            span.parent = stack[-1]
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    return roots


def _deepest_container(
    roots: List[TraceSpan], span: TraceSpan
) -> Optional[TraceSpan]:
    """The deepest main-track span whose interval contains ``span``."""
    best: Optional[TraceSpan] = None
    frontier = list(roots)
    while frontier:
        candidates = [s for s in frontier if s.contains(span)]
        if not candidates:
            break
        # At one tree level intervals are disjoint, so at most one contains.
        best = candidates[0]
        frontier = best.children
    return best


def _build_forest(
    spans: List[TraceSpan], issues: List[ValidationIssue]
) -> List[TraceSpan]:
    tracks: Dict[Tuple[int, int], List[TraceSpan]] = {}
    for span in spans:
        tracks.setdefault((span.pid, span.tid), []).append(span)
    main_roots = _build_track(tracks.pop((0, 0), []), issues)
    roots = list(main_roots)
    for key in sorted(tracks):
        for track_root in _build_track(tracks[key], issues):
            container = _deepest_container(main_roots, track_root)
            if container is not None:
                track_root.parent = container
                container.parallel.append(track_root)
            else:
                if not track_root.is_worker:
                    issues.append(
                        ValidationIssue(
                            "orphan_track",
                            f"span {track_root.name!r} on track {key} is "
                            "contained by no main-track span",
                        )
                    )
                roots.append(track_root)
    roots.sort(key=lambda s: s.start_us)
    return roots


def _check_run_ids(spans: List[TraceSpan], issues: List[ValidationIssue]) -> None:
    ids = {s.run_id for s in spans if s.run_id}
    if len(ids) > 1:
        issues.append(
            ValidationIssue(
                "mixed_run_ids",
                f"{len(ids)} distinct run_id tags in one trace: "
                f"{', '.join(sorted(ids))}",
            )
        )
