"""Human-readable profile table (the ``--profile`` stderr output).

Renders a metrics snapshot into aligned sections that mirror the paper's
examples: parse (Ex. 3), passes (Ex. 4), runtime + intrinsics (Ex. 5),
and the resilience counters from PR 1.  Unrecognised metrics are listed
verbatim at the end so nothing recorded is ever hidden.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import parse_metric_key
from repro.obs.observer import Observer


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.6f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def _table(rows: List[Tuple[str, ...]], header: Tuple[str, ...]) -> List[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append("  " + "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return lines


def _labeled(
    metrics: Dict[str, object], name: str, label: str
) -> Dict[str, object]:
    """Collect ``name{label=X}`` entries keyed by X, removing them."""
    out: Dict[str, object] = {}
    for key in list(metrics):
        base, labels = parse_metric_key(key)
        if base == name and label in labels:
            out[labels[label]] = metrics.pop(key)
    return out


def _section(title: str, lines: Iterable[str]) -> List[str]:
    body = list(lines)
    if not body:
        return []
    return [f"-- {title} --"] + body


def render_profile(observer: Observer, title: str = "qir profile") -> str:
    """Multi-line profile table for an *enabled* observer ('' if empty)."""
    snapshot = observer.snapshot()
    if not snapshot:
        return ""
    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    histograms = dict(snapshot.get("histograms", {}))
    out: List[str] = [f"== {title} =="]

    # -- parse (Ex. 3) --------------------------------------------------------
    parse_lines: List[str] = []
    for key in sorted(k for k in list(counters) if k.startswith("parse.")):
        parse_lines.append(f"  {key[len('parse.'):]:<22}{_fmt(counters.pop(key))}")
    for key in sorted(k for k in list(gauges) if k.startswith("parse.")):
        parse_lines.append(f"  {key[len('parse.'):]:<22}{_fmt(gauges.pop(key))}")
    out += _section("parse", parse_lines)

    # -- specialization (fusion / Clifford prefix / distribution cache) -------
    # Popped *before* the compile & cache section, which sweeps the whole
    # plan.* / cache.* namespaces into one flat listing.
    spec_lines: List[str] = []
    _SPEC_PREFIXES = ("plan.fusion.", "plan.clifford_prefix.", "cache.distribution.")
    for key in sorted(
        k for k in list(counters) if k.startswith(_SPEC_PREFIXES)
    ):
        spec_lines.append(f"  {key:<28}{_fmt(counters.pop(key))}")
    out += _section("specialization", spec_lines)

    # -- compile & cache (plan / QirSession) ----------------------------------
    cache_lines: List[str] = []
    for key in sorted(
        k for k in list(counters) if k.startswith("cache.") or k.startswith("plan.")
    ):
        cache_lines.append(f"  {key:<28}{_fmt(counters.pop(key))}")
    for key in sorted(k for k in list(histograms) if k.startswith("plan.")):
        h = histograms.pop(key)
        cache_lines.append(
            f"  {key:<28}count={h['count']} mean={_fmt(h['mean'])}s"
        )
    out += _section("compile & cache", cache_lines)

    # -- passes (Ex. 4) -------------------------------------------------------
    runs = _labeled(counters, "passes.runs", "pass")
    changed = _labeled(counters, "passes.changed", "pass")
    seconds = _labeled(counters, "passes.seconds", "pass")
    rewrites = _labeled(counters, "passes.instructions_delta_abs", "pass")
    if runs:
        rows = []
        for name in sorted(runs, key=lambda n: -float(seconds.get(n, 0.0))):
            rows.append(
                (
                    name,
                    _fmt(runs[name]),
                    _fmt(changed.get(name, 0)),
                    f"{float(seconds.get(name, 0.0)) * 1e3:.3f}",
                    _fmt(rewrites.get(name, 0)),
                )
            )
        lines = _table(rows, ("pass", "runs", "changed", "time(ms)", "instr-delta"))
        for key in sorted(k for k in list(gauges) if k.startswith("passes.")):
            lines.append(f"  {key[len('passes.'):]:<22}{_fmt(gauges.pop(key))}")
        out += _section("passes", lines)

    # -- budget busts (continuous-performance gate) ---------------------------
    bust_lines: List[str] = []
    for key in sorted(k for k in list(counters) if k.startswith("pass.budget_bust")):
        _, labels = parse_metric_key(key)
        count = counters.pop(key)
        bust_lines.append(
            f"  WARNING pass '{labels.get('pass', '?')}' busted its "
            f"{labels.get('kind', '?')} budget x{_fmt(count)}"
        )
    out += _section("budget busts", bust_lines)

    # -- scheduler (execute phase) --------------------------------------------
    sched_runs = _labeled(counters, "runtime.scheduler.runs", "scheduler")
    sched_falls = _labeled(counters, "runtime.scheduler.batched_fallback", "reason")
    sched_lines: List[str] = []
    for name in sorted(sched_runs):
        sched_lines.append(f"  runs[{name}]{'':<14}{_fmt(sched_runs[name])}")
    for key in sorted(k for k in list(counters) if k.startswith("runtime.scheduler.")):
        short = key[len("runtime.scheduler."):]
        sched_lines.append(f"  {short:<22}{_fmt(counters.pop(key))}")
    for reason in sorted(sched_falls):
        sched_lines.append(
            f"  batched fell back to serial x{_fmt(sched_falls[reason])}: {reason}"
        )
    out += _section("scheduler", sched_lines)

    # -- supervision (process-scheduler worker watchdog) ----------------------
    sup_lines: List[str] = []
    for key in sorted(k for k in list(counters) if k.startswith("scheduler.worker.")):
        short = key[len("scheduler.worker."):]
        sup_lines.append(f"  {short:<22}{_fmt(counters.pop(key))}")
    out += _section("supervision", sup_lines)

    # -- runtime (Ex. 5) ------------------------------------------------------
    runtime_lines: List[str] = []
    for key in sorted(k for k in list(counters) if k.startswith("runtime.shots")):
        runtime_lines.append(f"  {key[len('runtime.'):]:<22}{_fmt(counters.pop(key))}")
    for key in sorted(k for k in list(gauges) if k.startswith("runtime.")):
        runtime_lines.append(f"  {key[len('runtime.'):]:<22}{_fmt(gauges.pop(key))}")
    for key in sorted(k for k in list(histograms) if k.startswith("runtime.")):
        h = histograms.pop(key)
        runtime_lines.append(
            f"  {key[len('runtime.'):]:<22}count={h['count']} "
            f"mean={_fmt(h['mean'])}s max={_fmt(h['max'])}s"
        )
    out += _section("runtime", runtime_lines)

    # -- intrinsics (Ex. 5) ---------------------------------------------------
    calls = _labeled(counters, "runtime.intrinsic_calls", "intrinsic")
    times = _labeled(counters, "runtime.intrinsic_seconds", "intrinsic")
    if calls:
        rows = [
            (
                name,
                _fmt(calls[name]),
                f"{float(times.get(name, 0.0)) * 1e3:.3f}",
            )
            for name in sorted(calls, key=lambda n: -float(times.get(n, 0.0)))
        ]
        out += _section("intrinsics", _table(rows, ("intrinsic", "calls", "time(ms)")))

    # -- resilience -----------------------------------------------------------
    res_lines: List[str] = []
    for key in sorted(k for k in list(counters) if k.startswith("resilience.")):
        res_lines.append(f"  {key[len('resilience.'):]:<22}{_fmt(counters.pop(key))}")
    out += _section("resilience", res_lines)

    # -- anything else --------------------------------------------------------
    other: List[str] = []
    for key in sorted(counters):
        other.append(f"  {key:<40}{_fmt(counters[key])}")
    for key in sorted(gauges):
        other.append(f"  {key:<40}{_fmt(gauges[key])}")
    for key in sorted(histograms):
        h = histograms[key]
        other.append(f"  {key:<40}count={h['count']} mean={_fmt(h['mean'])}")
    out += _section("other", other)

    if len(out) == 1:
        return ""
    return "\n".join(out)
