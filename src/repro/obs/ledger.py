"""RunLedger: an append-only, durable history of every execution run.

Traces, counters, and supervision records all evaporate when the process
exits; the ledger is the part that survives.  One SQLite row per
``run_shots`` invocation -- run identity (:mod:`repro.obs.runctx`), what
ran (plan key, entry, shots, scheduler, backend), how it behaved
(counters snapshot, supervision state, demotion history, error code),
and how fast it was (wall seconds, shots/sec) -- written atomically at
run end from the :class:`~repro.runtime.schedulers.ShotsResult`.

Design constraints, in order:

* **fail-open** -- a ledger that cannot be written must never break the
  run it was recording.  Every write error is swallowed (surfaced as
  ``ledger.write_error`` counters); a *corrupt* database file is
  detected, quarantined (renamed to ``<name>.corrupt-<millis>``), and a
  fresh ledger takes its place so the very next run records again;
* **schema-versioned** like :class:`~repro.obs.snapshot.BenchSnapshot`
  -- the version lives in SQLite's ``user_version`` pragma; readers and
  writers refuse databases from a *newer* schema rather than misreading
  them (that is a skip, not a quarantine: the file is healthy, just not
  ours);
* **env-fingerprinted** like :class:`~repro.runtime.plancache.PlanCache`
  -- every row embeds the host/interpreter fingerprint so cross-machine
  ledgers stay explainable;
* **append-only** -- rows are inserted, never updated; ``gc`` is the one
  sanctioned deletion path (age-based, for bounded disk use).

Opt-in via ``QirSession(ledger_dir=...)``, the ``QIR_LEDGER`` environment
variable, or ``qir-run --ledger DIR``; the ``qir-ledger`` CLI
(:mod:`repro.tools.qir_ledger`) reads it back.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.observer import as_observer

#: Environment variable naming the ledger directory (empty string disables).
LEDGER_ENV = "QIR_LEDGER"

#: Database file name inside the ledger directory.
LEDGER_FILENAME = "ledger.sqlite3"

#: Bumped on any breaking change to the ``runs`` table.
LEDGER_SCHEMA_VERSION = 1

#: Columns callers may sort by (``qir-ledger top --by ...``); a plain
#: allowlist because column names cannot be SQL-parameterised.
SORTABLE_COLUMNS = (
    "wall_seconds",
    "shots_per_second",
    "shots",
    "successful_shots",
    "failed_shots",
    "retried_shots",
    "redispatches",
    "worker_failures",
    "finished_at",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id            TEXT PRIMARY KEY,
    started_at        REAL NOT NULL,
    finished_at       REAL NOT NULL,
    plan_key          TEXT,
    entry             TEXT,
    scheduler         TEXT NOT NULL,
    backend           TEXT NOT NULL,
    jobs              INTEGER NOT NULL,
    shots             INTEGER NOT NULL,
    successful_shots  INTEGER NOT NULL,
    failed_shots      INTEGER NOT NULL,
    retried_shots     INTEGER NOT NULL,
    used_fast_path    INTEGER NOT NULL,
    degraded          INTEGER NOT NULL,
    wall_seconds      REAL NOT NULL,
    shots_per_second  REAL NOT NULL,
    error_code        TEXT NOT NULL DEFAULT '',
    supervision_state TEXT NOT NULL DEFAULT '',
    redispatches      INTEGER NOT NULL DEFAULT 0,
    worker_failures   INTEGER NOT NULL DEFAULT 0,
    demotions         TEXT NOT NULL DEFAULT '[]',
    counters          TEXT NOT NULL DEFAULT '{}',
    environment       TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_runs_finished ON runs (finished_at);
"""


class LedgerError(Exception):
    """Raised by *read* paths (the CLI) on unusable databases.

    The write path never raises it -- writes are fail-open by design.
    """


def ledger_dir_from_env() -> Optional[str]:
    """The ``QIR_LEDGER`` directory, or ``None`` when unset/empty."""
    value = os.environ.get(LEDGER_ENV, "").strip()
    return os.path.expanduser(value) if value else None


def _environment_fingerprint() -> Dict[str, object]:
    # The bench snapshot module owns the fingerprint shape (the same
    # sharing the plan cache does), so "same environment" means one thing.
    from repro.obs.snapshot import environment_fingerprint

    return dict(environment_fingerprint())


@dataclass
class RunRecord:
    """One ledger row, in Python form."""

    run_id: str
    started_at: float
    finished_at: float
    plan_key: Optional[str] = None
    entry: Optional[str] = None
    scheduler: str = "serial"
    backend: str = "statevector"
    jobs: int = 1
    shots: int = 0
    successful_shots: int = 0
    failed_shots: int = 0
    retried_shots: int = 0
    used_fast_path: bool = False
    degraded: bool = False
    wall_seconds: float = 0.0
    shots_per_second: float = 0.0
    error_code: str = ""
    supervision_state: str = ""
    redispatches: int = 0
    worker_failures: int = 0
    demotions: List[str] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    environment: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        context,
        result,
        counters: Optional[Dict[str, float]] = None,
        finished_at: Optional[float] = None,
        error_code: str = "",
    ) -> "RunRecord":
        """Build a row from a RunContext + ShotsResult pair at run end.

        ``started_at`` is reconstructed from the measured wall time so the
        row needs no cooperation from the scheduler's hot path.
        """
        finished = finished_at if finished_at is not None else time.time()
        supervision = getattr(result, "supervision", None)
        return cls(
            run_id=context.run_id,
            started_at=finished - float(result.wall_seconds),
            finished_at=finished,
            plan_key=context.plan_key,
            entry=context.entry,
            scheduler=result.scheduler,
            backend=context.backend,
            jobs=context.jobs,
            shots=result.shots,
            successful_shots=result.successful_shots,
            failed_shots=len(result.failed_shots),
            retried_shots=result.retried_shots,
            used_fast_path=result.used_fast_path,
            degraded=result.degraded,
            wall_seconds=result.wall_seconds,
            shots_per_second=result.shots_per_second,
            error_code=error_code,
            supervision_state=supervision.state if supervision is not None else "",
            redispatches=supervision.redispatches if supervision is not None else 0,
            worker_failures=(
                supervision.worker_failures if supervision is not None else 0
            ),
            demotions=list(result.fallback_history),
            counters=dict(counters or {}),
            environment=_environment_fingerprint(),
        )

    @classmethod
    def from_error(
        cls,
        context,
        error_code: str,
        wall_seconds: float = 0.0,
        counters: Optional[Dict[str, float]] = None,
        finished_at: Optional[float] = None,
    ) -> "RunRecord":
        """A row for a run that raised instead of returning a result."""
        finished = finished_at if finished_at is not None else time.time()
        return cls(
            run_id=context.run_id,
            started_at=finished - wall_seconds,
            finished_at=finished,
            plan_key=context.plan_key,
            entry=context.entry,
            scheduler=context.scheduler,
            backend=context.backend,
            jobs=context.jobs,
            shots=context.shots,
            wall_seconds=wall_seconds,
            error_code=error_code,
            counters=dict(counters or {}),
            environment=_environment_fingerprint(),
        )

    @property
    def flaky(self) -> bool:
        """Did infrastructure wobble under this run (even if it succeeded)?"""
        return bool(
            self.redispatches
            or self.worker_failures
            or self.demotions
            or self.degraded
        )

    def to_row(self) -> tuple:
        return (
            self.run_id,
            self.started_at,
            self.finished_at,
            self.plan_key,
            self.entry,
            self.scheduler,
            self.backend,
            self.jobs,
            self.shots,
            self.successful_shots,
            self.failed_shots,
            self.retried_shots,
            int(self.used_fast_path),
            int(self.degraded),
            self.wall_seconds,
            self.shots_per_second,
            self.error_code,
            self.supervision_state,
            self.redispatches,
            self.worker_failures,
            json.dumps(self.demotions),
            json.dumps(self.counters, sort_keys=True),
            json.dumps(self.environment, sort_keys=True),
        )

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "RunRecord":
        def _json(text: str, default):
            try:
                return json.loads(text)
            except (TypeError, ValueError):
                return default

        return cls(
            run_id=row["run_id"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            plan_key=row["plan_key"],
            entry=row["entry"],
            scheduler=row["scheduler"],
            backend=row["backend"],
            jobs=row["jobs"],
            shots=row["shots"],
            successful_shots=row["successful_shots"],
            failed_shots=row["failed_shots"],
            retried_shots=row["retried_shots"],
            used_fast_path=bool(row["used_fast_path"]),
            degraded=bool(row["degraded"]),
            wall_seconds=row["wall_seconds"],
            shots_per_second=row["shots_per_second"],
            error_code=row["error_code"],
            supervision_state=row["supervision_state"],
            redispatches=row["redispatches"],
            worker_failures=row["worker_failures"],
            demotions=_json(row["demotions"], []),
            counters=_json(row["counters"], {}),
            environment=_json(row["environment"], {}),
        )


_INSERT = (
    "INSERT OR REPLACE INTO runs VALUES "
    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)


class RunLedger:
    """The append-only run store under one directory.

    A connection is opened per operation (SQLite's own locking handles
    cross-process writers), so one ledger directory can be shared by
    every process on the machine -- the exact shape the coming execution
    service needs.
    """

    def __init__(self, directory: str, observer=None):
        if not directory:
            raise ValueError("RunLedger needs a directory")
        self.directory = os.path.expanduser(directory)
        self.observer = as_observer(observer)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, LEDGER_FILENAME)

    # -- connection / schema --------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        os.makedirs(self.directory, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=5.0)
        conn.row_factory = sqlite3.Row
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            conn.executescript(_SCHEMA)
            conn.execute(f"PRAGMA user_version = {LEDGER_SCHEMA_VERSION}")
            conn.commit()
        elif version > LEDGER_SCHEMA_VERSION:
            conn.close()
            raise LedgerError(
                f"ledger schema version {version} is newer than supported "
                f"({LEDGER_SCHEMA_VERSION}); upgrade the toolchain"
            )
        # A sanity probe: a truncated or overwritten file can satisfy the
        # pragma yet have a mangled table -- fail here, inside the guarded
        # section, so the caller's quarantine logic sees it.
        conn.execute("SELECT run_id FROM runs LIMIT 1")
        return conn

    def quarantine(self) -> Optional[str]:
        """Move a corrupt database aside; returns the new path (or None).

        The renamed file keeps its bytes for post-mortems; the next write
        recreates a fresh, healthy ledger in its place.
        """
        stamp = time.time_ns() // 1_000_000
        target = f"{self.path}.corrupt-{stamp}"
        try:
            os.replace(self.path, target)
        except OSError:
            return None
        if self.observer.enabled:
            self.observer.inc("ledger.quarantined")
        return target

    # -- write (fail-open) ----------------------------------------------------
    def record(self, record: RunRecord) -> bool:
        """Insert one row atomically; never raises.

        Corrupt databases are quarantined and the write retried once on
        the fresh file, so a single bad byte costs one run's history at
        most, never the run itself.  Transient failures (a locked
        database, a full disk) are *not* quarantined -- the file is
        healthy, this write just loses.
        """
        ok, corrupt = self._try_insert(record)
        if ok:
            return True
        if corrupt and os.path.exists(self.path) and self.quarantine() is not None:
            ok, _ = self._try_insert(record)
            return ok
        return False

    @staticmethod
    def _looks_corrupt(error: Exception) -> bool:
        # sqlite reports corruption ("file is not a database", "database
        # disk image is malformed") as a bare DatabaseError; contention
        # and misuse arrive as the OperationalError/ProgrammingError
        # subclasses.  A failed integrity probe (missing runs table on a
        # non-empty file) surfaces as OperationalError "no such table",
        # which *is* an overwritten/foreign file -- quarantine that too.
        if isinstance(error, sqlite3.DatabaseError) and not isinstance(
            error, (sqlite3.OperationalError, sqlite3.ProgrammingError)
        ):
            return True
        return "no such table" in str(error)

    def _try_insert(self, record: RunRecord) -> "tuple[bool, bool]":
        """Returns ``(written, corruption_suspected)``."""
        try:
            conn = self._connect()
        except (sqlite3.Error, OSError, LedgerError) as error:
            self._note_write_error()
            return False, self._looks_corrupt(error)
        try:
            with conn:
                conn.execute(_INSERT, record.to_row())
        except (sqlite3.Error, OSError) as error:
            self._note_write_error()
            return False, self._looks_corrupt(error)
        finally:
            conn.close()
        if self.observer.enabled:
            self.observer.inc("ledger.writes")
        return True, False

    def _note_write_error(self) -> None:
        if self.observer.enabled:
            self.observer.inc("ledger.write_error")

    # -- read (the CLI surface; raises LedgerError on unusable files) ---------
    def _read_connect(self) -> sqlite3.Connection:
        if not os.path.exists(self.path):
            raise LedgerError(f"no ledger at {self.path}")
        try:
            return self._connect()
        except sqlite3.Error as error:
            raise LedgerError(f"unreadable ledger {self.path}: {error}") from error

    def list_runs(self, limit: int = 50) -> List[RunRecord]:
        """Most recent runs first."""
        with closing(self._read_connect()) as conn:
            rows = conn.execute(
                "SELECT * FROM runs ORDER BY finished_at DESC, run_id DESC "
                "LIMIT ?",
                (limit,),
            ).fetchall()
        return [RunRecord.from_row(r) for r in rows]

    def get(self, run_id: str) -> Optional[RunRecord]:
        with closing(self._read_connect()) as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return RunRecord.from_row(row) if row is not None else None

    def top(self, by: str = "wall_seconds", limit: int = 10) -> List[RunRecord]:
        """Runs ranked by one numeric column, descending."""
        if by not in SORTABLE_COLUMNS:
            raise LedgerError(
                f"cannot sort by {by!r}; choose from {', '.join(SORTABLE_COLUMNS)}"
            )
        with closing(self._read_connect()) as conn:
            rows = conn.execute(
                f"SELECT * FROM runs ORDER BY {by} DESC, run_id LIMIT ?",
                (limit,),
            ).fetchall()
        return [RunRecord.from_row(r) for r in rows]

    def flaky(self, limit: int = 50) -> List[RunRecord]:
        """Runs where infrastructure wobbled: redispatches, worker loss,
        demotions, or degraded results -- the ``qir-ledger flaky`` view."""
        with closing(self._read_connect()) as conn:
            rows = conn.execute(
                "SELECT * FROM runs WHERE redispatches > 0 "
                "OR worker_failures > 0 OR degraded != 0 OR demotions != '[]' "
                "ORDER BY finished_at DESC LIMIT ?",
                (limit,),
            ).fetchall()
        return [RunRecord.from_row(r) for r in rows]

    def gc(self, keep_days: float) -> int:
        """Delete rows older than ``keep_days``; returns the count."""
        if keep_days < 0:
            raise LedgerError("--keep-days must be >= 0")
        cutoff = time.time() - keep_days * 86400.0
        with closing(self._read_connect()) as conn:
            cursor = conn.execute(
                "DELETE FROM runs WHERE finished_at < ?", (cutoff,)
            )
            conn.commit()
        return cursor.rowcount

    def __len__(self) -> int:
        try:
            with closing(self._read_connect()) as conn:
                return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        except LedgerError:
            return 0
