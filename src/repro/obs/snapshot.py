"""Schema-versioned benchmark snapshots (the ``qir-bench`` data model).

A :class:`BenchSnapshot` is the durable form of one benchmark session:
a list of :class:`BenchRecord` rows -- each a named scalar with an
explicit unit, an improvement direction, and median-of-k spread
(min/median/max over ``k`` repetitions) -- plus an environment
fingerprint so two snapshots can be judged comparable before they are
diffed (see :mod:`repro.obs.regress`).

The JSON layout is versioned (``schema_version``); loaders reject
snapshots from a future schema rather than misreading them.  Timing
collection goes through :func:`measure`, which warms the callable and
reports the median so single-sample jitter (the source of the negative
``overhead_fraction`` values in early ``BENCH_obs.json`` files) cannot
dominate a record.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, IO, List, Optional, Union

SCHEMA_VERSION = 1

#: Improvement directions: "lower" -- smaller is better (seconds),
#: "higher" -- bigger is better (throughput, speedup ratios).
DIRECTIONS = ("lower", "higher")


@dataclass(frozen=True)
class TimingStats:
    """Min/median/max over k repetitions of one measured quantity."""

    samples: tuple

    def __post_init__(self):
        if not self.samples:
            raise ValueError("TimingStats needs at least one sample")

    @property
    def k(self) -> int:
        return len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)


def measure(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
    clock: Callable[[], float] = perf_counter,
) -> TimingStats:
    """Median-of-k wall timing with warmup.

    ``warmup`` un-timed calls run first (imports, allocator, caches), then
    ``repeats`` timed calls.  Use ``stats.median`` as the headline number;
    ``min``/``max`` bound the observed spread.
    """
    if repeats < 1:
        raise ValueError("measure() needs repeats >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = clock()
        fn()
        samples.append(clock() - start)
    return TimingStats(tuple(samples))


def environment_fingerprint() -> Dict[str, object]:
    """Host/interpreter identity attached to every snapshot.

    Diffing snapshots from different fingerprints is allowed (CI runners
    drift) but the report flags it, so a "regression" caused by a machine
    change is explainable from the artifact alone.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy_version,
    }


@dataclass
class BenchRecord:
    """One named measurement inside a snapshot.

    ``value`` is the headline scalar (the median when ``k > 1``); ``unit``
    and ``direction`` make the record self-describing so the differ never
    has to guess whether bigger numbers are good news.
    """

    name: str
    value: float
    unit: str
    direction: str = "lower"
    min: Optional[float] = None
    median: Optional[float] = None
    max: Optional[float] = None
    k: int = 1
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"record {self.name!r}: direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )

    @classmethod
    def from_stats(
        cls,
        name: str,
        stats: TimingStats,
        unit: str = "seconds",
        direction: str = "lower",
        **metadata: object,
    ) -> "BenchRecord":
        return cls(
            name=name,
            value=stats.median,
            unit=unit,
            direction=direction,
            min=stats.min,
            median=stats.median,
            max=stats.max,
            k=stats.k,
            metadata=dict(metadata),
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "k": self.k,
        }
        if self.min is not None:
            out["min"] = self.min
        if self.median is not None:
            out["median"] = self.median
        if self.max is not None:
            out["max"] = self.max
        if self.metadata:
            out["metadata"] = self.metadata
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchRecord":
        if "name" not in data or "value" not in data:
            raise ValueError(f"benchmark record missing name/value: {data!r}")
        return cls(
            name=str(data["name"]),
            value=float(data["value"]),  # type: ignore[arg-type]
            unit=str(data.get("unit", "")),
            direction=str(data.get("direction", "lower")),
            min=data.get("min"),  # type: ignore[arg-type]
            median=data.get("median"),  # type: ignore[arg-type]
            max=data.get("max"),  # type: ignore[arg-type]
            k=int(data.get("k", 1)),  # type: ignore[arg-type]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )


@dataclass
class BenchSnapshot:
    """A schema-versioned collection of benchmark records."""

    group: str
    records: List[BenchRecord] = field(default_factory=list)
    environment: Dict[str, object] = field(default_factory=environment_fingerprint)
    schema_version: int = SCHEMA_VERSION

    def add(self, record: BenchRecord) -> BenchRecord:
        self.records.append(record)
        return record

    def record(self, name: str, value: float, unit: str, **kwargs) -> BenchRecord:
        return self.add(BenchRecord(name=name, value=value, unit=unit, **kwargs))

    def by_name(self) -> Dict[str, BenchRecord]:
        return {r.name: r for r in self.records}

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "group": self.group,
            "environment": self.environment,
            "records": [r.to_dict() for r in sorted(self.records, key=lambda r: r.name)],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchSnapshot":
        version = data.get("schema_version")
        if version is None:
            raise ValueError(
                "not a qir-bench snapshot: missing schema_version "
                "(pre-snapshot BENCH_*.json files cannot be diffed)"
            )
        if int(version) > SCHEMA_VERSION:  # type: ignore[arg-type]
            raise ValueError(
                f"snapshot schema_version {version} is newer than supported "
                f"({SCHEMA_VERSION}); upgrade the toolchain"
            )
        return cls(
            group=str(data.get("group", "")),
            records=[BenchRecord.from_dict(r) for r in data.get("records", [])],  # type: ignore[union-attr]
            environment=dict(data.get("environment", {})),  # type: ignore[arg-type]
            schema_version=int(version),  # type: ignore[arg-type]
        )

    def write_json(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write_json(handle)
            return
        json.dump(self.to_dict(), destination, indent=2, sort_keys=True)
        destination.write("\n")

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "BenchSnapshot":
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(source))
