"""Observability for the QIR toolchain: tracing, metrics, profiling.

The paper's adoption argument rests on knowing *where* a toolchain spends
its effort -- parsing and printing the IR (Example 3), transforming it
(Example 4), and executing it against a simulator (Example 5).  This
package is the measurement substrate for all three:

* :mod:`~repro.obs.tracer` -- nested wall-clock spans with tags, exported
  as JSONL or the Chrome ``trace_event`` format (load in ``chrome://tracing``
  / Perfetto);
* :mod:`~repro.obs.metrics` -- a registry of counters, gauges and
  fixed-bucket histograms with a stable snapshot-to-dict/JSON API;
* :mod:`~repro.obs.observer` -- the :class:`Observer` facade that the
  parser, pass manager, runtime and resilience layers accept, plus the
  :data:`NULL_OBSERVER` no-op default whose overhead is guarded by
  ``benchmarks/bench_obs.py``;
* :mod:`~repro.obs.profile` -- the human-readable ``--profile`` table;
* :mod:`~repro.obs.cli` -- shared ``--trace`` / ``--metrics`` /
  ``--profile`` argparse plumbing for ``qir-run`` and ``qir-opt``;
* :mod:`~repro.obs.snapshot` -- schema-versioned :class:`BenchSnapshot`
  records (median-of-k timings + environment fingerprint), the durable
  form that makes runs comparable across commits;
* :mod:`~repro.obs.regress` -- snapshot diffing with direction-aware
  relative thresholds, producing the pass/fail :class:`RegressionReport`
  behind ``qir-bench diff``;
* :mod:`~repro.obs.runctx` -- the :class:`RunContext` identity (ULID-style
  ``run_id`` + labels) that ties one run's spans, metrics, worker
  telemetry, and ledger row together;
* :mod:`~repro.obs.ledger` -- the :class:`RunLedger`, an append-only
  SQLite history of every run (read back with ``qir-ledger``);
* :mod:`~repro.obs.traceview` -- the inverse of the tracer: loads a
  recorded trace (JSONL or Chrome document) back into a validated
  :class:`Trace` span tree;
* :mod:`~repro.obs.analytics` -- interprets a :class:`Trace`: self-time
  rollups, critical-path extraction, per-worker utilization/imbalance,
  collapsed-stack flamegraph export, and trace diffing (the engine
  behind ``qir-trace``).

Everything here is dependency-free (stdlib only) so the hot paths it
instruments never pay an import tax.
"""

from repro.obs.ledger import (
    LEDGER_ENV,
    LedgerError,
    RunLedger,
    RunRecord,
    ledger_dir_from_env,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    metric_key,
    openmetrics_name,
    parse_metric_key,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, as_observer
from repro.obs.runctx import RunContext, is_run_id, new_run_id
from repro.obs.profile import render_profile
from repro.obs.regress import (
    EXIT_REGRESSION,
    RecordDelta,
    RegressionReport,
    diff_snapshots,
)
from repro.obs.snapshot import (
    SCHEMA_VERSION,
    BenchRecord,
    BenchSnapshot,
    TimingStats,
    environment_fingerprint,
    measure,
)
from repro.obs.tracer import Span, Tracer
from repro.obs.traceview import Trace, TraceError, TraceSpan, ValidationIssue
from repro.obs.analytics import (
    NameRollup,
    PathStep,
    TraceDiff,
    TraceSummary,
    UtilizationReport,
    WorkerStats,
    collapsed_stacks,
    critical_path,
    diff_traces,
    rollup,
    summarize,
    worker_utilization,
)

__all__ = [
    "LEDGER_ENV",
    "LedgerError",
    "RunLedger",
    "RunRecord",
    "ledger_dir_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "metric_key",
    "openmetrics_name",
    "parse_metric_key",
    "RunContext",
    "is_run_id",
    "new_run_id",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "as_observer",
    "render_profile",
    "EXIT_REGRESSION",
    "RecordDelta",
    "RegressionReport",
    "diff_snapshots",
    "SCHEMA_VERSION",
    "BenchRecord",
    "BenchSnapshot",
    "TimingStats",
    "environment_fingerprint",
    "measure",
    "Span",
    "Tracer",
    "Trace",
    "TraceError",
    "TraceSpan",
    "ValidationIssue",
    "NameRollup",
    "PathStep",
    "TraceDiff",
    "TraceSummary",
    "UtilizationReport",
    "WorkerStats",
    "collapsed_stacks",
    "critical_path",
    "diff_traces",
    "rollup",
    "summarize",
    "worker_utilization",
]
