"""Metrics registry: counters, gauges, fixed-bucket histograms.

Metric instances are cheap mutable cells; the registry owns the namespace.
A metric is addressed by *name* plus optional *labels*, flattened into a
stable key -- ``runtime.intrinsic_calls{intrinsic=__quantum__qis__h__body}``
-- so snapshots are plain ``dict``\\ s that diff and serialise cleanly.

Snapshot layout (all keys sorted)::

    {
      "counters":   {key: number},
      "gauges":     {key: number},
      "histograms": {key: {"count": n, "sum": s, "min": ..., "max": ...,
                           "mean": ..., "buckets": {"0.001": n, ..., "+Inf": n}}},
    }

Beyond the JSON snapshot, :meth:`MetricsRegistry.to_openmetrics` renders
the same registry in the Prometheus/OpenMetrics text exposition format
(``# TYPE`` families, ``_total`` counters, cumulative ``_bucket{le=...}``
histograms, terminated by ``# EOF``), so any scrape-based collector can
ingest a ``--metrics-format openmetrics`` artifact unchanged.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

# Latency buckets in seconds: 10us .. 10s, decade-and-half steps.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


def escape_label_value(value: object) -> str:
    """Label-value escaping shared by flattened keys and OpenMetrics.

    Backslash, double-quote, and newline are the three characters the
    Prometheus text format escapes; escaping them in :func:`metric_key`
    too keeps flattened keys single-line and makes the rendering
    deterministic and golden-testable.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def metric_key(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """``name{k=v,...}`` with label keys sorted; just ``name`` when unlabeled.

    Label values are escaped (see :func:`escape_label_value`) so keys are
    always single-line and render identically no matter who built them.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={escape_label_value(labels[k])}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = _unescape_label_value(v)
    return name, labels


def openmetrics_name(name: str) -> str:
    """A legal Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    The registry's dotted names (``runtime.shots.requested``) map to
    underscores; anything else illegal is replaced the same way.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not re.match(r"[a-zA-Z_:]", sanitized[0]):
        sanitized = "_" + sanitized
    return sanitized


def _openmetrics_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _openmetrics_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{openmetrics_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class Counter:
    """Monotonically increasing value (ints or float seconds)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value: float = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, amount: Union[int, float]) -> None:
        self.value += amount


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``bounds`` are upper bucket edges; an implicit ``+Inf`` bucket catches
    the tail, so ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("key", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, key: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.key = key
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        buckets = {repr(b): n for b, n in zip(self.bounds, self.counts)}
        buckets["+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create namespace for all three metric kinds.

    Metric *creation* takes a lock so concurrent get-or-create from
    scheduler worker threads cannot drop a cell (schedulers fold most
    metrics on the merging thread, but interpreter-level observers may
    still fire from workers).  The fast path -- the metric already
    exists -- stays a plain dict read.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- access ---------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter(key))
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge(key))
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(key, bounds))
        return metric

    def value(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Current value of a counter or gauge by its flattened key.

        Lookup helper for consumers that read metrics back out (qir-bench
        pulls ``runtime.shots.fastpath`` / ``pass.budget_bust`` counters);
        histograms are not scalars, so they are not reachable here.
        """
        metric = self._counters.get(key)
        if metric is None:
            metric = self._gauges.get(key)
        return metric.value if metric is not None else default

    def values_with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counter/gauge values whose key starts with ``prefix``.

        Subsystem read-back helper: the process scheduler's supervision
        counters live under ``scheduler.worker.``, and both the CI chaos
        smoke and ``qir-bench`` pull the whole family in one call instead
        of guessing individual keys.
        """
        out: Dict[str, float] = {}
        for key, metric in self._counters.items():
            if key.startswith(prefix):
                out[key] = metric.value
        for key, metric in self._gauges.items():
            if key.startswith(prefix):
                out.setdefault(key, metric.value)
        return dict(sorted(out.items()))

    # -- snapshot -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot() for k in sorted(self._histograms)
            },
        }

    def write_json(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write_json(handle)
            return
        json.dump(self.snapshot(), destination, indent=2, sort_keys=True)
        destination.write("\n")

    # -- OpenMetrics ----------------------------------------------------------
    def to_openmetrics(self) -> str:
        """The registry in Prometheus/OpenMetrics text exposition format.

        * metric families are grouped under one ``# TYPE`` line each and
          emitted in sorted family order, samples in sorted label order,
          so the rendering is deterministic (golden-testable);
        * counters get the OpenMetrics ``_total`` sample suffix;
        * histogram buckets are emitted *cumulatively* with ``le=`` labels
          (the registry stores per-bucket counts), plus ``_sum``/``_count``;
        * label values are escaped per the text-format rules and the
          document is terminated by ``# EOF``.
        """
        families: Dict[str, Tuple[str, List[str]]] = {}

        def family(name: str, kind: str) -> Tuple[str, List[str]]:
            fam = openmetrics_name(name)
            slot = families.setdefault(fam, (kind, []))
            if slot[0] != kind:
                # Same sanitized name registered as a different kind:
                # disambiguate rather than emit a self-contradictory family.
                fam = f"{fam}_{kind}"
                slot = families.setdefault(fam, (kind, []))
            return fam, slot[1]

        # Keys are iterated sorted, so samples land in each family's line
        # list already ordered; histogram buckets must keep ascending
        # ``le=`` order, so lines are never re-sorted after the fact.
        for key in sorted(self._counters):
            name, labels = parse_metric_key(key)
            fam, lines = family(name, "counter")
            lines.append(
                f"{fam}_total{_openmetrics_labels(labels)} "
                f"{_openmetrics_value(self._counters[key].value)}"
            )
        for key in sorted(self._gauges):
            name, labels = parse_metric_key(key)
            fam, lines = family(name, "gauge")
            lines.append(
                f"{fam}{_openmetrics_labels(labels)} "
                f"{_openmetrics_value(self._gauges[key].value)}"
            )
        for key in sorted(self._histograms):
            name, labels = parse_metric_key(key)
            histogram = self._histograms[key]
            fam, lines = family(name, "histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                le = f'le="{_openmetrics_value(bound)}"'
                lines.append(
                    f"{fam}_bucket{_openmetrics_labels(labels, le)} {cumulative}"
                )
            inf_le = 'le="+Inf"'
            lines.append(
                f"{fam}_bucket{_openmetrics_labels(labels, inf_le)} {histogram.count}"
            )
            lines.append(
                f"{fam}_sum{_openmetrics_labels(labels)} "
                f"{_openmetrics_value(histogram.total)}"
            )
            lines.append(
                f"{fam}_count{_openmetrics_labels(labels)} {histogram.count}"
            )

        out: List[str] = []
        for fam in sorted(families):
            kind, lines = families[fam]
            out.append(f"# TYPE {fam} {kind}")
            out.extend(lines)
        out.append("# EOF")
        return "\n".join(out) + "\n"

    def write_openmetrics(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write_openmetrics(handle)
            return
        destination.write(self.to_openmetrics())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
