"""Shared ``--trace`` / ``--metrics`` / ``--profile`` argparse plumbing.

Both ``qir-run`` and ``qir-opt`` expose the same three flags; any of them
turns the no-op default observer into a real one for the invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profile import render_profile


def add_observability_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a span trace: .jsonl -> one Chrome trace_event per "
             "line, - -> JSONL on stdout, anything else -> a bracketed "
             "Chrome trace JSON (load either in chrome://tracing / "
             "Perfetto, or analyse with qir-trace)",
    )
    group.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the metrics snapshot (counters/gauges/histograms)",
    )
    group.add_argument(
        "--metrics-format", default="json", choices=("json", "openmetrics"),
        help="format for --metrics: json (the snapshot dict, default) or "
             "openmetrics (Prometheus text exposition, scrape-ready)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="print a human-readable profile table to stderr on exit",
    )


def observer_from_args(args: argparse.Namespace) -> Observer:
    """A real observer when any flag was given, the shared no-op otherwise."""
    if args.trace or args.metrics or args.profile:
        return Observer()
    return NULL_OBSERVER


def emit_observability(
    args: argparse.Namespace,
    observer: Observer,
    stream: Optional[IO[str]] = None,
) -> None:
    """Flush trace/metrics files and the profile table (no-op when disabled)."""
    if not observer.enabled:
        return
    stream = stream if stream is not None else sys.stderr
    if args.trace:
        if args.trace == "-":
            # The metrics-output convention: "-" streams to stdout, JSONL
            # because it pipes line-by-line (qir-run ... --trace - | qir-trace
            # summary -).
            observer.tracer.write_jsonl(sys.stdout)
        else:
            observer.tracer.write(args.trace)
    if args.metrics:
        if getattr(args, "metrics_format", "json") == "openmetrics":
            observer.metrics.write_openmetrics(args.metrics)
        else:
            observer.metrics.write_json(args.metrics)
    if args.profile:
        table = render_profile(observer)
        if table:
            print(table, file=stream)
