"""Trace analytics: where did the time actually go?

Turns a loaded :class:`~repro.obs.traceview.Trace` into answers:

* :func:`rollup` -- per-span-name totals: how often, how long, and how
  much of it was *self* time (not attributable to a child span);
* :func:`critical_path` -- the heaviest chain through the span forest.
  Within each top-level span the walk descends into the most expensive
  child; ``parallel`` children (worker intervals) compete too, so in a
  process-scheduler trace the path runs straight through the *slowest
  worker* -- the straggler that bounds wall-clock time;
* :func:`worker_utilization` -- per-worker busy time, dispatch gap, and
  utilization against the supervision window, plus the imbalance ratio
  (slowest / median busy time) the work-stealing ROADMAP item needs as
  evidence;
* :func:`collapsed_stacks` -- flamegraph export in the collapsed-stack
  format (``a;b;c <self_us>``) that ``flamegraph.pl`` and speedscope
  both ingest;
* :func:`diff_traces` -- per-name regressions between two traces, the
  engine behind ``qir-trace diff``.

Everything here is pure computation over the span tree -- no I/O, no
clocks -- so the golden-file tests can assert exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.obs.traceview import Trace, TraceSpan

#: A worker whose busy time exceeds this multiple of the median is a
#: straggler (the chunk the work-stealing queue would have rebalanced).
STRAGGLER_FACTOR = 1.5


# -- per-name rollups ---------------------------------------------------------


@dataclass
class NameRollup:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    max_us: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_us": round(self.total_us, 3),
            "self_us": round(self.self_us, 3),
            "max_us": round(self.max_us, 3),
        }


def rollup(trace: Trace) -> List[NameRollup]:
    """Per-name totals, heaviest self time first."""
    table: Dict[str, NameRollup] = {}
    for span in trace.spans:
        entry = table.get(span.name)
        if entry is None:
            entry = table[span.name] = NameRollup(span.name)
        entry.count += 1
        entry.total_us += span.duration_us
        entry.self_us += span.self_us
        entry.max_us = max(entry.max_us, span.duration_us)
    return sorted(table.values(), key=lambda r: (-r.self_us, r.name))


# -- critical path ------------------------------------------------------------


@dataclass
class PathStep:
    """One hop on the critical path."""

    name: str
    start_us: float
    duration_us: float
    depth: int
    fraction: float  # of the whole trace's wall-clock extent
    parallel: bool = False  # reached by crossing onto a worker track

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "depth": self.depth,
            "fraction": round(self.fraction, 4),
            "parallel": self.parallel,
        }


def critical_path(trace: Trace) -> List[PathStep]:
    """The heaviest chain through each top-level span, in time order.

    Top-level spans on the main track are sequential phases (parse ->
    passes -> run), so each contributes its own descent.  At every node
    the walk follows the most expensive child -- same-track children and
    parallel worker intervals compete on duration, which is exactly the
    "who bounds the wall clock" question: a straggling worker beats the
    supervisor's own self time and the path dives into it.
    """
    wall = trace.duration_us or 1.0
    steps: List[PathStep] = []
    for root in trace.roots:
        node: Optional[TraceSpan] = root
        depth = 0
        crossed = False
        while node is not None:
            steps.append(
                PathStep(
                    name=node.worker_label,
                    start_us=node.start_us,
                    duration_us=node.duration_us,
                    depth=depth,
                    fraction=node.duration_us / wall,
                    parallel=crossed,
                )
            )
            candidates = node.children + node.parallel
            if not candidates:
                break
            heaviest = max(candidates, key=lambda s: s.duration_us)
            crossed = crossed or heaviest in node.parallel
            node = heaviest
            depth += 1
    return steps


def render_critical_path(steps: List[PathStep]) -> str:
    lines = []
    for step in steps:
        indent = "  " * step.depth + ("└ " if step.depth else "")
        marker = " [worker track]" if step.parallel else ""
        lines.append(
            f"{indent}{step.name:<{max(1, 44 - len(indent))}} "
            f"{step.duration_us / 1000.0:>10.3f} ms "
            f"({step.fraction * 100.0:5.1f}%){marker}"
        )
    return "\n".join(lines)


# -- worker utilization -------------------------------------------------------


@dataclass
class WorkerStats:
    """One worker process's view of the supervision window."""

    worker: int
    spans: int = 0
    shots: int = 0
    chunks: List[str] = field(default_factory=list)
    busy_us: float = 0.0
    first_start_us: float = 0.0
    last_end_us: float = 0.0
    dispatch_gap_us: float = 0.0  # window start -> first span start
    utilization: float = 0.0  # busy / window

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker": self.worker,
            "spans": self.spans,
            "shots": self.shots,
            "chunks": list(self.chunks),
            "busy_us": round(self.busy_us, 3),
            "dispatch_gap_us": round(self.dispatch_gap_us, 3),
            "utilization": round(self.utilization, 4),
        }


@dataclass
class UtilizationReport:
    """All workers against the supervision window."""

    window_start_us: float
    window_us: float
    workers: List[WorkerStats]
    imbalance: float  # slowest busy / median busy (1.0 when balanced)
    stragglers: List[int]  # worker ids beyond STRAGGLER_FACTOR x median
    idle_us: float  # summed per-worker window time not spent busy
    #: Validation findings (e.g. a worker with zero busy time, excluded
    #: from the imbalance denominator) -- rendered, never silently eaten.
    issues: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_us": round(self.window_us, 3),
            "imbalance": round(self.imbalance, 4),
            "stragglers": list(self.stragglers),
            "idle_us": round(self.idle_us, 3),
            "issues": list(self.issues),
            "workers": [w.to_dict() for w in self.workers],
        }

    def render(self) -> str:
        lines = [
            f"window {self.window_us / 1000.0:.3f} ms  "
            f"workers {len(self.workers)}  "
            f"imbalance {self.imbalance:.2f}  "
            f"idle {self.idle_us / 1000.0:.3f} ms"
        ]
        for issue in self.issues:
            lines.append(f"issue: {issue}")
        header = ("WORKER", "SPANS", "SHOTS", "BUSY_MS", "GAP_MS", "UTIL", "")
        rows = [header]
        for w in self.workers:
            rows.append((
                str(w.worker),
                str(w.spans),
                str(w.shots),
                f"{w.busy_us / 1000.0:.3f}",
                f"{w.dispatch_gap_us / 1000.0:.3f}",
                f"{w.utilization * 100.0:.1f}%",
                "straggler" if w.worker in self.stragglers else "",
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        for row in rows:
            lines.append(
                "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip()
            )
        return "\n".join(lines)


def worker_utilization(trace: Trace) -> Optional[UtilizationReport]:
    """Per-worker timelines, or ``None`` when no worker spans exist.

    The window is the union of ``process.supervisor`` spans when present
    (dispatch + watchdog + merge, the denominator a worker could in
    principle have been busy for), else the workers' own extent.
    """
    spans = trace.worker_spans
    if not spans:
        return None
    supervisors = trace.find("process.supervisor")
    window_source = supervisors if supervisors else spans
    window_start = min(s.start_us for s in window_source)
    window_end = max(s.end_us for s in window_source)
    # Re-dispatched rounds can outlive a short supervisor estimate; the
    # window must cover every worker interval it judges.
    window_start = min(window_start, min(s.start_us for s in spans))
    window_end = max(window_end, max(s.end_us for s in spans))
    window_us = max(0.0, window_end - window_start)

    table: Dict[int, WorkerStats] = {}
    for span in sorted(spans, key=lambda s: s.start_us):
        try:
            worker = int(span.args.get("worker", span.tid - 1))
        except (TypeError, ValueError):
            worker = span.tid - 1
        stats = table.get(worker)
        if stats is None:
            stats = table[worker] = WorkerStats(
                worker=worker,
                first_start_us=span.start_us,
                last_end_us=span.end_us,
            )
        stats.spans += 1
        stats.busy_us += span.duration_us
        stats.first_start_us = min(stats.first_start_us, span.start_us)
        stats.last_end_us = max(stats.last_end_us, span.end_us)
        try:
            stats.shots += int(span.args.get("shots", 0))
        except (TypeError, ValueError):
            pass
        chunk = span.args.get("chunk")
        if chunk:
            stats.chunks.append(str(chunk))

    workers = sorted(table.values(), key=lambda w: w.worker)
    idle = 0.0
    for stats in workers:
        stats.dispatch_gap_us = max(0.0, stats.first_start_us - window_start)
        stats.utilization = stats.busy_us / window_us if window_us > 0 else 0.0
        idle += max(0.0, window_us - stats.busy_us)
    # A worker that recorded spans but no busy time (crashed before its
    # first chunk finished, or a degenerate trace) must not enter the
    # imbalance denominator: a 0 in the median would let one dead worker
    # halve the ratio -- or divide it to infinity -- while saying nothing
    # about how well the live workers balanced.  Surface it instead.
    issues: List[str] = []
    busy_workers = [w for w in workers if w.busy_us > 0.0]
    zero_busy = [w.worker for w in workers if w.busy_us <= 0.0]
    if zero_busy:
        names = ", ".join(str(w) for w in zero_busy)
        issues.append(
            f"worker(s) {names} recorded no busy time (crashed before the "
            "first chunk completed?); excluded from the imbalance median"
        )
    busy_median = median([w.busy_us for w in busy_workers]) if busy_workers else 0.0
    slowest = max((w.busy_us for w in busy_workers), default=0.0)
    imbalance = slowest / busy_median if busy_median > 0 else 1.0
    stragglers = [
        w.worker
        for w in busy_workers
        if busy_median > 0 and w.busy_us > STRAGGLER_FACTOR * busy_median
    ]
    return UtilizationReport(
        window_start_us=window_start,
        window_us=window_us,
        workers=workers,
        imbalance=imbalance,
        stragglers=stragglers,
        idle_us=idle,
        issues=issues,
    )


# -- per-chunk dispatch rows --------------------------------------------------


@dataclass
class ChunkRow:
    """One dispatched chunk, as the ``process.worker`` span tags tell it."""

    chunk: str  # shot range, e.g. "0..4"
    worker: int
    shots: int
    attempt: int  # the span's `round` tag: 0 first dispatch, +1 per requeue
    steal: bool  # worker's second-or-later pull (self-scheduled rebalance)
    start_us: float
    duration_us: float

    @property
    def origin(self) -> str:
        if self.attempt > 0:
            return "requeued"
        return "steal" if self.steal else "first"

    def to_dict(self) -> Dict[str, object]:
        return {
            "chunk": self.chunk,
            "worker": self.worker,
            "shots": self.shots,
            "attempt": self.attempt,
            "steal": self.steal,
            "origin": self.origin,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
        }


def chunk_rows(trace: Trace) -> List[ChunkRow]:
    """Per-chunk dispatch rows from worker span tags, in dispatch order.

    The queue scheduler tags every merged ``process.worker`` span with
    ``chunk`` (shot range), ``worker``, ``round`` (dispatch attempt), and
    ``steal``; this flattens them into the table behind
    ``qir-trace workers --chunks``.  Spans without a ``chunk`` tag
    (hand-built traces, older recordings) are skipped.
    """

    def _int(value: object, default: int = 0) -> int:
        try:
            return int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return default

    rows: List[ChunkRow] = []
    for span in sorted(trace.worker_spans, key=lambda s: (s.start_us, s.tid)):
        chunk = span.args.get("chunk")
        if not chunk:
            continue
        rows.append(
            ChunkRow(
                chunk=str(chunk),
                worker=_int(span.args.get("worker", span.tid - 1)),
                shots=_int(span.args.get("shots", 0)),
                attempt=_int(span.args.get("round", 0)),
                steal=bool(span.args.get("steal", False)),
                start_us=span.start_us,
                duration_us=span.duration_us,
            )
        )
    return rows


def render_chunk_rows(rows: List[ChunkRow]) -> str:
    header = ("CHUNK", "WORKER", "SHOTS", "ATTEMPT", "ORIGIN", "START_MS", "BUSY_MS")
    table = [header]
    for row in rows:
        table.append((
            row.chunk,
            str(row.worker),
            str(row.shots),
            str(row.attempt),
            row.origin,
            f"{row.start_us / 1000.0:.3f}",
            f"{row.duration_us / 1000.0:.3f}",
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    return "\n".join(
        "  ".join(c.ljust(widths[i]) for i, c in enumerate(r)).rstrip()
        for r in table
    )


# -- flamegraph export --------------------------------------------------------


def collapsed_stacks(trace: Trace) -> List[str]:
    """Collapsed-stack lines (``frame;frame;frame <self_us>``).

    One line per unique stack, value = integer self-time microseconds --
    the input format of ``flamegraph.pl`` and speedscope's "collapsed"
    importer.  Worker frames are disambiguated as ``process.worker#N`` so
    parallel tracks render side by side instead of merging.
    """
    folded: Dict[Tuple[str, ...], int] = {}

    def visit(span: TraceSpan, prefix: Tuple[str, ...]) -> None:
        stack = prefix + (span.worker_label,)
        value = int(round(span.self_us))
        if value > 0 or not (span.children or span.parallel):
            folded[stack] = folded.get(stack, 0) + value
        for child in span.children:
            visit(child, stack)
        for worker in span.parallel:
            visit(worker, stack)

    for root in trace.roots:
        visit(root, ())
    return [
        ";".join(stack) + f" {value}"
        for stack, value in sorted(folded.items())
    ]


# -- summary ------------------------------------------------------------------


@dataclass
class TraceSummary:
    """Everything ``qir-trace summary`` prints, as one structure."""

    spans: int
    instants: int
    duration_us: float
    run_ids: List[str]
    issues: List[str]
    hotspots: List[NameRollup]
    critical_path: List[PathStep]
    workers: Optional[UtilizationReport]

    def to_dict(self) -> Dict[str, object]:
        return {
            "spans": self.spans,
            "instants": self.instants,
            "duration_us": round(self.duration_us, 3),
            "run_ids": list(self.run_ids),
            "issues": list(self.issues),
            "hotspots": [r.to_dict() for r in self.hotspots],
            "critical_path": [s.to_dict() for s in self.critical_path],
            "workers": self.workers.to_dict() if self.workers else None,
        }


def summarize(trace: Trace, hotspots: int = 10) -> TraceSummary:
    return TraceSummary(
        spans=len(trace.spans),
        instants=len(trace.instants),
        duration_us=trace.duration_us,
        run_ids=trace.run_ids(),
        issues=[issue.render() for issue in trace.issues],
        hotspots=rollup(trace)[:hotspots],
        critical_path=critical_path(trace),
        workers=worker_utilization(trace),
    )


# -- diff ---------------------------------------------------------------------


@dataclass
class DiffRow:
    """One span name's movement between two traces."""

    name: str
    base_total_us: float
    current_total_us: float

    @property
    def delta_us(self) -> float:
        return self.current_total_us - self.base_total_us

    @property
    def relative(self) -> Optional[float]:
        """Fractional change, or None for a new/vanished name."""
        if self.base_total_us <= 0.0:
            return None
        return self.delta_us / self.base_total_us

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base_total_us": round(self.base_total_us, 3),
            "current_total_us": round(self.current_total_us, 3),
            "delta_us": round(self.delta_us, 3),
            "relative": (
                round(self.relative, 4) if self.relative is not None else None
            ),
        }


@dataclass
class TraceDiff:
    """``qir-trace diff``'s payload: per-name movement plus gap deltas."""

    base_run_id: str
    current_run_id: str
    base_duration_us: float
    current_duration_us: float
    rows: List[DiffRow]
    base_dispatch_gap_us: float = 0.0
    current_dispatch_gap_us: float = 0.0
    base_imbalance: Optional[float] = None
    current_imbalance: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "base_run_id": self.base_run_id,
            "current_run_id": self.current_run_id,
            "base_duration_us": round(self.base_duration_us, 3),
            "current_duration_us": round(self.current_duration_us, 3),
            "base_dispatch_gap_us": round(self.base_dispatch_gap_us, 3),
            "current_dispatch_gap_us": round(self.current_dispatch_gap_us, 3),
            "base_imbalance": self.base_imbalance,
            "current_imbalance": self.current_imbalance,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self) -> str:
        def _label(run_id: str, fallback: str) -> str:
            return run_id or fallback

        base = _label(self.base_run_id, "baseline")
        current = _label(self.current_run_id, "current")
        wall_delta = self.current_duration_us - self.base_duration_us
        pct = (
            f" ({wall_delta / self.base_duration_us * 100.0:+.1f}%)"
            if self.base_duration_us > 0
            else ""
        )
        lines = [
            f"trace diff: {base} -> {current}",
            f"  wall: {self.base_duration_us / 1000.0:.3f} ms -> "
            f"{self.current_duration_us / 1000.0:.3f} ms{pct}",
        ]
        gap_delta = self.current_dispatch_gap_us - self.base_dispatch_gap_us
        if self.base_dispatch_gap_us or self.current_dispatch_gap_us:
            gap_pct = (
                f" ({gap_delta / self.base_dispatch_gap_us * 100.0:+.1f}%)"
                if self.base_dispatch_gap_us > 0
                else ""
            )
            lines.append(
                f"  worker dispatch gaps: "
                f"{self.base_dispatch_gap_us / 1000.0:.3f} ms -> "
                f"{self.current_dispatch_gap_us / 1000.0:.3f} ms{gap_pct}"
            )
        if self.base_imbalance is not None and self.current_imbalance is not None:
            lines.append(
                f"  worker imbalance: {self.base_imbalance:.2f} -> "
                f"{self.current_imbalance:.2f}"
            )
        for row in self.rows:
            rel = row.relative
            tag = f"{rel * 100.0:+.1f}%" if rel is not None else (
                "new" if row.base_total_us <= 0 else "gone"
            )
            lines.append(
                f"  {row.name:<40} {row.base_total_us / 1000.0:>10.3f} ms -> "
                f"{row.current_total_us / 1000.0:>10.3f} ms  {tag}"
            )
        return "\n".join(lines)


def diff_traces(base: Trace, current: Trace, limit: int = 20) -> TraceDiff:
    """Explain where ``current`` spends differently from ``base``.

    Rows are per-span-name *total* time deltas, largest absolute movement
    first; worker dispatch gaps and imbalance ride alongside so a
    scheduler regression ("run X spent +40% waiting to dispatch") is
    visible even when no single span name moved.
    """
    base_totals = {r.name: r.total_us for r in rollup(base)}
    current_totals = {r.name: r.total_us for r in rollup(current)}
    rows = [
        DiffRow(name, base_totals.get(name, 0.0), current_totals.get(name, 0.0))
        for name in sorted(set(base_totals) | set(current_totals))
    ]
    rows.sort(key=lambda r: (-abs(r.delta_us), r.name))
    base_util = worker_utilization(base)
    current_util = worker_utilization(current)

    def _gap(report: Optional[UtilizationReport]) -> float:
        if report is None:
            return 0.0
        return sum(w.dispatch_gap_us for w in report.workers)

    def _first(ids: List[str]) -> str:
        return ids[0] if ids else ""

    return TraceDiff(
        base_run_id=_first(base.run_ids()),
        current_run_id=_first(current.run_ids()),
        base_duration_us=base.duration_us,
        current_duration_us=current.duration_us,
        rows=rows[:limit],
        base_dispatch_gap_us=_gap(base_util),
        current_dispatch_gap_us=_gap(current_util),
        base_imbalance=base_util.imbalance if base_util else None,
        current_imbalance=current_util.imbalance if current_util else None,
    )
