"""Span tracer: nested monotonic wall-clock intervals with tags.

A :class:`Span` is a context manager; entering starts the clock, exiting
records one *complete event* (Chrome ``ph: "X"``) on the owning
:class:`Tracer`.  Spans nest naturally -- the tracer tracks depth so both
the JSONL and the Chrome export reconstruct the flame graph.

Export formats:

* :meth:`Tracer.write_jsonl` -- one JSON object per line, each already in
  the Chrome ``trace_event`` schema (``name``/``ph``/``ts``/``dur`` with
  microsecond timestamps).  Perfetto and ``chrome://tracing`` accept the
  bare newline-separated form; strict consumers can wrap the lines in
  ``{"traceEvents": [...]}``.
* :meth:`Tracer.write_chrome` -- the fully bracketed
  ``{"traceEvents": [...]}`` JSON document.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, IO, List, Optional, Union


class Span:
    """One timed interval.  Created by :meth:`Tracer.span`; use as::

        with tracer.span("parse", bytes=1024):
            ...
    """

    __slots__ = ("name", "tags", "depth", "start_us", "duration_us", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.depth = 0
        self.start_us = 0.0
        self.duration_us = 0.0
        self._t0 = 0.0

    def tag(self, key: str, value: object) -> "Span":
        """Attach a tag after entry (e.g. a result computed inside)."""
        self.tags[key] = value
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.depth = tracer._depth
        tracer._depth += 1
        self._t0 = tracer._clock()
        self.start_us = (self._t0 - tracer._origin) * 1e6
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._clock()
        if tracer._depth > 0:
            tracer._depth -= 1
        else:
            # An exit with no matching live entry (threaded misuse, or a
            # span exited twice).  Clamping keeps subsequent spans at
            # sane depths instead of going negative forever; the counter
            # makes the misuse visible instead of silent.
            tracer._note_depth_underflow(self.name)
        self.duration_us = (end - self._t0) * 1e6
        event: Dict[str, object] = {
            "name": self.name,
            "cat": str(self.tags.get("cat", "repro")),
            "ph": "X",
            "ts": round(self.start_us, 3),
            "dur": round(self.duration_us, 3),
            "pid": 0,
            "tid": 0,
        }
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        tracer._append(event, self.tags)


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Collects completed span events; ``clock`` is injectable for tests."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self._depth = 0
        #: Spans that exited with no matching live entry (see
        #: ``Span.__exit__``); mirrored into the ``tracer.depth_underflow``
        #: counter when an :class:`~repro.obs.observer.Observer` owns us.
        self.depth_underflows = 0
        self.on_depth_underflow: Optional[Callable[[str], None]] = None
        self.events: List[Dict[str, object]] = []
        #: Current run identity; while set, every recorded event's ``args``
        #: carries it, so spans folded in from worker processes land in the
        #: same logical trace as the parent's (see repro.obs.runctx).
        self.run_id: Optional[str] = None

    def _note_depth_underflow(self, name: str) -> None:
        self.depth_underflows += 1
        if self.on_depth_underflow is not None:
            self.on_depth_underflow(name)

    def _append(self, event: Dict[str, object], tags: Dict[str, object]) -> None:
        if self.run_id is not None and "run_id" not in tags:
            tags = dict(tags)
            tags["run_id"] = self.run_id
        if tags:
            event["args"] = {k: _jsonable(v) for k, v in tags.items()}
        self.events.append(event)

    def span(self, name: str, **tags: object) -> Span:
        return Span(self, name, tags)

    def complete(
        self,
        name: str,
        start: float,
        seconds: float,
        tid: int = 0,
        **tags: object,
    ) -> None:
        """Record an interval measured elsewhere (e.g. in a worker process).

        ``start`` is a value of this tracer's own clock (the caller notes
        it before handing work off); ``seconds`` is the duration the
        worker reported.  ``tid`` separates parallel tracks so folded
        worker spans render side by side in the flame graph.
        """
        event: Dict[str, object] = {
            "name": name,
            "cat": str(tags.get("cat", "repro")),
            "ph": "X",
            "ts": round((start - self._origin) * 1e6, 3),
            "dur": round(seconds * 1e6, 3),
            "pid": 0,
            "tid": tid,
        }
        self._append(event, tags)

    def instant(self, name: str, **tags: object) -> None:
        """Record a zero-duration marker (Chrome ``ph: "i"``)."""
        event: Dict[str, object] = {
            "name": name,
            "cat": str(tags.get("cat", "repro")),
            "ph": "i",
            "ts": round((self._clock() - self._origin) * 1e6, 3),
            "pid": 0,
            "tid": 0,
            "s": "g",
        }
        self._append(event, tags)

    # -- export ---------------------------------------------------------------
    def to_trace_events(self) -> List[Dict[str, object]]:
        return list(self.events)

    def iter_jsonl(self):
        for event in self.events:
            yield json.dumps(event, sort_keys=True)

    def write_jsonl(self, destination: Union[str, IO[str]]) -> None:
        """One Chrome ``trace_event`` object per line."""
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write_jsonl(handle)
            return
        for line in self.iter_jsonl():
            destination.write(line + "\n")

    def write_chrome(self, destination: Union[str, IO[str]]) -> None:
        """The bracketed ``{"traceEvents": [...]}`` document."""
        document = {"traceEvents": self.events, "displayTimeUnit": "ms"}
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            return
        json.dump(document, destination)

    def write(self, path: str) -> None:
        """Write ``path``: ``.jsonl`` gets JSONL, anything else the Chrome doc."""
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)

    def total_time_us(self, name: Optional[str] = None) -> float:
        return sum(
            float(e.get("dur", 0.0))
            for e in self.events
            if e["ph"] == "X" and (name is None or e["name"] == name)
        )

    def __len__(self) -> int:
        return len(self.events)
