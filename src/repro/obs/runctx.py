"""RunContext: the per-run identity that survives worker boundaries.

Every multi-shot execution gets one :class:`RunContext` -- minted by
:meth:`~repro.runtime.execute.QirRuntime.run_shots` (or handed down by
:class:`~repro.runtime.session.QirSession`, which knows the plan key) --
carrying a ULID-style ``run_id`` plus the labels that identify *what*
ran: plan key, scheduler, backend, jobs.  The context is:

* stamped on the :class:`~repro.obs.tracer.Tracer` so every span emitted
  during the run (including the ``process.worker`` spans folded back
  from worker processes) carries the same ``run_id`` tag and merges into
  one coherent trace;
* recorded in the :class:`~repro.obs.metrics.MetricsRegistry` as a
  ``run.info`` gauge (the Prometheus ``*_info`` idiom: value 1, identity
  in the labels);
* shipped to :class:`~repro.runtime.schedulers.ProcessScheduler` workers
  inside the pickled ``_WorkerChunk`` (the dataclass is plain data, so
  it pickles);
* written to the :class:`~repro.obs.ledger.RunLedger` as the primary key
  of the run's durable row.

``run_id`` format: 26 Crockford-base32 characters -- a 48-bit
millisecond timestamp followed by 80 random bits (the ULID layout) --
so ids sort lexicographically by creation time and collisions are
cryptographically unlikely even across hosts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

#: Crockford base32 alphabet (no I, L, O, U), as used by ULID.
_CROCKFORD = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

#: Length of a run id: 10 timestamp characters + 16 randomness characters.
RUN_ID_LENGTH = 26


def _base32(value: int, length: int) -> str:
    chars = []
    for _ in range(length):
        chars.append(_CROCKFORD[value & 0x1F])
        value >>= 5
    return "".join(reversed(chars))


def new_run_id(timestamp_ms: Optional[int] = None) -> str:
    """A fresh ULID-style id: time-sortable, 26 chars, collision-safe.

    ``timestamp_ms`` is injectable for tests; production callers leave it
    to the wall clock.
    """
    if timestamp_ms is None:
        timestamp_ms = time.time_ns() // 1_000_000
    randomness = int.from_bytes(os.urandom(10), "big")
    return _base32(timestamp_ms & ((1 << 48) - 1), 10) + _base32(randomness, 16)


def is_run_id(value: str) -> bool:
    """Shape check used by CLI argument validation and the ledger."""
    return (
        isinstance(value, str)
        and len(value) == RUN_ID_LENGTH
        and all(c in _CROCKFORD for c in value)
    )


@dataclass(frozen=True)
class RunContext:
    """Identity and labels of one ``run_shots`` invocation.

    Frozen and made of plain data so it can ride a pickled
    ``_WorkerChunk`` into worker processes unchanged; ``with_labels``
    derives an updated copy (e.g. once the effective scheduler is known).
    """

    run_id: str = field(default_factory=new_run_id)
    plan_key: Optional[str] = None
    scheduler: str = "serial"
    backend: str = "statevector"
    jobs: int = 1
    entry: Optional[str] = None
    shots: int = 0
    #: Span id of the enclosing request/trace (a future execution service
    #: propagates its request span here so run traces nest under it).
    parent_span_id: Optional[str] = None

    @classmethod
    def create(cls, **kwargs: object) -> "RunContext":
        return cls(**kwargs)  # type: ignore[arg-type]

    def with_labels(self, **changes: object) -> "RunContext":
        """A copy with updated labels (the ``run_id`` never changes)."""
        changes.pop("run_id", None)
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def short_id(self) -> str:
        return self.run_id[-8:]

    def labels(self) -> Dict[str, object]:
        """The identity labels for metrics/span tagging (no Nones)."""
        out: Dict[str, object] = {
            "run_id": self.run_id,
            "scheduler": self.scheduler,
            "backend": self.backend,
            "jobs": self.jobs,
        }
        if self.plan_key:
            out["plan_key"] = self.plan_key
        if self.entry:
            out["entry"] = self.entry
        if self.parent_span_id:
            out["parent_span_id"] = self.parent_span_id
        return out
