"""Deterministic fault injection for the QIR runtime.

A :class:`FaultPlan` is a seeded, declarative description of *which shots
fail, where, and how often*.  The executor turns it into per-shot
:class:`ShotFaultContext` objects; named **sites** inside the runtime stack
consult the context and raise the planned error:

========================  =====================================================
site                      where it fires
========================  =====================================================
``gate``                  :meth:`FaultyBackend.apply_gate`
``measure``               :meth:`FaultyBackend.measure`
``reset``                 :meth:`FaultyBackend.reset`
``allocate``              :meth:`FaultyBackend.allocate_qubit`
``intrinsic:<name>``      interpreter dispatch of a declared ``__quantum__*``
``output``                any ``__quantum__rt__*_record_output`` intrinsic
``timeout``               shrinks the interpreter step budget for the attempt
``corrupt_output``        silently flips the first recorded result bit
``worker_crash``          process-scheduler worker dies mid-chunk (``os._exit``)
``worker_hang``           worker stops heartbeating and sleeps forever
``ipc_corrupt``           worker returns mangled bytes instead of its report
========================  =====================================================

Determinism: whether a rule poisons shot *k* is a pure function of
``(plan.seed, rule index, k)`` -- independent of execution order, retries,
or other rules -- so failure sets are exactly reproducible.

The three ``worker_*``/``ipc_*`` sites are **process-level**: they model
the machinery around the interpreter failing, not the shot itself, so
they are consulted only by the process scheduler's worker loop (see
:mod:`repro.runtime.schedulers`) and are inert under the serial,
threaded, and batched schedulers.  Their ``failures`` field counts
*chunk dispatch attempts* instead of shot attempts: ``failures=1``
crashes the first dispatch of a poisoned chunk and lets the re-queued
dispatch succeed, while the
default :data:`PERSISTENT` keeps killing workers until the supervisor's
circuit breaker demotes the whole run off the process scheduler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.backend import DelegatingBackend, SimulatorBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.errors import QirRuntimeError

#: ``failures=PERSISTENT`` -- the fault fires on every attempt (trap-like).
PERSISTENT = -1

_ERROR_CLASSES = ("backend", "alloc", "trap", "timeout", "corrupt")

#: Sites consulted by the process scheduler's worker loop, never by
#: per-shot ``check()`` -- see the module docstring.
PROCESS_SITES = ("worker_crash", "worker_hang", "ipc_corrupt")


def corrupt_bytes(data: bytes, seed: int = 0, flips: int = 16) -> bytes:
    """Deterministically mangle *data*: flip up to ``flips`` seeded bits.

    Shared between the chaos layer (a worker returning a corrupted IPC
    payload) and the plan-cache tooling's tests (``qir-plan-cache list
    --verify`` against corrupted cache files), so both exercise the same
    corruption shape.  Always changes at least one byte of non-empty
    input.
    """
    if not data:
        return b"\x00"
    rng = np.random.default_rng((seed, len(data)))
    mangled = bytearray(data)
    for _ in range(max(1, flips)):
        position = int(rng.integers(0, len(mangled)))
        bit = 1 << int(rng.integers(0, 8))
        mangled[position] ^= bit
    if bytes(mangled) == data:  # the flips cancelled out; force a change
        mangled[0] ^= 0x01
    return bytes(mangled)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a site, a shot selector, and an error class.

    * ``probability`` -- chance a shot is poisoned (ignored when ``shots``
      pins explicit indices);
    * ``failures`` -- how many *attempts* of a poisoned shot fail before it
      succeeds (transient faults); :data:`PERSISTENT` fails every attempt;
    * ``error`` -- which error class to raise (``backend``, ``alloc``,
      ``trap``) or apply (``timeout`` budgets, ``corrupt`` bit flips);
    * ``backend`` / ``only_noisy`` -- restrict firing to attempts executed
      on a specific backend, modelling backend-correlated failures;
    * ``param`` -- error-class parameter (step budget for ``timeout``).
    """

    site: str
    probability: float = 1.0
    shots: Optional[FrozenSet[int]] = None
    error: str = "backend"
    failures: int = PERSISTENT
    backend: Optional[str] = None
    only_noisy: Optional[bool] = None
    param: int = 0

    def __post_init__(self) -> None:
        if self.error not in _ERROR_CLASSES:
            raise ValueError(
                f"unknown error class {self.error!r}; choose from {_ERROR_CLASSES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.site == "timeout" and self.error not in ("timeout", "backend"):
            raise ValueError("the 'timeout' site requires error='timeout'")
        if self.shots is not None and not isinstance(self.shots, frozenset):
            object.__setattr__(self, "shots", frozenset(self.shots))

    def applies_to_shot(self, shot: int, seed: int, rule_index: int) -> bool:
        """Is this shot poisoned?  Deterministic in (seed, rule_index, shot)."""
        if self.shots is not None:
            return shot in self.shots
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        draw = np.random.default_rng((seed, rule_index, shot)).random()
        return bool(draw < self.probability)

    def matches_level(self, backend_name: str, noisy: bool) -> bool:
        if self.backend is not None and self.backend != backend_name:
            return False
        if self.only_noisy is not None and self.only_noisy != noisy:
            return False
        return True

    def make_error(self, shot: int, attempt: int) -> "QirRuntimeError":
        # Imported lazily: repro.runtime.execute imports this module, so a
        # top-level errors import would close a package-init cycle.
        from repro.runtime.errors import (
            BackendFaultError,
            OutputCorruptionError,
            QubitAllocationError,
            TrapError,
        )

        detail = f"injected {self.error} fault at site {self.site!r} (shot {shot}, attempt {attempt + 1})"
        if self.error == "alloc":
            return QubitAllocationError(detail)
        if self.error == "trap":
            return TrapError(detail)
        if self.error == "corrupt":
            return OutputCorruptionError(detail)
        return BackendFaultError(detail)

    @classmethod
    def parse(cls, spec: str) -> "FaultRule":
        """Parse a CLI spec: ``site[,key=value,...]``.

        Keys: ``p`` (probability), ``shots`` (colon-separated indices),
        ``class`` (error class), ``failures``, ``backend``, ``param``.
        Example: ``gate,p=0.01,class=backend,failures=2``.
        """
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        if not parts:
            raise ValueError("empty fault spec")
        site = parts[0]
        kwargs: Dict[str, object] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(f"malformed fault spec item {part!r} (want key=value)")
            key, value = part.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key == "p":
                kwargs["probability"] = float(value)
            elif key == "shots":
                kwargs["shots"] = frozenset(int(v) for v in value.split(":") if v)
            elif key == "class":
                kwargs["error"] = value
            elif key == "failures":
                kwargs["failures"] = int(value)
            elif key == "backend":
                kwargs["backend"] = value
            elif key == "param":
                kwargs["param"] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(site=site, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded collection of :class:`FaultRule`\\ s."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def poison(
        cls,
        shots: Sequence[int],
        site: str = "gate",
        error: str = "backend",
        failures: int = PERSISTENT,
        seed: int = 0,
        **kwargs: object,
    ) -> "FaultPlan":
        """Poison an explicit set of shot indices at one site."""
        rule = FaultRule(
            site=site, shots=frozenset(shots), error=error, failures=failures, **kwargs  # type: ignore[arg-type]
        )
        return cls(rules=(rule,), seed=seed)

    @classmethod
    def random(
        cls,
        probability: float,
        site: str = "gate",
        error: str = "backend",
        failures: int = PERSISTENT,
        seed: int = 0,
        **kwargs: object,
    ) -> "FaultPlan":
        """Poison each shot independently with the given probability."""
        rule = FaultRule(
            site=site, probability=probability, error=error, failures=failures, **kwargs  # type: ignore[arg-type]
        )
        return cls(rules=(rule,), seed=seed)

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        return cls(rules=tuple(FaultRule.parse(s) for s in specs), seed=seed)

    def poisoned_shots(self, shots: int) -> FrozenSet[int]:
        """All shot indices at least one rule poisons (for tests/reports)."""
        hit = set()
        for index, rule in enumerate(self.rules):
            for shot in range(shots):
                if rule.applies_to_shot(shot, self.seed, index):
                    hit.add(shot)
        return frozenset(hit)

    @property
    def has_process_faults(self) -> bool:
        return any(rule.site in PROCESS_SITES for rule in self.rules)

    @property
    def has_hang_faults(self) -> bool:
        return any(rule.site == "worker_hang" for rule in self.rules)

    def process_decision(
        self, start: int, stop: int, attempt: int
    ) -> "ProcessFaultDecision":
        """Resolve the process-level fate of the chunk ``[start, stop)``.

        Pure function of ``(plan, chunk range, dispatch attempt)``: a
        worker computes its own fate without coordination, and the parent
        can predict it in tests.  ``failures`` gates on the chunk's
        dispatch *attempt* (0 on first dispatch, +1 each time the work
        queue re-enqueues it after a loss), so a transient rule stops
        firing once the chunk has been re-dispatched that many times.
        """
        crash_shot: Optional[int] = None
        hang_shot: Optional[int] = None
        corrupt_report = False
        for index, rule in enumerate(self.rules):
            if rule.site not in PROCESS_SITES:
                continue
            if rule.failures != PERSISTENT and attempt >= rule.failures:
                continue  # transient fault already spent its attempts
            for shot in range(start, stop):
                if not rule.applies_to_shot(shot, self.seed, index):
                    continue
                if rule.site == "worker_crash":
                    if crash_shot is None or shot < crash_shot:
                        crash_shot = shot
                elif rule.site == "worker_hang":
                    if hang_shot is None or shot < hang_shot:
                        hang_shot = shot
                else:  # ipc_corrupt poisons the whole report, any shot triggers
                    corrupt_report = True
                break  # first poisoned shot in range decides for this rule
        return ProcessFaultDecision(crash_shot, hang_shot, corrupt_report)


@dataclass(frozen=True)
class ProcessFaultDecision:
    """What the chaos layer does to one dispatched worker chunk."""

    crash_shot: Optional[int] = None
    hang_shot: Optional[int] = None
    corrupt_report: bool = False

    @property
    def is_inert(self) -> bool:
        return (
            self.crash_shot is None
            and self.hang_shot is None
            and not self.corrupt_report
        )


@dataclass
class InjectorStats:
    faults_raised: int = 0
    records_corrupted: int = 0
    timeouts_armed: int = 0


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-shot contexts and keeps stats.

    Stats mutation goes through the ``note_*`` methods under a lock:
    shot contexts may fire from scheduler worker threads concurrently
    (see :mod:`repro.runtime.schedulers`)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = InjectorStats()
        self._lock = threading.Lock()

    def note_fault_raised(self, count: int = 1) -> None:
        """Count raised faults (``count`` lets a scheduler merge a whole
        worker process's tally in one call)."""
        with self._lock:
            self.stats.faults_raised += count

    def note_record_corrupted(self) -> None:
        with self._lock:
            self.stats.records_corrupted += 1

    def note_timeout_armed(self) -> None:
        with self._lock:
            self.stats.timeouts_armed += 1

    def context(self, shot: int) -> "ShotFaultContext":
        # Process-level sites are the worker loop's business (see
        # FaultPlan.process_decision); keeping them out of the per-shot
        # context means a worker-chaos plan leaves every interpreter
        # attempt untouched, which is what makes re-dispatched counts
        # bit-identical to a serial run.
        applicable = [
            rule
            for index, rule in enumerate(self.plan.rules)
            if rule.site not in PROCESS_SITES
            and rule.applies_to_shot(shot, self.plan.seed, index)
        ]
        return ShotFaultContext(self, shot, applicable)


class ShotFaultContext:
    """The fault decisions for one shot, re-armed per attempt.

    ``check(site)`` is the hot-path entry: a dict lookup that returns
    immediately when nothing is armed, so the clean-path overhead of the
    wrapper stays negligible (measured in ``bench_resilience.py``).
    """

    def __init__(
        self, injector: FaultInjector, shot: int, applicable: List[FaultRule]
    ):
        self._injector = injector
        self.shot = shot
        self._applicable = applicable
        self._armed: Dict[str, FaultRule] = {}
        self._attempt = 0

    @property
    def is_inert(self) -> bool:
        """No rule poisons this shot at all (the wrapper can be skipped)."""
        return not self._applicable

    def begin_attempt(self, attempt: int, backend_name: str, noisy: bool = False) -> None:
        self._attempt = attempt
        armed: Dict[str, FaultRule] = {}
        for rule in self._applicable:
            if not rule.matches_level(backend_name, noisy):
                continue
            if rule.failures != PERSISTENT and attempt >= rule.failures:
                continue  # transient fault already spent its failures
            armed[rule.site] = rule
        self._armed = armed

    # -- hot-path hooks -----------------------------------------------------------
    def check(self, site: str) -> None:
        rule = self._armed.get(site)
        if rule is None:
            return
        self._injector.note_fault_raised()
        raise rule.make_error(self.shot, self._attempt)

    def intrinsic_hook(self, name: str) -> None:
        """Interpreter hook: called with each declared ``__quantum__*`` name."""
        if not self._armed:
            return
        rule = self._armed.get(f"intrinsic:{name}")
        if rule is None and name.endswith("_record_output"):
            rule = self._armed.get("output")
        if rule is not None:
            self._injector.note_fault_raised()
            raise rule.make_error(self.shot, self._attempt)

    @property
    def wants_intrinsic_hook(self) -> bool:
        return any(
            rule.site == "output" or rule.site.startswith("intrinsic:")
            for rule in self._applicable
        )

    # -- out-of-band fault classes ---------------------------------------------
    def step_limit(self, default: int) -> int:
        """Effective step budget: shrunk when a ``timeout`` rule is armed."""
        rule = self._armed.get("timeout")
        if rule is None:
            return default
        self._injector.note_timeout_armed()
        return max(0, rule.param)

    def mangle_bits(self, bits: List[int]) -> List[int]:
        """Apply silent output corruption if armed (flips the first bit)."""
        rule = self._armed.get("corrupt_output")
        if rule is None or rule.error != "corrupt" or not bits:
            return bits
        self._injector.note_record_corrupted()
        mangled = list(bits)
        mangled[0] ^= 1
        return mangled


class FaultyBackend(DelegatingBackend):
    """Backend decorator that consults a :class:`ShotFaultContext`."""

    def __init__(self, inner: SimulatorBackend, ctx: ShotFaultContext):
        super().__init__(inner)
        self._ctx = ctx

    def allocate_qubit(self) -> int:
        self._ctx.check("allocate")
        return self.inner.allocate_qubit()

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        self._ctx.check("gate")
        self.inner.apply_gate(name, qubits, params)

    def measure(self, qubit: int) -> int:
        self._ctx.check("measure")
        return self.inner.measure(qubit)

    def reset(self, qubit: int) -> None:
        self._ctx.check("reset")
        self.inner.reset(qubit)
