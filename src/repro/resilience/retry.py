"""Per-shot retry with exponential backoff and per-error-class gating.

The policy answers two questions for the executor: *should this failed
attempt be retried?* (class-based: transient infrastructure errors yes,
deterministic traps no) and *how long to wait before the retry?*
(exponential backoff with optional deterministic jitter).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, FrozenSet, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.errors import QirRuntimeError


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a shot gets, and which errors earn a retry.

    * ``max_attempts`` -- total attempts per shot (1 = no retries);
    * ``backoff_base`` / ``backoff_factor`` / ``backoff_max`` -- the delay
      before attempt *n+1* is ``base * factor**(n-1)``, capped at ``max``;
      the default base of 0 disables sleeping (simulation-friendly);
    * ``jitter`` -- fraction of the delay added as seeded random jitter,
      decorrelating retry storms without losing reproducibility;
    * ``retry_codes`` / ``no_retry_codes`` -- per-error-code overrides on
      top of each error class's own ``retryable`` flag.
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.0
    retry_codes: FrozenSet[str] = frozenset()
    no_retry_codes: FrozenSet[str] = frozenset()
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def is_retryable(self, error: "QirRuntimeError") -> bool:
        code = getattr(error, "code", None)
        if code in self.no_retry_codes:
            return False
        if code in self.retry_codes:
            return True
        return bool(getattr(error, "retryable", False))

    def should_retry(self, error: "QirRuntimeError", attempt: int) -> bool:
        """``attempt`` is the 1-based count of attempts already made."""
        if attempt >= self.max_attempts:
            return False
        return self.is_retryable(error)

    def backoff(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Delay in seconds before retrying after the ``attempt``-th failure."""
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay

    def wait(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        delay = self.backoff(attempt, rng)
        if delay > 0.0:
            self.sleep(delay)
        return delay
