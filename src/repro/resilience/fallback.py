"""Graceful degradation: demote to a cheaper/cleaner backend on failure.

A :class:`FallbackChain` is an ordered ladder of :class:`BackendLevel`\\ s.
The executor runs every shot on the current level; after ``demote_after``
consecutive shot-level failures it steps down the ladder and replays the
failing shot there.  Two demotions matter in this stack (ISSUE tentpole):

* ``StatevectorSimulator -> StabilizerSimulator`` -- only legal when the
  program is Clifford-only, checked against the QIS catalog;
* ``NoisyBackend -> clean backend`` -- drop the noise model.

Deterministic traps never demote: a program bug follows the program to
any backend.

Backends are not the only ladder.  The process scheduler's supervisor
demotes *schedulers* the same way (``scheduler:process ->
scheduler:threaded -> scheduler:serial`` after repeated worker
failures) and reports those steps through the same degraded/history
channel (its ``ChainGuard.note_scheduler_demotion``), so one failure
report shows both kinds of demotion in the order they happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Union

from repro.llvmir.module import Module
from repro.qir.catalog import QIS_PREFIX, parse_qis_name
from repro.sim.gates import is_clifford_gate

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.errors import QirRuntimeError

_MEASUREMENT_OPS = frozenset({"mz", "m", "reset", "read_result"})


def program_is_clifford(module: Module) -> bool:
    """True when every QIS function the module declares is Clifford (or a
    measurement/reset), i.e. the stabilizer backend can execute it."""
    for name in module.functions:
        if not name.startswith(QIS_PREFIX):
            continue
        entry = parse_qis_name(name)
        if entry is None:
            return False
        if entry.gate in _MEASUREMENT_OPS:
            continue
        if entry.num_params > 0 or not is_clifford_gate(entry.gate):
            return False
    return True


@dataclass(frozen=True)
class BackendLevel:
    """One rung of the ladder: a backend name plus whether noise stays on."""

    backend: str
    noisy: bool = True

    @property
    def label(self) -> str:
        return f"{self.backend}+noise" if self.noisy else self.backend


LevelLike = Union[str, BackendLevel]


def _as_level(level: LevelLike) -> BackendLevel:
    if isinstance(level, BackendLevel):
        return level
    return BackendLevel(str(level), noisy=False)


class FallbackChain:
    """Demotion ladder with consecutive-failure counting and history."""

    def __init__(self, levels: Sequence[LevelLike], demote_after: int = 2):
        if not levels:
            raise ValueError("a fallback chain needs at least one level")
        if demote_after < 1:
            raise ValueError("demote_after must be >= 1")
        self.levels: List[BackendLevel] = [_as_level(l) for l in levels]
        self.demote_after = demote_after
        self._index = 0
        self._consecutive_failures = 0
        self._clifford_ok = False
        self.history: List[str] = []

    @classmethod
    def default(
        cls, backend: str = "statevector", noisy: bool = False, demote_after: int = 2
    ) -> "FallbackChain":
        """The standard ladder: drop noise first, then go stabilizer."""
        levels: List[BackendLevel] = [BackendLevel(backend, noisy=noisy)]
        if noisy:
            levels.append(BackendLevel(backend, noisy=False))
        if backend == "statevector":
            levels.append(BackendLevel("stabilizer", noisy=False))
        return cls(levels, demote_after=demote_after)

    # -- program traits ----------------------------------------------------------
    def set_program_is_clifford(self, ok: bool) -> None:
        self._clifford_ok = ok

    def _eligible(self, level: BackendLevel) -> bool:
        if level.backend == "stabilizer":
            return self._clifford_ok
        return True

    def worker_clone(self) -> "FallbackChain":
        """A private copy for a scheduler worker process.

        Same ladder, current position, and Clifford eligibility, but a
        *fresh* history and failure count: the worker reports only the
        demotions it performed itself, so the parent can merge worker
        histories without double-counting its own (see the process
        scheduler's per-worker demotion semantics)."""
        clone = FallbackChain(self.levels, demote_after=self.demote_after)
        clone._index = self._index
        clone._clifford_ok = self._clifford_ok
        return clone

    # -- state -------------------------------------------------------------------
    @property
    def current(self) -> BackendLevel:
        return self.levels[self._index]

    @property
    def degraded(self) -> bool:
        return self._index > 0

    def note_success(self) -> None:
        self._consecutive_failures = 0

    def note_failure(self, error: "QirRuntimeError") -> bool:
        """Record a shot-level failure; returns True when the chain demoted
        (the caller should replay the shot on the new level)."""
        from repro.runtime.errors import TrapError  # avoid package-init cycle

        self._consecutive_failures += 1
        if isinstance(error, TrapError):
            return False
        if self._consecutive_failures < self.demote_after:
            return False
        for j in range(self._index + 1, len(self.levels)):
            if self._eligible(self.levels[j]):
                old = self.current.label
                self._index = j
                self._consecutive_failures = 0
                self.history.append(
                    f"{old} -> {self.current.label} "
                    f"(after {getattr(error, 'code', '?')}: {error})"
                )
                return True
        return False
