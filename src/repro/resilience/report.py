"""Structured failure records for partial-result recovery.

A resilient multi-shot run never throws away the shots that worked: it
returns the aggregated histogram of successes *plus* one
:class:`ShotFailure` per poisoned shot, so a 10 000-shot run with 3 bad
shots yields 9 997 outcomes and 3 records instead of an exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.errors import QirRuntimeError


@dataclass(frozen=True)
class ShotFailure:
    """One shot that exhausted its attempts (or failed fast on a trap)."""

    shot: int
    code: str
    error_type: str
    message: str
    attempts: int
    backend: str
    context: Optional[str] = None

    @classmethod
    def from_error(
        cls, shot: int, error: "QirRuntimeError", attempts: int, backend: str
    ) -> "ShotFailure":
        context = str(error.context) if getattr(error, "context", None) else None
        return cls(
            shot=shot,
            code=getattr(error, "code", "QIR000"),
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            backend=backend,
            context=context,
        )

    def render(self) -> str:
        line = (
            f"FAIL\tshot={self.shot}\tcode={self.code}\ttype={self.error_type}"
            f"\tattempts={self.attempts}\tbackend={self.backend}\tmsg={self.message}"
        )
        if self.context:
            line += f"\twhere={self.context}"
        return line


def render_timing_line(wall_seconds: float, successful_shots: int) -> str:
    """``TIMING`` stderr line: total wall time and successful-shot rate."""
    rate = successful_shots / wall_seconds if wall_seconds > 0 else 0.0
    return f"TIMING\twall={wall_seconds:.3f}s\tshots/sec={rate:.1f}"


def render_failure_report(
    failures: List[ShotFailure],
    per_error_counts: Dict[str, int],
    degraded: bool,
    history: Optional[List[str]] = None,
    wall_seconds: float = 0.0,
    successful_shots: int = 0,
    supervision: Optional[str] = None,
    run_id: str = "",
) -> str:
    """Human/CLI-facing multi-line report (empty string when clean).

    When timing is known (``wall_seconds > 0``) a ``TIMING`` line closes
    the report so a partial-failure run still answers "how fast was it?".
    ``supervision`` is the process scheduler's worker-failure summary
    (:meth:`~repro.runtime.schedulers.SupervisionRecord.summary`); a run
    that recovered from worker loss reports it even when every shot
    ultimately succeeded.  A known ``run_id`` opens the report with a
    ``RUN`` line so the failure text joins against the run ledger.
    """
    if not failures and not degraded and not supervision:
        return ""
    lines = [f.render() for f in failures]
    if run_id:
        lines.insert(0, f"RUN\trun_id={run_id}")
    if per_error_counts:
        summary = " ".join(f"{code}={n}" for code, n in sorted(per_error_counts.items()))
        lines.append(f"ERRORS\t{summary}")
    if supervision:
        lines.append(f"SUPERVISOR\t{supervision}")
    if degraded:
        lines.append("DEGRADED\t" + ("; ".join(history) if history else "backend fallback engaged"))
    if wall_seconds > 0:
        lines.append(render_timing_line(wall_seconds, successful_shots))
    return "\n".join(lines)
