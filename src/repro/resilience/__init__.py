"""Resilient execution for the QIR runtime (paper, Section IV).

The paper frames runtime integration as the hardest QIR adoption step: a
runtime must survive programs that trap, run away, or exceed backend
capability.  This package makes every such failure mode *injectable*
(:class:`FaultPlan` / :class:`FaultInjector`), *recoverable*
(:class:`RetryPolicy`, :class:`FallbackChain`) and *observable*
(:class:`ShotFailure`, partial-result fields on
:class:`~repro.runtime.execute.ShotsResult`).

Wiring lives in :meth:`repro.runtime.execute.QirRuntime.run_shots`::

    from repro import run_shots
    from repro.resilience import FaultPlan, RetryPolicy

    plan = FaultPlan.poison([7, 123, 999], site="gate")
    result = run_shots(qir_text, shots=1000, seed=1,
                       fault_plan=plan, retry=RetryPolicy(max_attempts=1))
    assert result.successful_shots == 997 and len(result.failed_shots) == 3
"""

from repro.resilience.faults import (
    PERSISTENT,
    PROCESS_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultyBackend,
    InjectorStats,
    ProcessFaultDecision,
    ShotFaultContext,
    corrupt_bytes,
)
from repro.resilience.fallback import (
    BackendLevel,
    FallbackChain,
    program_is_clifford,
)
from repro.resilience.report import ShotFailure, render_failure_report
from repro.resilience.retry import RetryPolicy

__all__ = [
    "PERSISTENT",
    "PROCESS_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyBackend",
    "InjectorStats",
    "ProcessFaultDecision",
    "ShotFaultContext",
    "corrupt_bytes",
    "BackendLevel",
    "FallbackChain",
    "program_is_clifford",
    "ShotFailure",
    "render_failure_report",
    "RetryPolicy",
]
