"""The IR interpreter: our stand-in for LLVM's ``lli`` (paper, Sec. III-C).

Executes one entry point of a module: classical instructions are evaluated
directly; calls to declared ``__quantum__*`` functions dispatch to the
intrinsic bindings in :mod:`repro.runtime.intrinsics`, which drive the
simulator backend.  Calls to *defined* functions recurse (full-QIR
programs may factor subroutines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.llvmir.block import BasicBlock
from repro.llvmir.function import Function
from repro.llvmir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GetElementPtrInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.llvmir.module import Module
from repro.llvmir.types import ArrayType, IntType, IRType
from repro.llvmir.values import (
    ConstantArray,
    ConstantExpr,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantPointerInt,
    ConstantString,
    ConstantUndef,
    GlobalVariable,
    Value,
)
from repro.qir.catalog import QIS_PREFIX
from repro.runtime.errors import (
    ErrorContext,
    QirRuntimeError,
    StepLimitExceeded,
    TrapError,
    UnboundFunctionError,
)
from repro.runtime.intrinsics import RT_INTRINSICS, dispatch_qis
from repro.runtime.output import OutputRecorder
from repro.runtime.qubit_manager import QubitManager
from repro.runtime.results import ResultStore
from repro.runtime.values import (
    ArrayHandle,
    GlobalPtr,
    IntPtr,
    Memory,
    QubitPtr,
    ResultPtr,
    StackPtr,
)
from repro.sim.backend import SimulatorBackend


@dataclass
class InterpreterStats:
    steps: int = 0
    quantum_calls: int = 0
    classical_calls: int = 0
    gates: int = 0
    measurements: int = 0
    branches: int = 0
    # Per-intrinsic profile (Ex. 5): populated only when the interpreter
    # runs with an enabled observer -- the per-call clock reads are not
    # free, so the default path skips them entirely.
    intrinsic_calls: Dict[str, int] = field(default_factory=dict)
    intrinsic_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "InterpreterStats") -> "InterpreterStats":
        """Accumulate ``other`` into self (for per-backend aggregation)."""
        self.steps += other.steps
        self.quantum_calls += other.quantum_calls
        self.classical_calls += other.classical_calls
        self.gates += other.gates
        self.measurements += other.measurements
        self.branches += other.branches
        for name, n in other.intrinsic_calls.items():
            self.intrinsic_calls[name] = self.intrinsic_calls.get(name, 0) + n
        for name, s in other.intrinsic_seconds.items():
            self.intrinsic_seconds[name] = self.intrinsic_seconds.get(name, 0.0) + s
        return self

    @classmethod
    def aggregate(cls, stats: "List[InterpreterStats]") -> "InterpreterStats":
        total = cls()
        for item in stats:
            total.merge(item)
        return total


def _flat_cell_count(type_: IRType) -> int:
    if isinstance(type_, ArrayType):
        return max(1, type_.count) * _flat_cell_count(type_.element)
    return 1


def _inst_summary(inst: Instruction) -> str:
    """Short instruction label for error contexts (no full IR printing)."""
    if isinstance(inst, CallInst):
        return f"call @{inst.callee.name}"
    return type(inst).__name__


class Interpreter:
    def __init__(
        self,
        module: Module,
        backend: SimulatorBackend,
        step_limit: int = 10_000_000,
        allow_on_the_fly_qubits: bool = True,
        fault_hook: Optional[Callable[[str], None]] = None,
        observer=None,
        results: Optional[ResultStore] = None,
    ):
        self.module = module
        self.backend = backend
        self.step_limit = step_limit
        # Resilience hook: called with each declared __quantum__* name so a
        # fault injector can poison intrinsic dispatch (see repro.resilience).
        self.fault_hook = fault_hook
        # Profiling (repro.obs): when an enabled observer is attached, each
        # declared-intrinsic dispatch is timed into stats.intrinsic_*.
        self.observer = observer
        self._profile_intrinsics = observer is not None and observer.enabled
        self.qubits = QubitManager(backend, allow_on_the_fly=allow_on_the_fly_qubits)
        # Pluggable result store: the sampling fast path and the batched
        # scheduler substitute stores with deferred/vectorised semantics.
        self.results = results if results is not None else ResultStore()
        self.output = OutputRecorder()
        self.messages: List[str] = []
        self.stats = InterpreterStats()
        self._call_depth = 0

    # -- entry ---------------------------------------------------------------
    def run(self, entry: Optional[str] = None) -> object:
        """Execute an entry point (default: the module's single entry point)."""
        fn = self._find_entry(entry)
        required = fn.get_attribute("required_num_qubits")
        if required is not None:
            self.qubits.reserve_static(int(required))
        return self.call_function(fn, [])

    def _find_entry(self, entry: Optional[str]) -> Function:
        if entry is not None:
            fn = self.module.get_function(entry)
            if fn is None or fn.is_declaration:
                raise QirRuntimeError(f"no defined function @{entry}")
            return fn
        entry_points = self.module.entry_points()
        if len(entry_points) == 1:
            return entry_points[0]
        if not entry_points:
            defined = self.module.defined_functions()
            if len(defined) == 1:
                return defined[0]
            raise QirRuntimeError(
                "module has no entry_point attribute and multiple definitions; "
                "pass entry= explicitly"
            )
        raise QirRuntimeError(
            f"module has {len(entry_points)} entry points; pass entry= explicitly"
        )

    # -- function execution ------------------------------------------------------
    def call_function(self, fn: Function, args: List[object]) -> object:
        if fn.is_declaration:
            return self._call_declared(fn, args)
        if self._call_depth > 1000:
            raise QirRuntimeError(f"call depth exceeded at @{fn.name}")
        self._call_depth += 1
        try:
            return self._execute_body(fn, args)
        finally:
            self._call_depth -= 1

    def _call_declared(self, fn: Function, args: List[object]) -> object:
        name = fn.name or ""
        if self.fault_hook is not None:
            self.fault_hook(name)
        if not self._profile_intrinsics:
            return self._dispatch_declared(name, args)
        t0 = perf_counter()
        try:
            return self._dispatch_declared(name, args)
        finally:
            elapsed = perf_counter() - t0
            stats = self.stats
            stats.intrinsic_calls[name] = stats.intrinsic_calls.get(name, 0) + 1
            stats.intrinsic_seconds[name] = (
                stats.intrinsic_seconds.get(name, 0.0) + elapsed
            )

    def _dispatch_declared(self, name: str, args: List[object]) -> object:
        if name.startswith(QIS_PREFIX):
            return dispatch_qis(self, name, args)
        intrinsic = RT_INTRINSICS.get(name)
        if intrinsic is not None:
            self.stats.quantum_calls += 1
            return intrinsic(self, args)
        raise UnboundFunctionError(
            f"declared function @{name} has no runtime binding"
        )

    def _execute_body(self, fn: Function, args: List[object]) -> object:
        frame: Dict[Value, object] = {}
        for formal, actual in zip(fn.arguments, args):
            frame[formal] = actual

        block = fn.entry_block
        prev_block: Optional[BasicBlock] = None

        while True:
            # Phi nodes read their values *simultaneously* on block entry.
            phis = block.phis()
            if phis:
                staged = [
                    (phi, self._eval(phi.incoming_for(prev_block), frame))
                    for phi in phis
                ]
                for phi, value in staged:
                    frame[phi] = value

            for inst in block.instructions[block.first_non_phi_index() :]:
                self.stats.steps += 1
                if self.stats.steps > self.step_limit:
                    raise StepLimitExceeded(
                        f"exceeded {self.step_limit} interpreter steps",
                        context=ErrorContext(fn.name, block.name, _inst_summary(inst)),
                    )

                if isinstance(inst, ReturnInst):
                    if inst.return_value is None:
                        return None
                    return self._eval(inst.return_value, frame)
                if isinstance(inst, BranchInst):
                    prev_block, block = block, inst.target
                    self.stats.branches += 1
                    break
                if isinstance(inst, CondBranchInst):
                    cond = self._eval(inst.condition, frame)
                    target = inst.true_target if cond else inst.false_target
                    prev_block, block = block, target
                    self.stats.branches += 1
                    break
                if isinstance(inst, SwitchInst):
                    value = self._eval(inst.value, frame)
                    target = inst.default
                    for const, case_block in inst.cases:
                        if self._eval(const, frame) == value:
                            target = case_block
                            break
                    prev_block, block = block, target
                    self.stats.branches += 1
                    break
                if isinstance(inst, UnreachableInst):
                    raise TrapError(
                        f"reached 'unreachable' in @{fn.name}",
                        context=ErrorContext(fn.name, block.name, "unreachable"),
                    )

                try:
                    result = self._execute(inst, frame)
                except QirRuntimeError as error:
                    # Deepest frame wins: attach_context is a no-op once set.
                    error.attach_context(
                        ErrorContext(fn.name, block.name, _inst_summary(inst))
                    )
                    raise
                if not inst.type.is_void:
                    frame[inst] = result
            else:
                raise QirRuntimeError(
                    f"block %{block.name} in @{fn.name} fell through without a terminator"
                )

    # -- instruction execution --------------------------------------------------
    def _execute(self, inst: Instruction, frame: Dict[Value, object]) -> object:
        if isinstance(inst, CallInst):
            args = [self._eval(op, frame) for op in inst.operands]
            callee = inst.callee
            if not (callee.name or "").startswith("__quantum__"):
                self.stats.classical_calls += 1
            return self.call_function(callee, args)
        if isinstance(inst, BinaryInst):
            return self._binary(inst, frame)
        if isinstance(inst, ICmpInst):
            return self._icmp(inst, frame)
        if isinstance(inst, FCmpInst):
            return self._fcmp(inst, frame)
        if isinstance(inst, CastInst):
            return self._cast(inst, frame)
        if isinstance(inst, SelectInst):
            cond = self._eval(inst.condition, frame)
            chosen = inst.true_value if cond else inst.false_value
            return self._eval(chosen, frame)
        if isinstance(inst, AllocaInst):
            return StackPtr(Memory(_flat_cell_count(inst.allocated_type)))
        if isinstance(inst, LoadInst):
            pointer = self._eval(inst.pointer, frame)
            return self._load(pointer, inst.type)
        if isinstance(inst, StoreInst):
            value = self._eval(inst.value, frame)
            pointer = self._eval(inst.pointer, frame)
            self._store(pointer, value)
            return None
        if isinstance(inst, GetElementPtrInst):
            return self._gep(inst, frame)
        raise QirRuntimeError(f"cannot interpret instruction {inst!r}")

    def _load(self, pointer: object, type_: IRType) -> object:
        if isinstance(pointer, StackPtr):
            value = pointer.load()
            if value is None:
                raise QirRuntimeError("load of uninitialised stack slot")
            return value
        if isinstance(pointer, GlobalPtr):
            if isinstance(type_, IntType) and type_.bits == 8:
                return pointer.load_byte()
            raise QirRuntimeError(f"unsupported global load of type {type_}")
        raise QirRuntimeError(f"load through non-memory pointer {pointer!r}")

    def _store(self, pointer: object, value: object) -> None:
        if isinstance(pointer, StackPtr):
            pointer.store(value)
            return
        raise QirRuntimeError(f"store through non-memory pointer {pointer!r}")

    def _gep(self, inst: GetElementPtrInst, frame: Dict[Value, object]) -> object:
        pointer = self._eval(inst.pointer, frame)
        indices = [int(self._eval(op, frame)) for op in inst.indices]  # type: ignore[arg-type]
        offset = _gep_offset(inst.source_type, indices)
        if isinstance(pointer, StackPtr):
            return pointer.offset_by(offset)
        if isinstance(pointer, GlobalPtr):
            return pointer.offset_by(offset)
        raise QirRuntimeError(f"getelementptr on non-memory pointer {pointer!r}")

    def _binary(self, inst: BinaryInst, frame: Dict[Value, object]) -> object:
        a = self._eval(inst.lhs, frame)
        b = self._eval(inst.rhs, frame)
        op = inst.opcode
        if op.startswith("f"):
            x, y = float(a), float(b)  # type: ignore[arg-type]
            if op == "fadd":
                return x + y
            if op == "fsub":
                return x - y
            if op == "fmul":
                return x * y
            if op == "fdiv":
                return x / y if y != 0.0 else math.copysign(math.inf, x) if x else math.nan
            if op == "frem":
                return math.fmod(x, y) if y != 0.0 else math.nan
        itype = inst.type
        assert isinstance(itype, IntType)
        x, y = int(a), int(b)  # type: ignore[arg-type]
        if op == "add":
            return itype.wrap(x + y)
        if op == "sub":
            return itype.wrap(x - y)
        if op == "mul":
            return itype.wrap(x * y)
        if op == "sdiv":
            if y == 0:
                raise TrapError("sdiv by zero")
            return itype.wrap(int(x / y))  # C-style truncation
        if op == "udiv":
            if y == 0:
                raise TrapError("udiv by zero")
            return itype.wrap(itype.to_unsigned(x) // itype.to_unsigned(y))
        if op == "srem":
            if y == 0:
                raise TrapError("srem by zero")
            return itype.wrap(x - int(x / y) * y)
        if op == "urem":
            if y == 0:
                raise TrapError("urem by zero")
            return itype.wrap(itype.to_unsigned(x) % itype.to_unsigned(y))
        if op == "and":
            return itype.wrap(x & y)
        if op == "or":
            return itype.wrap(x | y)
        if op == "xor":
            return itype.wrap(x ^ y)
        if op == "shl":
            return itype.wrap(x << (y % itype.bits))
        if op == "lshr":
            return itype.wrap(itype.to_unsigned(x) >> (y % itype.bits))
        if op == "ashr":
            return itype.wrap(x >> (y % itype.bits))
        raise QirRuntimeError(f"unhandled binary opcode {op}")

    def _icmp(self, inst: ICmpInst, frame: Dict[Value, object]) -> int:
        a = self._eval(inst.lhs, frame)
        b = self._eval(inst.rhs, frame)
        pred = inst.predicate
        if isinstance(a, (IntPtr, QubitPtr, ResultPtr, StackPtr, GlobalPtr)) or isinstance(
            b, (IntPtr, QubitPtr, ResultPtr, StackPtr, GlobalPtr)
        ):
            if pred == "eq":
                return int(a == b)
            if pred == "ne":
                return int(a != b)
            raise QirRuntimeError(f"ordered icmp {pred} on pointers")
        x, y = int(a), int(b)  # type: ignore[arg-type]
        lhs_type = inst.lhs.type
        if pred in ("ugt", "uge", "ult", "ule") and isinstance(lhs_type, IntType):
            x = lhs_type.to_unsigned(x)
            y = lhs_type.to_unsigned(y)
        table = {
            "eq": x == y,
            "ne": x != y,
            "sgt": x > y,
            "sge": x >= y,
            "slt": x < y,
            "sle": x <= y,
            "ugt": x > y,
            "uge": x >= y,
            "ult": x < y,
            "ule": x <= y,
        }
        return int(table[pred])

    def _fcmp(self, inst: FCmpInst, frame: Dict[Value, object]) -> int:
        x = float(self._eval(inst.lhs, frame))  # type: ignore[arg-type]
        y = float(self._eval(inst.rhs, frame))  # type: ignore[arg-type]
        pred = inst.predicate
        unordered = math.isnan(x) or math.isnan(y)
        if pred == "true":
            return 1
        if pred == "false":
            return 0
        if pred == "ord":
            return int(not unordered)
        if pred == "uno":
            return int(unordered)
        base = {
            "eq": x == y,
            "gt": x > y,
            "ge": x >= y,
            "lt": x < y,
            "le": x <= y,
            "ne": x != y,
        }
        key = pred[1:]
        if pred.startswith("o"):
            return int(not unordered and base[key])
        return int(unordered or base[key])

    def _cast(self, inst: CastInst, frame: Dict[Value, object]) -> object:
        value = self._eval(inst.value, frame)
        op = inst.opcode
        if op == "trunc":
            assert isinstance(inst.type, IntType)
            return inst.type.wrap(int(value))  # type: ignore[arg-type]
        if op == "zext":
            src = inst.value.type
            assert isinstance(src, IntType) and isinstance(inst.type, IntType)
            return inst.type.wrap(src.to_unsigned(int(value)))  # type: ignore[arg-type]
        if op == "sext":
            assert isinstance(inst.type, IntType)
            return inst.type.wrap(int(value))  # type: ignore[arg-type]
        if op == "sitofp":
            return float(int(value))  # type: ignore[arg-type]
        if op == "uitofp":
            src = inst.value.type
            assert isinstance(src, IntType)
            return float(src.to_unsigned(int(value)))  # type: ignore[arg-type]
        if op in ("fptosi", "fptoui"):
            assert isinstance(inst.type, IntType)
            return inst.type.wrap(int(float(value)))  # type: ignore[arg-type]
        if op == "inttoptr":
            return IntPtr(int(value))  # type: ignore[arg-type]
        if op == "ptrtoint":
            if isinstance(value, IntPtr):
                assert isinstance(inst.type, IntType)
                return inst.type.wrap(value.address)
            raise QirRuntimeError(f"ptrtoint of non-integer pointer {value!r}")
        if op == "bitcast":
            return value
        raise QirRuntimeError(f"unhandled cast {op}")

    # -- operand evaluation --------------------------------------------------------
    def _eval(self, value: Value, frame: Dict[Value, object]) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, ConstantNull):
            return IntPtr(0)
        if isinstance(value, ConstantPointerInt):
            return IntPtr(value.address)
        if isinstance(value, ConstantUndef):
            return 0
        if isinstance(value, GlobalVariable):
            return self._global_pointer(value)
        if isinstance(value, Function):
            raise QirRuntimeError("function pointers are not interpretable")
        if isinstance(value, ConstantExpr):
            return self._constant_expr(value)
        if isinstance(value, (ConstantString, ConstantArray)):
            raise QirRuntimeError("aggregate constant used as scalar operand")
        if value in frame:
            return frame[value]
        raise QirRuntimeError(f"evaluation of unbound value {value!r}")

    def _global_pointer(self, gv: GlobalVariable) -> GlobalPtr:
        init = gv.initializer
        if isinstance(init, ConstantString):
            return GlobalPtr(init.data, 0, gv.name)
        if init is None:
            return GlobalPtr(b"", 0, gv.name)
        raise QirRuntimeError(f"unsupported global initialiser for @{gv.name}")

    def _constant_expr(self, expr: ConstantExpr) -> object:
        if expr.opcode == "getelementptr":
            base = expr.operands[0]
            indices = [
                op.value if isinstance(op, ConstantInt) else 0 for op in expr.operands[1:]
            ]
            pointer = self._eval(base, {})
            offset = _gep_offset(expr.extra[0], [int(i) for i in indices])
            if isinstance(pointer, GlobalPtr):
                return pointer.offset_by(offset)
            raise QirRuntimeError("constant GEP on non-global")
        if expr.opcode == "inttoptr":
            op = expr.operands[0]
            if isinstance(op, ConstantInt):
                return IntPtr(op.value)
        if expr.opcode == "ptrtoint":
            op = expr.operands[0]
            inner = self._eval(op, {})
            if isinstance(inner, IntPtr):
                return inner.address
        if expr.opcode == "bitcast":
            return self._eval(expr.operands[0], {})
        raise QirRuntimeError(f"unsupported constant expression {expr.opcode}")


def _gep_offset(source_type: IRType, indices: List[int]) -> int:
    """Flattened cell offset for a GEP, in *cells* of the leaf scalar type."""
    if not indices:
        return 0
    offset = indices[0] * _flat_cell_count(source_type)
    current = source_type
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
            offset += index * _flat_cell_count(current)
        else:
            raise QirRuntimeError(f"GEP into non-aggregate type {current}")
    return offset
