"""The compile phase: parse -> verify -> passes -> analysis -> ExecutionPlan.

The paper's execution story is "link a runtime, then run" (``lli``-style),
which conflates two phases with very different cost profiles: *compiling*
a QIR program (frontend + optimisation + static analysis -- expensive,
shot-independent) and *executing* it (per-shot simulation).  QIR-Alliance
tooling and the dataflow-IR line of work treat the program as a compiled
artifact that is analysed once and executed many times; this module is
that artifact.

An :class:`ExecutionPlan` is the frozen output of one compilation:

* the parsed (and optionally pass-optimised, verified) module,
* a **content-hash identity** -- ``source_hash`` is the SHA-256 of the
  textual IR, and :attr:`ExecutionPlan.key` extends it with the pipeline
  name, backend, and entry point, so a plan cache
  (:class:`~repro.runtime.session.QirSession`) can answer "have I
  compiled exactly this configuration before?" without re-parsing,
* precomputed entry-point / profile / Clifford analysis so the execute
  phase (:mod:`repro.runtime.schedulers`) never re-derives them per shot.

Plans are immutable by convention: the execute phase treats the module as
read-only, which is what makes one plan safely shareable across repeated
``run_shots`` calls and across scheduler worker threads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional, Tuple, Union

from repro.llvmir.module import Module
from repro.llvmir.parser import parse_assembly
from repro.llvmir.printer import print_module
from repro.llvmir.verifier import verify_module
from repro.obs.observer import as_observer
from repro.resilience.fallback import program_is_clifford
from repro.runtime.sampling_fastpath import SampledDistribution
from repro.sim.fusion import FusedProgram, specialize_module

PipelineLike = Union[None, str, Callable]

#: Wire-format version of :meth:`ExecutionPlan.to_bytes`.  Bump on any
#: incompatible layout change; decoders reject any *other* version --
#: newer (unknown layout) and older (missing blocks) alike fail closed
#: to a recompile -- and the disk cache
#: (:mod:`repro.runtime.plancache`) keys on it so a format bump silently
#: invalidates every persisted plan.  v2 added the optional cached
#: sampling ``distribution`` block.
PLAN_WIRE_VERSION = 2


class PlanDecodeError(ValueError):
    """A serialized plan could not be decoded (corrupt, truncated, or
    written by a newer wire format).  Callers holding the original source
    should treat this as a cache miss and recompile."""


def content_hash(program: Union[str, Module]) -> str:
    """SHA-256 identity of a program's textual IR.

    Text sources hash directly; in-memory modules hash their printed
    form, so a module and its round-tripped text agree only when the
    printer is the source of both -- callers that care about cache hits
    should prefer passing the original text.
    """
    text = program if isinstance(program, str) else print_module(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def plan_key(
    source_hash: str,
    pipeline: Optional[str],
    backend: str,
    entry: Optional[str],
) -> str:
    """The plan cache key: content hash + pipeline name + backend (+ entry)."""
    return f"{source_hash}:{pipeline or '-'}:{backend}:{entry or '-'}"


def _resolve_pipeline(pipeline: PipelineLike) -> Tuple[Optional[str], Optional[Callable]]:
    """Normalise a pipeline argument to ``(name, factory)``.

    Accepts ``None``, a name from the qir-opt registry, or a callable
    returning a configured :class:`~repro.passes.manager.PassManager`.
    """
    if pipeline is None:
        return None, None
    if callable(pipeline):
        name = getattr(pipeline, "__name__", "custom")
        return name, pipeline
    # Imported lazily: the tools layer imports the runtime, so a top-level
    # import here would close a package cycle.
    from repro.tools.qir_opt import PIPELINES

    factory = PIPELINES.get(str(pipeline))
    if factory is None:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; choose from {', '.join(sorted(PIPELINES))}"
        )
    return str(pipeline), factory


class _DistributionCell:
    """One mutable slot inside the otherwise-frozen plan.  Kept out of
    equality/repr; exists so a warm distribution can attach to a plan
    already held by session caches without rebuilding it."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[SampledDistribution] = None):
        self.value = value


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled QIR program, frozen for repeated execution.

    The execute phase treats ``module`` as read-only; everything else is
    precomputed static analysis.  ``key`` is the cache identity
    (content hash + pipeline + backend + entry).
    """

    module: Module = field(repr=False)
    source_hash: str
    key: str
    backend: str = "statevector"
    pipeline: Optional[str] = None
    entry: Optional[str] = None
    # -- static analysis -------------------------------------------------------
    entry_point: Optional[str] = None
    profile: Optional[str] = None
    required_qubits: Optional[int] = None
    required_results: Optional[int] = None
    is_clifford: bool = False
    # -- provenance ------------------------------------------------------------
    compile_seconds: float = 0.0
    verified: bool = False
    # -- specialization --------------------------------------------------------
    #: Fused kernel schedule (derived analysis -- recomputed at compile
    #: time and on decode, never serialized; ``None`` when the program is
    #: not specializable or the backend is not the statevector).
    fused: Optional[FusedProgram] = field(default=None, compare=False, repr=False)
    #: Mutable cell holding the memoized sampling distribution.  The plan
    #: itself stays frozen; the cell fills in at most once, after the
    #: first successful fast-path run (see :meth:`attach_distribution`).
    _dist: "_DistributionCell" = field(
        default_factory=lambda: _DistributionCell(), compare=False, repr=False
    )

    @property
    def short_hash(self) -> str:
        return self.source_hash[:12]

    @property
    def distribution(self) -> Optional[SampledDistribution]:
        return self._dist.value

    def attach_distribution(self, distribution: SampledDistribution) -> None:
        """Memoize the fast path's terminal distribution (idempotent --
        the first attachment wins; the plan's identity never changes)."""
        if self._dist.value is None:
            self._dist.value = distribution

    def describe(self) -> str:
        parts = [
            f"plan {self.short_hash}",
            f"backend={self.backend}",
            f"pipeline={self.pipeline or '-'}",
            f"entry={self.entry_point or self.entry or '?'}",
        ]
        if self.required_qubits is not None:
            parts.append(f"qubits={self.required_qubits}")
        if self.is_clifford:
            parts.append("clifford")
        return " ".join(parts)

    # -- serialization ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the plan for another process (or the disk cache).

        The module travels as its printed IR plus a SHA-256 of that text,
        so a decoder can prove integrity before parsing; every analysis
        field rides along verbatim, which is the point -- a deserialized
        plan skips verify, passes, and analysis entirely.  Note the
        printed text is the *compiled* module (post-pipeline), while
        ``source_hash`` stays the identity of the original source.
        """
        module_text = print_module(self.module)
        payload = {
            "wire_version": PLAN_WIRE_VERSION,
            "module_text": module_text,
            "module_sha256": hashlib.sha256(
                module_text.encode("utf-8")
            ).hexdigest(),
            "source_hash": self.source_hash,
            "key": self.key,
            "backend": self.backend,
            "pipeline": self.pipeline,
            "entry": self.entry,
            "entry_point": self.entry_point,
            "profile": self.profile,
            "required_qubits": self.required_qubits,
            "required_results": self.required_results,
            "is_clifford": self.is_clifford,
            "compile_seconds": self.compile_seconds,
            "verified": self.verified,
            "distribution": (
                None
                if self.distribution is None
                else {"entries": self.distribution.to_entries()}
            ),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExecutionPlan":
        """Decode a plan serialized by :meth:`to_bytes`.

        Raises :class:`PlanDecodeError` on anything suspect -- malformed
        JSON, a newer wire version, a module text whose hash does not
        match -- never a half-reconstructed plan.  The module text is
        re-parsed (cheap next to verify + passes + analysis, which are
        all skipped because their results ride in the payload).
        """
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise PlanDecodeError(f"not a serialized plan: {error}") from error
        if not isinstance(payload, dict):
            raise PlanDecodeError("not a serialized plan: expected a JSON object")
        version = payload.get("wire_version")
        if not isinstance(version, int):
            raise PlanDecodeError("serialized plan is missing wire_version")
        if version != PLAN_WIRE_VERSION:
            # Older payloads lack blocks this decoder expects (v2 added the
            # distribution); newer ones may lay fields out differently.
            # Either way the caller holds the source -- fail closed.
            raise PlanDecodeError(
                f"plan wire_version {version} does not match supported "
                f"({PLAN_WIRE_VERSION}); recompile from source"
            )
        text = payload.get("module_text")
        if not isinstance(text, str):
            raise PlanDecodeError("serialized plan is missing module_text")
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest != payload.get("module_sha256"):
            raise PlanDecodeError(
                "module text does not match its recorded hash (corrupt entry)"
            )
        try:
            module = parse_assembly(text)
        except Exception as error:
            raise PlanDecodeError(
                f"serialized module text failed to parse: {error}"
            ) from error
        dist_block = payload.get("distribution")
        distribution = None
        if dist_block is not None:
            # Fail closed: a malformed distribution means a corrupt entry,
            # and serving bad probabilities silently is worse than a
            # recompile.
            if not isinstance(dist_block, dict):
                raise PlanDecodeError("distribution block must be an object")
            try:
                distribution = SampledDistribution.from_entries(
                    dist_block.get("entries")
                )
            except ValueError as error:
                raise PlanDecodeError(
                    f"corrupt distribution block: {error}"
                ) from error
        try:
            backend = str(payload.get("backend", "statevector"))
            entry = payload.get("entry")
            return cls(
                module=module,
                source_hash=str(payload["source_hash"]),
                key=str(payload["key"]),
                backend=backend,
                pipeline=payload.get("pipeline"),
                entry=entry,
                entry_point=payload.get("entry_point"),
                profile=payload.get("profile"),
                required_qubits=payload.get("required_qubits"),
                required_results=payload.get("required_results"),
                is_clifford=bool(payload.get("is_clifford", False)),
                compile_seconds=float(payload.get("compile_seconds", 0.0)),
                verified=bool(payload.get("verified", False)),
                # The fused schedule is derived analysis: recomputing it
                # from the decoded module is cheap and avoids serializing
                # NumPy matrices.
                fused=(
                    specialize_module(module, entry)
                    if backend == "statevector"
                    else None
                ),
                _dist=_DistributionCell(distribution),
            )
        except KeyError as error:
            raise PlanDecodeError(f"serialized plan is missing {error}") from error


def _analyze_entry(
    module: Module, entry: Optional[str]
) -> Tuple[Optional[str], Optional[str], Optional[int], Optional[int]]:
    """Resolve the entry point and read its attributes -- tolerant: an
    unresolvable entry stays ``None`` and the interpreter raises its usual
    error at execution time, keeping compile-phase behaviour additive."""
    fn = None
    if entry is not None:
        candidate = module.get_function(entry)
        if candidate is not None and not candidate.is_declaration:
            fn = candidate
    else:
        entry_points = module.entry_points()
        if len(entry_points) == 1:
            fn = entry_points[0]
        elif not entry_points:
            defined = module.defined_functions()
            if len(defined) == 1:
                fn = defined[0]
    if fn is None:
        return None, None, None, None

    def _int_attr(key: str) -> Optional[int]:
        value = fn.get_attribute(key)
        try:
            return int(value) if value is not None else None
        except (TypeError, ValueError):
            return None

    return (
        fn.name,
        fn.get_attribute("qir_profiles"),
        _int_attr("required_num_qubits"),
        _int_attr("required_num_results"),
    )


def compile_plan(
    program: Union[str, Module],
    *,
    pipeline: PipelineLike = None,
    backend: str = "statevector",
    entry: Optional[str] = None,
    verify: bool = True,
    observer=None,
    module: Optional[Module] = None,
    source_hash: Optional[str] = None,
) -> ExecutionPlan:
    """Compile one program into a frozen :class:`ExecutionPlan`.

    ``module``/``source_hash`` let a caching front door (QirSession) hand
    in an already-parsed module for the pipeline-free case; otherwise the
    program is parsed (and hashed) here.  Passing ``pipeline`` always
    compiles a *fresh* parse even when ``module`` is given, because passes
    mutate IR in place and a cached pristine module must stay pristine.
    """
    obs = as_observer(observer)
    t0 = perf_counter()
    with obs.span("plan.compile", backend=backend, pipeline=str(pipeline or "-")):
        pipeline_name, factory = _resolve_pipeline(pipeline)
        digest = source_hash
        if digest is None:
            digest = content_hash(program)
        if module is not None and factory is None:
            compiled = module
        elif isinstance(program, Module):
            # A caller handing in a Module accepts in-place optimisation
            # (the established qir-run --opt behaviour).
            compiled = program
        else:
            # Pipelines mutate IR in place: run them on a private parse so
            # any cached pristine module stays pristine.
            compiled = parse_assembly(program, observer=obs)
        if verify:
            verify_module(compiled)
        if factory is not None:
            with obs.span("plan.passes", pipeline=pipeline_name):
                factory().run(compiled, observer=obs)
            if verify:
                verify_module(compiled)
        entry_point, profile, req_qubits, req_results = _analyze_entry(
            compiled, entry
        )
        clifford = program_is_clifford(compiled)
        fused = (
            specialize_module(compiled, entry)
            if backend == "statevector"
            else None
        )
    elapsed = perf_counter() - t0
    if obs.enabled:
        obs.inc("plan.compiled", pipeline=pipeline_name or "-", backend=backend)
        obs.observe("plan.compile_seconds", elapsed)
        if fused is not None:
            obs.inc("plan.fusion.kernels", fused.kernels)
            if fused.prefix_gates:
                obs.inc("plan.clifford_prefix.gates", fused.prefix_gates)
    return ExecutionPlan(
        module=compiled,
        source_hash=digest,
        key=plan_key(digest, pipeline_name, backend, entry),
        backend=backend,
        pipeline=pipeline_name,
        entry=entry,
        entry_point=entry_point,
        profile=profile,
        required_qubits=req_qubits,
        required_results=req_results,
        is_clifford=clifford,
        compile_seconds=elapsed,
        verified=verify,
        fused=fused,
    )
