"""QirSession: the compile-once/execute-many front door.

The paper's execution model re-runs the whole frontend on every call; a
server-style deployment (the ROADMAP's millions-of-users north star)
cannot afford that.  A :class:`QirSession` owns two content-hash-keyed
LRU caches:

* a **module cache** (``source_hash -> parsed Module``), so re-parsing
  the same text is a dict hit;
* a **plan cache** (``source_hash:pipeline:backend:entry ->
  ExecutionPlan``), so repeated ``run_shots`` calls on the same source
  skip parse, verify, pass pipeline, and static analysis entirely.

Both caches report ``cache.{module,plan}.{hit,miss}`` counters and
``session.cache_*`` spans through the runtime's observer, so profile
output answers "did the second call actually skip the frontend?".

Below the in-process LRU sits an optional **disk tier**
(:class:`~repro.runtime.plancache.PlanCache`): pass
``plan_cache_dir=`` (or set the ``QIR_PLAN_CACHE`` environment
variable) and compiled plans persist across processes -- a fresh
process warm-starts with a ``cache.plan_disk.hit`` instead of
re-running the frontend.  Lookup order is memory LRU, then disk, then
compile (writing through to both tiers).

Thread-safety: lookups and insertions happen under one lock, and cached
plans are frozen (the execute phase treats their modules as read-only),
so one session can serve concurrent callers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from time import perf_counter
from typing import Dict, Optional, Union

from repro.llvmir.module import Module
from repro.obs.ledger import RunLedger, RunRecord, ledger_dir_from_env
from repro.obs.runctx import RunContext
from repro.runtime.execute import ExecutionResult, QirRuntime, ShotsResult
from repro.runtime.plan import (
    ExecutionPlan,
    PipelineLike,
    compile_plan,
    content_hash,
    plan_key,
)
from repro.runtime.plancache import CACHE_ENV, PlanCache, VerifyReport

ProgramLike = Union[str, Module, ExecutionPlan]


class QirSession:
    """A caching execution session over one :class:`QirRuntime`.

    >>> session = QirSession(seed=7)
    >>> session.run_shots(qir_text, shots=100)   # compiles
    >>> session.run_shots(qir_text, shots=100)   # plan cache hit: no parse

    Construct with an existing runtime (``QirSession(runtime=rt)``) or
    with :class:`QirRuntime` keyword arguments, which are forwarded.
    """

    def __init__(
        self,
        runtime: Optional[QirRuntime] = None,
        *,
        module_cache_size: int = 32,
        plan_cache_size: int = 32,
        plan_cache_dir: Optional[str] = None,
        ledger_dir: Optional[str] = None,
        **runtime_kwargs,
    ):
        if runtime is not None and runtime_kwargs:
            raise ValueError(
                "pass either an existing runtime or QirRuntime kwargs, not both"
            )
        self.runtime = runtime if runtime is not None else QirRuntime(**runtime_kwargs)
        self.observer = self.runtime.observer
        if module_cache_size < 1 or plan_cache_size < 1:
            raise ValueError("cache sizes must be >= 1")
        # Disk tier: explicit argument wins; otherwise the QIR_PLAN_CACHE
        # environment variable opts in.  Sessions without either stay
        # purely in-process (hermetic for tests and libraries).
        if plan_cache_dir is None:
            plan_cache_dir = os.environ.get(CACHE_ENV, "").strip() or None
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(plan_cache_dir, observer=self.observer)
            if plan_cache_dir
            else None
        )
        # Run ledger (repro.obs.ledger): same opt-in shape as the disk
        # plan cache -- explicit argument, then the QIR_LEDGER variable.
        if ledger_dir is None:
            ledger_dir = ledger_dir_from_env()
        self.ledger: Optional[RunLedger] = (
            RunLedger(ledger_dir, observer=self.observer) if ledger_dir else None
        )
        self._module_cache_size = module_cache_size
        self._plan_cache_size = plan_cache_size
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._plans: "OrderedDict[str, ExecutionPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = {
            "module": {"hits": 0, "misses": 0},
            "plan": {"hits": 0, "misses": 0},
        }

    # -- module cache ---------------------------------------------------------
    def parse(self, program: Union[str, Module]) -> Module:
        """Parse (or fetch the cached parse of) a program's text.

        Module instances pass through untouched -- the caller already
        owns the parse, and hashing would require printing it.
        """
        if isinstance(program, Module):
            return program
        digest = content_hash(program)
        return self._parse_cached(program, digest)

    def _parse_cached(self, text: str, digest: str) -> Module:
        obs = self.observer
        with self._lock:
            module = self._modules.get(digest)
            if module is not None:
                self._modules.move_to_end(digest)
                self._stats["module"]["hits"] += 1
        if module is not None:
            if obs.enabled:
                obs.inc("cache.module.hit")
            return module
        if obs.enabled:
            obs.inc("cache.module.miss")
            with obs.span("session.cache_parse", hash=digest[:12]):
                module = self._do_parse(text)
        else:
            module = self._do_parse(text)
        with self._lock:
            self._stats["module"]["misses"] += 1
            self._modules[digest] = module
            while len(self._modules) > self._module_cache_size:
                self._modules.popitem(last=False)
        return module

    def _do_parse(self, text: str) -> Module:
        from repro.llvmir.parser import parse_assembly

        return parse_assembly(text, observer=self.observer)

    # -- plan cache -----------------------------------------------------------
    def compile(
        self,
        program: ProgramLike,
        *,
        pipeline: PipelineLike = None,
        entry: Optional[str] = None,
        verify: bool = True,
    ) -> ExecutionPlan:
        """Compile a program to an :class:`ExecutionPlan`, LRU-cached.

        An :class:`ExecutionPlan` passes through unchanged.  Callable
        pipelines bypass the cache (their identity is not content-
        addressable); named pipelines and the pipeline-free default are
        cached under ``content hash + pipeline + backend + entry``.
        """
        if isinstance(program, ExecutionPlan):
            return program
        obs = self.observer
        cacheable = pipeline is None or isinstance(pipeline, str)
        digest = content_hash(program)
        key = plan_key(
            digest,
            pipeline if isinstance(pipeline, str) else None,
            self.runtime.backend_name,
            entry,
        )
        if cacheable:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plans.move_to_end(key)
                    self._stats["plan"]["hits"] += 1
            if plan is not None:
                if obs.enabled:
                    obs.inc("cache.plan.hit")
                return plan
            if obs.enabled:
                obs.inc("cache.plan.miss")
            # Disk tier (warm start): a plan compiled by *another* process
            # deserializes here instead of re-running the frontend.
            if self.plan_cache is not None:
                if obs.enabled:
                    with obs.span("session.cache_disk_read", hash=digest[:12]):
                        plan = self.plan_cache.get(key)
                else:
                    plan = self.plan_cache.get(key)
                if plan is not None:
                    self._remember(key, plan)
                    return plan

        # Pipeline-free compiles reuse the cached pristine parse; pipeline
        # compiles always parse privately (passes mutate IR in place).
        module = None
        if pipeline is None and isinstance(program, str):
            module = self._parse_cached(program, digest)
        if obs.enabled:
            with obs.span("session.cache_compile", hash=digest[:12]):
                plan = self._compile(program, pipeline, entry, verify, module, digest)
        else:
            plan = self._compile(program, pipeline, entry, verify, module, digest)
        if cacheable:
            self._remember(key, plan)
            if self.plan_cache is not None:
                if obs.enabled:
                    with obs.span("session.cache_disk_write", hash=digest[:12]):
                        self.plan_cache.put(key, plan)
                else:
                    self.plan_cache.put(key, plan)
        return plan

    def _remember(self, key: str, plan: ExecutionPlan) -> None:
        with self._lock:
            self._stats["plan"]["misses"] += 1
            self._plans[key] = plan
            while len(self._plans) > self._plan_cache_size:
                self._plans.popitem(last=False)

    def _compile(
        self,
        program: Union[str, Module],
        pipeline: PipelineLike,
        entry: Optional[str],
        verify: bool,
        module: Optional[Module],
        digest: str,
    ) -> ExecutionPlan:
        return compile_plan(
            program,
            pipeline=pipeline,
            backend=self.runtime.backend_name,
            entry=entry,
            verify=verify,
            observer=self.observer,
            module=module,
            source_hash=digest,
        )

    # -- execution ------------------------------------------------------------
    def run_shots(
        self,
        program: ProgramLike,
        shots: int = 1024,
        entry: Optional[str] = None,
        *,
        pipeline: PipelineLike = None,
        **kwargs,
    ) -> ShotsResult:
        """Compile (cached) then run; kwargs pass to ``QirRuntime.run_shots``.

        The session is where a run's durable identity is minted: every
        call builds a :class:`~repro.obs.runctx.RunContext` carrying the
        plan key (the session knows it; the runtime does not) and, when
        the session has a ledger, writes one
        :class:`~repro.obs.ledger.RunRecord` row at run end -- including
        an error row when the run raises.  Ledger writes are fail-open:
        they can never break the run they record.
        """
        plan = self.compile(program, pipeline=pipeline, entry=entry)
        had_distribution = plan.distribution is not None
        context = kwargs.pop("run_context", None)
        if context is None:
            context = RunContext()
        if context.plan_key is None:
            context = context.with_labels(plan_key=self._plan_key_of(plan, pipeline, entry))
        # Fill in labels the ledger needs even when no observer is
        # enabled (the runtime only refines the context it is handed).
        context = context.with_labels(
            scheduler=kwargs.get("scheduler") or self.runtime.default_scheduler,
            backend=self.runtime.backend_name,
            jobs=kwargs.get("jobs") or self.runtime.default_jobs,
            entry=entry if entry is not None else plan.entry,
            shots=shots,
        )
        if self.ledger is None:
            result = self.runtime.run_shots(
                plan, shots, entry, run_context=context, **kwargs
            )
            self._persist_distribution(plan, pipeline, entry, had_distribution)
            return result
        t0 = perf_counter()
        try:
            result = self.runtime.run_shots(
                plan, shots, entry, run_context=context, **kwargs
            )
        except Exception as error:
            self.ledger.record(
                RunRecord.from_error(
                    context,
                    error_code=getattr(error, "code", type(error).__name__),
                    wall_seconds=perf_counter() - t0,
                    counters=self._ledger_counters(),
                )
            )
            raise
        self.ledger.record(
            RunRecord.from_result(context, result, counters=self._ledger_counters())
        )
        self._persist_distribution(plan, pipeline, entry, had_distribution)
        return result

    def _persist_distribution(
        self,
        plan: ExecutionPlan,
        pipeline: PipelineLike,
        entry: Optional[str],
        had_distribution: bool,
    ) -> None:
        """Write a plan back to the disk tier when a run just warmed it.

        The memory LRU holds the live plan object (the attached
        distribution is already visible there); only the serialized disk
        entry is stale.  Re-putting refreshes it so *other* processes
        warm-start with the distribution included."""
        if self.plan_cache is None or had_distribution:
            return
        if plan.distribution is None:
            return
        key = self._plan_key_of(plan, pipeline, entry)
        if key is None:
            return
        obs = self.observer
        if obs.enabled:
            with obs.span("session.cache_disk_write", hash=plan.short_hash):
                self.plan_cache.put(key, plan)
        else:
            self.plan_cache.put(key, plan)

    def _plan_key_of(
        self,
        plan: ExecutionPlan,
        pipeline: PipelineLike,
        entry: Optional[str],
    ) -> Optional[str]:
        """The cache key this plan was (or would be) stored under."""
        if not plan.source_hash:
            return None
        return plan_key(
            plan.source_hash,
            pipeline if isinstance(pipeline, str) else None,
            self.runtime.backend_name,
            entry,
        )

    def _ledger_counters(self) -> Dict[str, float]:
        """The counters snapshot a ledger row embeds ({} unobserved)."""
        if not self.observer.enabled:
            return {}
        return dict(self.observer.metrics.snapshot()["counters"])

    def execute(
        self,
        program: ProgramLike,
        entry: Optional[str] = None,
        *,
        pipeline: PipelineLike = None,
    ) -> ExecutionResult:
        plan = self.compile(program, pipeline=pipeline, entry=entry)
        return self.runtime.execute(plan, entry)

    # -- introspection --------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size/capacity per cache (for the profile table)."""
        with self._lock:
            stats = {
                "module": {
                    "hits": self._stats["module"]["hits"],
                    "misses": self._stats["module"]["misses"],
                    "size": len(self._modules),
                    "capacity": self._module_cache_size,
                },
                "plan": {
                    "hits": self._stats["plan"]["hits"],
                    "misses": self._stats["plan"]["misses"],
                    "size": len(self._plans),
                    "capacity": self._plan_cache_size,
                },
            }
        if self.plan_cache is not None:
            disk = self.plan_cache.stats
            stats["plan_disk"] = {
                "hits": disk["hits"],
                "misses": disk["misses"],
                "size": len(self.plan_cache),
                "capacity": self.plan_cache.max_entries,
            }
        return stats

    def verify_plan_cache(self, delete: bool = True) -> Optional[VerifyReport]:
        """Integrity-check the disk tier (see :meth:`PlanCache.verify`).

        Returns ``None`` when the session has no disk tier.  Useful for
        long-lived services that want to sweep corrupt entries on a
        schedule instead of paying decode-and-drop misses at request
        time (``qir-plan-cache list --verify`` is the CLI equivalent).
        """
        if self.plan_cache is None:
            return None
        return self.plan_cache.verify(delete=delete)

    def clear_caches(self) -> None:
        """Empty the in-process tiers; the disk tier (shared with other
        processes) is cleared explicitly via ``self.plan_cache.clear()``."""
        with self._lock:
            self._modules.clear()
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._modules) + len(self._plans)
