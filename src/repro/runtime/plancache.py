"""Persistent, cross-process ExecutionPlan cache (the disk tier).

:class:`~repro.runtime.session.QirSession` already memoises compiled
plans in-process; this module adds the tier below it, so a *fresh
process* -- a restarted server, a scheduler worker pool, a CI step --
reuses compiled artifacts instead of re-running the frontend.  That is
the QAT/Catalyst ahead-of-time model: the compiled program is a durable
artifact, not a per-process accident.

Layout: one file per plan under a cache directory (default
``~/.cache/qir-repro/plans/``, overridable via the ``QIR_PLAN_CACHE``
environment variable or ``QirSession(plan_cache_dir=...)``).  The file
name is a hash of

* the plan key (``source_hash:pipeline:backend:entry``),
* the wire-format version (:data:`~repro.runtime.plan.PLAN_WIRE_VERSION`),
* an **environment fingerprint** (python / implementation / numpy /
  platform / machine),

so an interpreter or numpy upgrade -- anything that could change
compiled behaviour -- silently invalidates every old entry instead of
serving it cross-environment.  Writes are atomic (tmp + ``os.replace``),
corrupt or truncated entries are deleted and treated as misses, and the
directory is bounded by ``max_entries`` with oldest-mtime eviction.
Everything surfaces as ``cache.plan_disk.{hit,miss,evict,corrupt}``
counters on the session's observer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.observer import as_observer
from repro.runtime.plan import PLAN_WIRE_VERSION, ExecutionPlan, PlanDecodeError

#: Environment variable naming the cache directory (empty string disables).
CACHE_ENV = "QIR_PLAN_CACHE"

#: Default on-disk location when no override is given.
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "qir-repro", "plans")

_SUFFIX = ".plan"


def default_cache_dir() -> str:
    """The resolved default directory: ``$QIR_PLAN_CACHE`` or the home cache."""
    env = os.environ.get(CACHE_ENV, "").strip()
    if env:
        return os.path.expanduser(env)
    return os.path.expanduser(DEFAULT_CACHE_DIR)


def environment_fingerprint() -> Dict[str, object]:
    """The compatibility identity baked into every cache file name.

    Mirrors the qir-bench snapshot fingerprint (python / numpy /
    platform): two processes share cached plans only when they would
    compile them identically.
    """
    # Imported here, not at module top: the bench snapshot module is the
    # canonical owner of the fingerprint shape, and sharing it keeps
    # "same environment" meaning the same thing in both subsystems.
    from repro.obs.snapshot import environment_fingerprint as bench_fingerprint

    fingerprint = dict(bench_fingerprint())
    fingerprint["plan_wire_version"] = PLAN_WIRE_VERSION
    return fingerprint


def environment_tag(fingerprint: Optional[Dict[str, object]] = None) -> str:
    """Short stable digest of the fingerprint (part of each file name)."""
    payload = json.dumps(
        fingerprint if fingerprint is not None else environment_fingerprint(),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of :meth:`PlanCache.verify`."""

    ok: List[str]
    corrupt: List[str]
    deleted: bool

    @property
    def clean(self) -> bool:
        return not self.corrupt


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk plan, as reported by :meth:`PlanCache.entries`."""

    path: str
    key: str
    source_hash: str
    backend: str
    pipeline: Optional[str]
    size_bytes: int
    mtime: float
    #: Whether the entry carries a cached sampling distribution (the
    #: warm-serve tier; ``qir-plan-cache list`` shows this as ``dist``).
    has_distribution: bool = False

    @property
    def short_hash(self) -> str:
        return self.source_hash[:12]


class PlanCache:
    """Content-addressed plan files under one directory.

    Safe for concurrent use across processes: reads tolerate files
    vanishing underneath them, writes go through ``os.replace`` so a
    reader never observes a half-written entry, and two processes
    racing to write the same key simply last-write-wins identical bytes.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: int = 256,
        observer=None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = os.path.expanduser(directory) if directory else default_cache_dir()
        self.max_entries = max_entries
        self.observer = as_observer(observer)
        self._env_tag = environment_tag()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0, "corrupt": 0}

    # -- addressing -----------------------------------------------------------
    def path_for(self, key: str) -> str:
        """Where a plan with this key lives (environment-qualified)."""
        digest = hashlib.sha256(
            f"{self._env_tag}|{key}".encode("utf-8")
        ).hexdigest()[:40]
        return os.path.join(self.directory, digest + _SUFFIX)

    # -- read -----------------------------------------------------------------
    def get(self, key: str) -> Optional[ExecutionPlan]:
        """Load a plan, or ``None`` on miss.  Corrupt entries are deleted
        and reported as misses -- the caller recompiles, never crashes."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._miss()
            return None
        try:
            plan = ExecutionPlan.from_bytes(data)
        except PlanDecodeError:
            self._drop_corrupt(path)
            self._miss()
            return None
        if plan.key != key:
            # A (vanishingly unlikely) file-name collision, or a file
            # copied between directories by hand: treat as corrupt.
            self._drop_corrupt(path)
            self._miss()
            return None
        self.stats["hits"] += 1
        if self.observer.enabled:
            self.observer.inc("cache.plan_disk.hit")
        return plan

    def _miss(self) -> None:
        self.stats["misses"] += 1
        if self.observer.enabled:
            self.observer.inc("cache.plan_disk.miss")

    def _drop_corrupt(self, path: str) -> None:
        self.stats["corrupt"] += 1
        if self.observer.enabled:
            self.observer.inc("cache.plan_disk.corrupt")
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- write ----------------------------------------------------------------
    def put(self, key: str, plan: ExecutionPlan) -> Optional[str]:
        """Persist a plan atomically; returns the path (None on IO failure).

        A cache that cannot write must never break execution, so every
        OS-level failure is swallowed -- the next process just recompiles.
        """
        path = self.path_for(key)
        data = plan.to_bytes()
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=_SUFFIX, dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return None
        except OSError:
            return None
        self._evict_over_capacity(keep=path)
        return path

    def _evict_over_capacity(self, keep: str) -> None:
        """Delete oldest entries beyond ``max_entries`` (never ``keep``)."""
        try:
            names = [
                n for n in os.listdir(self.directory)
                if n.endswith(_SUFFIX) and not n.startswith(".tmp-")
            ]
        except OSError:
            return
        if len(names) <= self.max_entries:
            return
        aged: List[tuple] = []
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                aged.append((os.path.getmtime(path), path))
            except OSError:
                continue
        aged.sort()
        excess = len(aged) - self.max_entries
        for _, path in aged:
            if excess <= 0:
                break
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            excess -= 1
            self.stats["evictions"] += 1
            if self.observer.enabled:
                self.observer.inc("cache.plan_disk.evict")

    # -- maintenance / inspection ---------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """All readable entries, newest first (the ``qir-plan-cache`` view).

        Unreadable files are skipped, not raised: inspection must work on
        a directory other processes are concurrently mutating.
        """
        out: List[CacheEntry] = []
        try:
            names = [
                n for n in os.listdir(self.directory)
                if n.endswith(_SUFFIX) and not n.startswith(".tmp-")
            ]
        except OSError:
            return out
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
                with open(path, "rb") as handle:
                    payload = json.loads(handle.read().decode("utf-8"))
                out.append(
                    CacheEntry(
                        path=path,
                        key=str(payload.get("key", "?")),
                        source_hash=str(payload.get("source_hash", "?")),
                        backend=str(payload.get("backend", "?")),
                        pipeline=payload.get("pipeline"),
                        size_bytes=stat.st_size,
                        mtime=stat.st_mtime,
                        has_distribution=payload.get("distribution") is not None,
                    )
                )
            except (OSError, ValueError):
                continue
        out.sort(key=lambda e: e.mtime, reverse=True)
        return out

    def verify(self, delete: bool = True) -> "VerifyReport":
        """Decode every cache file end-to-end and report the corrupt ones.

        Deeper than :meth:`entries` (which only needs the JSON envelope):
        each file goes through the full :meth:`ExecutionPlan.from_bytes`
        wire-format decode, including the embedded module re-parse and
        integrity hash, so a bit-flipped payload that still parses as
        JSON is caught too.  With ``delete=True`` (the default, and the
        ``qir-plan-cache list --verify`` behaviour) corrupt files are
        removed so the next ``get`` misses cleanly instead of paying the
        decode-and-drop cost at execution time.
        """
        ok: List[str] = []
        corrupt: List[str] = []
        try:
            names = sorted(
                n for n in os.listdir(self.directory)
                if n.endswith(_SUFFIX) and not n.startswith(".tmp-")
            )
        except OSError:
            return VerifyReport(ok=[], corrupt=[], deleted=False)
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                continue  # vanished underneath us: another process's business
            try:
                ExecutionPlan.from_bytes(data)
            except PlanDecodeError:
                corrupt.append(path)
                if delete:
                    self._drop_corrupt(path)
                else:
                    self.stats["corrupt"] += 1
                    if self.observer.enabled:
                        self.observer.inc("cache.plan_disk.corrupt")
                continue
            ok.append(path)
        return VerifyReport(ok=ok, corrupt=corrupt, deleted=delete)

    def clear(self) -> int:
        """Delete every entry (any environment tag); returns the count."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        try:
            return sum(
                1 for n in os.listdir(self.directory)
                if n.endswith(_SUFFIX) and not n.startswith(".tmp-")
            )
        except OSError:
            return 0
