"""Runtime error hierarchy.

Every error carries a stable ``code`` (for log grep-ability and CLI exit
mapping), a ``retryable`` class flag consumed by
:class:`repro.resilience.retry.RetryPolicy`, and -- when raised from inside
the interpreter -- an :class:`ErrorContext` naming the function, basic
block, and instruction that failed.  The paper's Section IV motivates
this: a QIR runtime must distinguish *program* failures (traps, which are
deterministic and must fail fast) from *infrastructure* failures (backend
faults, which a resilient executor may retry or route around).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type


@dataclass(frozen=True)
class ErrorContext:
    """Where inside the program an error was raised."""

    function: Optional[str] = None
    block: Optional[str] = None
    instruction: Optional[str] = None

    def __str__(self) -> str:
        parts = []
        if self.function:
            parts.append(f"in @{self.function}")
        if self.block:
            parts.append(f"block %{self.block}")
        if self.instruction:
            parts.append(f"at {self.instruction}")
        return ", ".join(parts)


class QirRuntimeError(RuntimeError):
    """Base class for failures while executing a QIR program."""

    code: str = "QIR000"
    retryable: bool = False

    def __init__(self, message: str = "", *, context: Optional[ErrorContext] = None):
        super().__init__(message)
        self.context = context

    @classmethod
    def is_retryable(cls) -> bool:
        return cls.retryable

    def attach_context(self, context: ErrorContext) -> None:
        """Record *where* the error happened; the deepest frame wins."""
        if self.context is None:
            self.context = context

    def describe(self) -> str:
        text = f"[{self.code}] {self}"
        if self.context is not None:
            located = str(self.context)
            if located:
                text += f" ({located})"
        return text


class TrapError(QirRuntimeError):
    """The program executed ``unreachable`` or called ``__quantum__rt__fail``.

    Deterministic: re-running the same shot traps again, so never retried.
    """

    code = "QIR001"
    retryable = False


class StepLimitExceeded(QirRuntimeError):
    """The interpreter hit its instruction budget (runaway loop guard).

    Not retryable by default -- a deterministic program exceeds the budget
    every time -- but a :class:`~repro.resilience.retry.RetryPolicy` may
    opt in via ``retry_codes`` when budgets model flaky timeouts.
    """

    code = "QIR002"
    retryable = False


class UnboundFunctionError(QirRuntimeError):
    """A declared function has no intrinsic binding and no definition."""

    code = "QIR003"
    retryable = False


class InvalidPointerError(QirRuntimeError):
    """A pointer value was used in a way its kind does not support."""

    code = "QIR004"
    retryable = False


class BackendFaultError(QirRuntimeError):
    """A simulator backend operation failed transiently (gate/measure)."""

    code = "QIR010"
    retryable = True


class QubitAllocationError(QirRuntimeError):
    """The backend could not provide a fresh qubit slot."""

    code = "QIR011"
    retryable = True


class OutputCorruptionError(QirRuntimeError):
    """An output record failed its integrity check."""

    code = "QIR012"
    retryable = True


# -- process-level infrastructure (worker supervision) ------------------------
#
# The QIR02x band is reserved for the execute phase's *worker* failures:
# a shot never misbehaved, the machinery running it did.  They are what
# the ProcessScheduler's supervisor raises (or records in supervision
# events) instead of leaking concurrent.futures internals.


class WorkerCrashError(QirRuntimeError):
    """A scheduler worker process died (e.g. ``BrokenProcessPool``).

    Retryable by design: the lost chunk's shots are pure functions of
    ``(root, shot, attempt)``, so re-dispatching them to a healthy
    worker reproduces the exact outcomes the dead worker would have
    produced.
    """

    code = "QIR020"
    retryable = True


class WorkerTimeoutError(QirRuntimeError):
    """A scheduler worker stopped heartbeating within ``worker_timeout``."""

    code = "QIR021"
    retryable = True


class PoolStartupError(QirRuntimeError):
    """The worker pool could not start at all (spawn context unavailable,
    process limits, manager startup failure).  Not retryable: the same
    environment will refuse the same pool again; callers should fall
    back to an in-process scheduler or surface the message.
    """

    code = "QIR022"
    retryable = False


class SchedulerExhaustedError(QirRuntimeError):
    """Every rung of the scheduler demotion ladder (process -> threaded ->
    serial) failed to complete the run.  Terminal: there is no cheaper
    execution strategy left to try.
    """

    code = "QIR023"
    retryable = False


#: Stable code -> class registry (tests pin these so codes never drift).
ERROR_CODES: Dict[str, Type[QirRuntimeError]] = {
    cls.code: cls
    for cls in (
        QirRuntimeError,
        TrapError,
        StepLimitExceeded,
        UnboundFunctionError,
        InvalidPointerError,
        BackendFaultError,
        QubitAllocationError,
        OutputCorruptionError,
        WorkerCrashError,
        WorkerTimeoutError,
        PoolStartupError,
        SchedulerExhaustedError,
    )
}
