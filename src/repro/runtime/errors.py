"""Runtime error hierarchy."""

from __future__ import annotations


class QirRuntimeError(RuntimeError):
    """Base class for failures while executing a QIR program."""


class TrapError(QirRuntimeError):
    """The program executed ``unreachable`` or called ``__quantum__rt__fail``."""


class StepLimitExceeded(QirRuntimeError):
    """The interpreter hit its instruction budget (runaway loop guard)."""


class UnboundFunctionError(QirRuntimeError):
    """A declared function has no intrinsic binding and no definition."""


class InvalidPointerError(QirRuntimeError):
    """A pointer value was used in a way its kind does not support."""
