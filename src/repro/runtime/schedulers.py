"""The execute phase: pluggable shot schedulers over a compiled program.

The compile phase (:mod:`repro.runtime.plan`) produces a frozen,
read-only artifact; this module spends it.  A :class:`ShotScheduler`
turns "run N shots of this module" into per-shot tasks:

* :class:`SerialScheduler` -- the historical in-order loop;
* :class:`ThreadedScheduler` -- N worker threads pulling self-scheduled
  shot chunks off a shared :class:`~repro.runtime.dispatch.ChunkQueue`
  (``ShotsResult`` merging is order-independent, and per-shot outcomes
  are re-sorted by shot index so results are deterministic regardless
  of completion order or which worker ran a chunk);
* :class:`BatchedScheduler` -- one vectorised multi-shot statevector
  evolution (:class:`~repro.sim.statevector.BatchedStatevectorSimulator`)
  for non-Clifford per-shot workloads where the deferred-measurement
  sampling fast path is inapplicable (mid-circuit reset, re-measurement,
  gates after measurement).  Programs with *classical feedback* on a
  measurement abort with :class:`BatchedUnsupported` and fall back to the
  per-shot loop;
* :class:`ProcessScheduler` -- N worker *processes* draining the same
  chunk queue (the supervisor drains it into pool waves; the executor's
  idle processes self-schedule the chunks within a wave), for the
  pure-Python-bound workloads where the GIL caps
  :class:`ThreadedScheduler` (threads only overlap NumPy kernels).
  Workers receive the compiled program as a *serialized*
  :class:`~repro.runtime.plan.ExecutionPlan` (``to_bytes``), never
  re-running verify/passes/analysis.

Determinism: every shot's RNG is derived from a spawned child seed --
``SeedSequence(entropy=root, spawn_key=(shot, attempt))`` -- never from a
shared stream, so serial, threaded, batched, and process execution of the
same program with the same seed produce identical ``counts``.

Resilience (retry / fault injection / backend fallback) hooks in at the
per-shot *task* level, so every scheduler gets the same semantics: a
failing shot is retried per policy, the shared
:class:`~repro.resilience.fallback.FallbackChain` is consulted under a
lock (demotions happen exactly once per rung even under concurrency),
and unrecovered failures become structured records on the result.  The
one documented divergence is process fallback: workers cannot share a
lock across process boundaries, so each worker demotes *its own* clone
of the chain (fault decisions stay deterministic per shot), and the
merge ORs the ``degraded`` flags and concatenates histories in worker
order -- a demotion in any worker marks the whole run degraded, but
shots in other workers may still have run on the original rung.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.llvmir.module import Module
from repro.obs.observer import NULL_OBSERVER
from repro.resilience.fallback import BackendLevel, FallbackChain
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultyBackend,
    ProcessFaultDecision,
    ShotFaultContext,
    corrupt_bytes,
)
from repro.resilience.report import ShotFailure, render_failure_report
from repro.resilience.retry import RetryPolicy
from repro.runtime.dispatch import Chunk, ChunkQueue
from repro.runtime.errors import (
    PoolStartupError,
    QirRuntimeError,
    SchedulerExhaustedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.runtime.interpreter import Interpreter, InterpreterStats
from repro.runtime.output import OutputRecord
from repro.runtime.results import ResultStore
from repro.runtime.values import IntPtr
from repro.sim.fusion import FusedProgram, run_fused, run_fused_batched
from repro.sim.noise import NoiseModel, NoisyBackend
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import BatchedStatevectorSimulator, StatevectorSimulator

SCHEDULERS = ("serial", "threaded", "batched", "process")

SeedLike = Union[int, np.random.SeedSequence, None]

#: spawn_key component reserved for retry-backoff jitter streams, far above
#: any realistic attempt index so it can never collide with one.
_BACKOFF_KEY = 0x7FFF0001

#: spawn_key component for the sampling fast path's one-evolution seed.
_FASTPATH_KEY = 0x7FFF0002


def fastpath_sequence(root: np.random.SeedSequence) -> np.random.SeedSequence:
    """The sampling fast path's seed, spawned off the run's root.

    Deriving it from the root (instead of drawing another value from the
    runtime's stream) keeps the stream position identical whether or not
    a fast-path attempt happens first -- so a rejected attempt cannot
    shift the per-shot seeds, and every scheduler sees the same root.
    """
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (_FASTPATH_KEY,)
    )

#: Overall amplitude budget for one batched chunk (~128 MiB of complex128).
_BATCH_AMPLITUDE_BUDGET = 1 << 23
_BATCH_CHUNK_CAP = 1024


def shot_sequence(
    root: np.random.SeedSequence, shot: int, attempt: int
) -> np.random.SeedSequence:
    """The spawned child seed for one (shot, attempt) pair.

    A pure function of ``(root, shot, attempt)`` -- independent of
    execution order, thread interleaving, retries of *other* shots, and
    scheduler choice -- which is the whole determinism story: any
    scheduler computing the same pairs derives the same RNG streams.
    """
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (shot, attempt)
    )


def _noise_sequence(seed: SeedLike) -> SeedLike:
    """A decorrelated stream for the noise wrapper (see _make_backend)."""
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=tuple(seed.spawn_key) + (1,)
        )
    if seed is None:
        return None
    return (int(seed) ^ 0x9E3779B97F4A7C15) & (2**63 - 1)


def _make_backend(
    name: str,
    seed: SeedLike,
    max_qubits: int,
    noise: Optional[NoiseModel] = None,
):
    if name == "statevector":
        backend = StatevectorSimulator(0, seed=seed, max_qubits=max_qubits)
    elif name == "stabilizer":
        backend = StabilizerSimulator(0, seed=seed)
    else:
        raise ValueError(f"unknown backend {name!r}")
    if noise is not None and not noise.is_trivial:
        # The wrapper needs its own stream: seeding it identically to the
        # inner simulator would correlate error injection with measurement
        # outcomes (their first random draws would coincide).
        return NoisyBackend(backend, noise, seed=_noise_sequence(seed))
    return backend


def sorted_counts(counts: Dict[str, int]) -> Dict[str, int]:
    """Stable bitstring ordering so reports and diffs are deterministic."""
    return dict(sorted(counts.items()))


# -- results ------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Outcome of one shot."""

    output_records: List[OutputRecord]
    result_bits: List[int]
    bitstring: str
    messages: List[str]
    stats: InterpreterStats
    return_value: object = None

    def render_output(self) -> str:
        return "\n".join(r.render() for r in self.output_records)


@dataclass
class ShotsResult:
    """Aggregate over many shots.

    ``counts`` holds the successful shots only, with bitstring keys in
    stable (sorted) order.  ``shots`` is the number *requested*; use
    ``successful_shots`` as the denominator for rates so a partially
    failed run does not skew downstream statistics.
    """

    counts: Dict[str, int]
    shots: int
    per_shot_stats: List[InterpreterStats] = field(default_factory=list)
    used_fast_path: bool = False
    #: True when a warm plan's cached sampling distribution served these
    #: counts with zero simulation (implies ``used_fast_path``).
    distribution_served: bool = False
    # -- observability (repro.obs) --------------------------------------------
    wall_seconds: float = 0.0
    #: ULID-style identity of this run (see repro.obs.runctx); empty when
    #: the run carried no RunContext (no observer, no ledger, none passed).
    run_id: str = ""
    # Per-backend InterpreterStats aggregation (keep_stats=True in resilient
    # mode): after a FallbackChain demotion the work done on each rung of
    # the ladder stays attributable.
    per_backend_stats: Dict[str, InterpreterStats] = field(default_factory=dict)
    # -- partial-result recovery (resilient mode) -----------------------------
    failed_shots: List[ShotFailure] = field(default_factory=list)
    per_error_counts: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    backend_shot_counts: Dict[str, int] = field(default_factory=dict)
    fallback_history: List[str] = field(default_factory=list)
    retried_shots: int = 0
    # -- execute phase (repro.runtime.schedulers) -----------------------------
    scheduler: str = "serial"
    #: Worker-supervision record of a process-scheduler run (None for the
    #: in-process schedulers and for process runs normalized to serial).
    supervision: Optional["SupervisionRecord"] = None

    @property
    def total_shots(self) -> int:
        """Shots requested (successes + failures)."""
        return self.shots

    @property
    def successful_shots(self) -> int:
        return self.shots - len(self.failed_shots)

    def probabilities(self) -> Dict[str, float]:
        denominator = self.successful_shots
        if denominator <= 0:
            return {}
        return {k: v / denominator for k, v in self.counts.items()}

    @property
    def shots_per_second(self) -> float:
        """Successful-shot throughput over the measured wall time.

        Coarse clocks can report ``wall_seconds == 0`` for very fast runs
        (notably the sampling fast path); the convention -- shared with
        ``render_timing_line`` and the ``runtime.shots_per_second`` gauge
        -- is to report ``0.0`` ("not measurable"), never ``inf``/``nan``.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.successful_shots / self.wall_seconds

    def aggregated_stats(self) -> InterpreterStats:
        """Sum of per-shot stats (requires ``keep_stats=True``)."""
        return InterpreterStats.aggregate(self.per_shot_stats)

    def failure_report(self) -> str:
        supervision = None
        if self.supervision is not None and self.supervision.worker_failures:
            supervision = self.supervision.summary()
        return render_failure_report(
            self.failed_shots,
            self.per_error_counts,
            self.degraded,
            self.fallback_history,
            wall_seconds=self.wall_seconds,
            successful_shots=self.successful_shots,
            supervision=supervision,
            run_id=self.run_id,
        )


# -- worker supervision -------------------------------------------------------


@dataclass
class SupervisionRecord:
    """What the process scheduler's supervisor saw and did in one run.

    The state machine (documented in DESIGN.md): **healthy** while every
    dispatched chunk reports back; **degraded** once a worker crashed,
    hung, or corrupted its report and the lost chunks were re-dispatched;
    **demoted** when ``max_worker_failures`` failed rounds tripped the
    circuit breaker and the remaining shots ran on a cheaper scheduler.
    """

    rounds: int = 0
    crashes: int = 0
    hangs: int = 0
    ipc_corruptions: int = 0
    redispatches: int = 0
    failed_rounds: int = 0
    breaker_tripped: bool = False
    demoted_to: Optional[str] = None
    worker_timeout: Optional[float] = None
    last_error_code: str = ""
    events: List[str] = field(default_factory=list)

    @property
    def worker_failures(self) -> int:
        """Chunks lost to infrastructure, across all rounds."""
        return self.crashes + self.hangs + self.ipc_corruptions

    @property
    def state(self) -> str:
        """``healthy`` / ``degraded`` / ``demoted`` (see class docstring)."""
        if self.demoted_to is not None:
            return "demoted"
        if self.worker_failures:
            return "degraded"
        return "healthy"

    def note(self, event: str) -> None:
        self.events.append(event)

    def summary(self) -> str:
        text = (
            f"state={self.state} rounds={self.rounds} crashes={self.crashes} "
            f"hangs={self.hangs} ipc_corrupt={self.ipc_corruptions} "
            f"redispatched={self.redispatches}"
        )
        if self.demoted_to is not None:
            text += f" demoted_to={self.demoted_to}"
        return text


# -- per-shot execution -------------------------------------------------------


@dataclass
class ShotOutcome:
    """One shot's contribution to the merge, whichever worker produced it."""

    shot: int
    bitstring: Optional[str] = None
    backend_label: str = ""
    attempts: int = 1
    seconds: Optional[float] = None
    stats: Optional[InterpreterStats] = None
    failure: Optional[ShotFailure] = None

    @property
    def succeeded(self) -> bool:
        return self.failure is None


class ChainGuard:
    """Thread-safe facade over a shared :class:`FallbackChain`.

    All mutation happens under one lock, so consecutive-failure counting
    stays coherent and each rung of the ladder is demoted at most once no
    matter how many workers observe failures concurrently.
    """

    def __init__(self, chain: FallbackChain):
        self._chain = chain
        self._lock = threading.Lock()
        self._initial_history = len(chain.history)
        # Worker-process merge state (see ProcessScheduler): demotions
        # performed inside worker clones, folded back in worker order.
        self._worker_degraded = False
        self._worker_history: List[str] = []

    @property
    def current(self) -> BackendLevel:
        with self._lock:
            return self._chain.current

    def note_success(self) -> None:
        with self._lock:
            self._chain.note_success()

    def note_failure(self, error: QirRuntimeError) -> bool:
        with self._lock:
            return self._chain.note_failure(error)

    def worker_chain(self) -> FallbackChain:
        """A picklable clone for one worker process (empty history)."""
        with self._lock:
            return self._chain.worker_clone()

    def absorb_worker(self, degraded: bool, history: List[str]) -> None:
        """Fold one worker clone's demotion record into the merged view."""
        with self._lock:
            self._worker_degraded = self._worker_degraded or degraded
            self._worker_history.extend(history)

    def note_scheduler_demotion(self, entry: str) -> None:
        """Record a *scheduler*-ladder demotion (process -> threaded ->
        serial, see :class:`ProcessScheduler`) in the shared history.

        Scheduler demotions ride the same history/degraded channel as
        backend demotions so reports, metrics, and callers see one
        unified degradation record."""
        with self._lock:
            self._worker_degraded = True
            self._worker_history.append(entry)

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._chain.degraded or self._worker_degraded

    @property
    def history(self) -> List[str]:
        with self._lock:
            return list(self._chain.history) + list(self._worker_history)

    @property
    def demotions_this_run(self) -> int:
        with self._lock:
            return (
                len(self._chain.history)
                - self._initial_history
                + len(self._worker_history)
            )


class _BackoffStream:
    """Per-shot retry-jitter RNG, created lazily on the first wait.

    One stream per *shot*, shared across fallback demotions.
    ``attempt_shot`` used to build its own generator per invocation, but
    it is re-invoked after every fallback demotion (``attempt_offset``),
    so the jitter sequence restarted mid-shot and retry timing depended
    on the demotion history.  Holding the stream here makes the delay
    sequence a pure function of ``(root, shot)`` -- reproducible in
    tests regardless of how many rungs the shot visits -- while keeping
    the clean path free of SeedSequence construction.
    """

    __slots__ = ("_root", "_shot", "_rng")

    def __init__(self, root: np.random.SeedSequence, shot: int):
        self._root = root
        self._shot = shot
        self._rng: Optional[np.random.Generator] = None

    def generator(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(
                shot_sequence(self._root, self._shot, _BACKOFF_KEY)
            )
        return self._rng


class ShotExecutor:
    """Executes single shots for one runtime configuration.

    Stateless between shots (every per-shot RNG comes in as an explicit
    seed), which is what makes it shareable across scheduler workers.
    """

    def __init__(
        self,
        backend_name: str,
        noise: Optional[NoiseModel],
        step_limit: int,
        max_qubits: int,
        allow_on_the_fly_qubits: bool,
        observer,
    ):
        self.backend_name = backend_name
        self.noise = noise
        self.step_limit = step_limit
        self.max_qubits = max_qubits
        self.allow_on_the_fly_qubits = allow_on_the_fly_qubits
        self.observer = observer

    # -- configuration helpers ------------------------------------------------
    def effective_noise(self, level: BackendLevel) -> Optional[NoiseModel]:
        if not level.noisy:
            return None
        return self.noise

    def level_label(self, level: BackendLevel) -> str:
        noise = self.effective_noise(level)
        if noise is not None and not noise.is_trivial:
            return f"{level.backend}+noise"
        return level.backend

    # -- single attempt -------------------------------------------------------
    def run_single(
        self,
        module: Module,
        entry: Optional[str],
        level: BackendLevel,
        ctx: Optional[ShotFaultContext],
        seed: SeedLike,
        schedule: Optional[FusedProgram] = None,
    ) -> ExecutionResult:
        if schedule is not None and self._fusable(level, ctx):
            return self._run_fused_single(schedule, seed)
        backend = _make_backend(
            level.backend, seed, self.max_qubits, self.effective_noise(level)
        )
        step_limit = self.step_limit
        fault_hook = None
        if ctx is not None and not ctx.is_inert:
            backend = FaultyBackend(backend, ctx)
            step_limit = ctx.step_limit(self.step_limit)
            if ctx.wants_intrinsic_hook:
                fault_hook = ctx.intrinsic_hook
        interp = Interpreter(
            module,
            backend,
            step_limit=step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
            fault_hook=fault_hook,
            observer=self.observer,
        )
        value = interp.run(entry)
        bits = interp.output.result_bits()
        # If the program recorded no output, fall back to the static result
        # table so base-profile programs without an epilogue still report.
        if not bits and interp.results.max_static_index >= 0:
            table = interp.results.static_bits(interp.results.max_static_index + 1)
            bits = [table[i] for i in sorted(table)]
        if ctx is not None and not ctx.is_inert:
            bits = ctx.mangle_bits(bits)
        bitstring = "".join(str(b) for b in reversed(bits))
        return ExecutionResult(
            output_records=list(interp.output.records),
            result_bits=bits,
            bitstring=bitstring,
            messages=list(interp.messages),
            stats=interp.stats,
            return_value=value,
        )

    def _fusable(
        self, level: BackendLevel, ctx: Optional[ShotFaultContext]
    ) -> bool:
        """Whether this attempt may take the fused kernel path.

        Conservative on purpose: the fused executor models the clean
        statevector semantics only, so anything that perturbs them --
        another backend rung, real noise, an active fault context --
        keeps the interpreter path.
        """
        if level.backend != "statevector":
            return False
        if ctx is not None and not ctx.is_inert:
            return False
        noise = self.effective_noise(level)
        return noise is None or noise.is_trivial

    def _run_fused_single(
        self, schedule: FusedProgram, seed: SeedLike
    ) -> ExecutionResult:
        """One shot through the precompiled kernel schedule.

        The simulator is seeded exactly like the interpreter path's
        backend, and the schedule preserves the source's measure/reset
        order, so the RNG draw sequence -- and therefore the outcome --
        is bit-identical to an unfused run of the same ``(root, shot,
        attempt)``.
        """
        backend = _make_backend("statevector", seed, self.max_qubits, None)
        bits, bitstring = run_fused(schedule, backend)
        # Coarse synthesized stats: the interpreter's per-instruction
        # bookkeeping does not exist here, but gate/measurement totals
        # keep profiled runs meaningful.
        stats = InterpreterStats()
        stats.gates = schedule.source_gates
        stats.measurements = schedule.measurements
        stats.quantum_calls = schedule.source_gates + schedule.measurements
        return ExecutionResult(
            output_records=[],
            result_bits=bits,
            bitstring=bitstring,
            messages=[],
            stats=stats,
            return_value=None,
        )

    # -- one shot with retry --------------------------------------------------
    def attempt_shot(
        self,
        module: Module,
        entry: Optional[str],
        level: BackendLevel,
        ctx: Optional[ShotFaultContext],
        policy: RetryPolicy,
        root: np.random.SeedSequence,
        shot: int,
        attempt_offset: int,
        backoff: _BackoffStream,
        schedule: Optional[FusedProgram] = None,
    ) -> Tuple[Optional[ExecutionResult], Optional[QirRuntimeError], int]:
        """Run one shot with per-attempt retry; returns (result, error, attempts).

        ``attempt_offset`` keeps attempt indices -- and therefore spawned
        seeds -- globally increasing for a shot across fallback demotions,
        and ``backoff`` carries the shot's one jitter stream across those
        same demotions (see :class:`_BackoffStream`).
        """
        noisy = self.effective_noise(level) is not None
        last_error: Optional[QirRuntimeError] = None
        for attempt in range(1, policy.max_attempts + 1):
            index = attempt_offset + attempt - 1
            if ctx is not None:
                ctx.begin_attempt(index, level.backend, noisy)
            seed = shot_sequence(root, shot, index)
            try:
                return (
                    self.run_single(module, entry, level, ctx, seed, schedule),
                    None,
                    attempt,
                )
            except QirRuntimeError as error:
                last_error = error
                if not policy.should_retry(error, attempt):
                    return None, error, attempt
                policy.wait(attempt, backoff.generator())
        return None, last_error, policy.max_attempts

    def run_shot(
        self,
        module: Module,
        entry: Optional[str],
        shot: int,
        root: np.random.SeedSequence,
        chain: ChainGuard,
        injector: Optional[FaultInjector],
        policy: RetryPolicy,
        keep_result_stats: bool,
        collect: bool,
        timed: bool,
        schedule: Optional[FusedProgram] = None,
    ) -> ShotOutcome:
        """The per-shot task: retry, fallback, and failure collection.

        With ``collect=False`` (the plain, non-resilient path) the first
        unrecovered error propagates to the caller, matching the
        historical fail-fast semantics.
        """
        ctx = injector.context(shot) if injector is not None else None
        total_attempts = 0
        backoff = _BackoffStream(root, shot)
        t0 = perf_counter() if timed else 0.0
        while True:
            level = chain.current
            result, error, attempts = self.attempt_shot(
                module,
                entry,
                level,
                ctx,
                policy,
                root,
                shot,
                total_attempts,
                backoff,
                schedule,
            )
            total_attempts += attempts
            if error is None:
                assert result is not None
                chain.note_success()
                return ShotOutcome(
                    shot=shot,
                    bitstring=result.bitstring,
                    backend_label=self.level_label(level),
                    attempts=total_attempts,
                    seconds=(perf_counter() - t0) if timed else None,
                    stats=result.stats if keep_result_stats else None,
                )
            if chain.note_failure(error):
                continue  # demoted: replay this shot on the new level
            if not collect:
                raise error
            failure = ShotFailure.from_error(
                shot, error, total_attempts, self.level_label(level)
            )
            return ShotOutcome(
                shot=shot,
                backend_label=self.level_label(level),
                attempts=total_attempts,
                seconds=(perf_counter() - t0) if timed else None,
                failure=failure,
            )


@dataclass
class ShotTask:
    """Everything a scheduler needs to run one multi-shot request."""

    executor: ShotExecutor
    module: Module
    entry: Optional[str]
    shots: int
    root: np.random.SeedSequence
    policy: RetryPolicy
    injector: Optional[FaultInjector]
    chain: ChainGuard
    keep_stats: bool
    resilient: bool
    timed: bool
    required_qubits: Optional[int] = None
    #: Serialized ExecutionPlan for process workers (set by the runtime
    #: whenever the process scheduler is selected); workers deserialize
    #: this instead of re-running the compile phase.
    plan_bytes: Optional[bytes] = None
    #: Run identity (repro.obs.runctx); rides the pickled _WorkerChunk into
    #: process workers so their reports join the parent's trace and ledger.
    run_id: str = ""
    #: Fused kernel schedule from the plan's specialization pass; ``None``
    #: disables fusion for this run (not specializable, or --no-fusion).
    schedule: Optional[FusedProgram] = None

    def run_one(self, shot: int) -> ShotOutcome:
        # Outcome stats are kept whenever the run is profiled (the merge
        # folds intrinsic metrics from them) or the caller asked for them.
        keep = self.keep_stats or self.timed
        return self.executor.run_shot(
            self.module,
            self.entry,
            shot,
            self.root,
            self.chain,
            self.injector,
            self.policy,
            keep,
            collect=self.resilient,
            timed=self.timed,
            schedule=self.schedule,
        )


# -- schedulers ---------------------------------------------------------------


class SerialScheduler:
    """The historical in-order loop (one shot at a time)."""

    name = "serial"
    jobs = 1

    def run(self, task: ShotTask) -> List[ShotOutcome]:
        return [task.run_one(shot) for shot in range(task.shots)]


class ThreadedScheduler:
    """N worker threads pulling chunks off a shared work queue.

    Shots are embarrassingly parallel: each one builds its own backend
    from its own spawned seed, resilience state is shared behind
    :class:`ChainGuard`, and the merge re-sorts outcomes by shot index --
    so the result is bit-identical to :class:`SerialScheduler` for the
    same seed.  (Python threads overlap NumPy kernels, not interpreter
    bytecode; the win grows with statevector width.)

    Dispatch is self-scheduled: the shot range becomes a
    :class:`~repro.runtime.dispatch.ChunkQueue` of guided-size chunks
    and every worker loops ``pop -> run -> pop`` until the queue drains,
    so a straggler thread holds one chunk, not a fixed N-th of the run.

    Fail-fast (non-resilient) semantics match serial: each chunk stops
    at its own first failing shot, so the minimum failing shot across
    chunks is the globally first one -- exactly the error the serial
    loop would have raised.
    """

    name = "threaded"

    def __init__(
        self,
        jobs: int = 4,
        chunk_shots: Optional[int] = None,
        min_chunk_shots: Optional[int] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_shots is not None and chunk_shots < 1:
            raise ValueError("chunk_shots must be >= 1")
        if min_chunk_shots is not None and min_chunk_shots < 1:
            raise ValueError("min_chunk_shots must be >= 1")
        self.jobs = jobs
        self.chunk_shots = chunk_shots
        self.min_chunk_shots = min_chunk_shots

    def run(self, task: ShotTask) -> List[ShotOutcome]:
        if task.shots <= 1 or self.jobs == 1:
            return SerialScheduler().run(task)
        queue = ChunkQueue.for_shots(
            task.shots, self.jobs, self.chunk_shots, self.min_chunk_shots
        )
        merge_lock = threading.Lock()
        outcomes: List[ShotOutcome] = []
        errors: List[Tuple[int, QirRuntimeError]] = []
        pulls: List[int] = []

        def pull_until_drained() -> None:
            pulled = 0
            local: List[ShotOutcome] = []
            local_errors: List[Tuple[int, QirRuntimeError]] = []
            while True:
                chunk = queue.pop()
                if chunk is None:
                    break
                pulled += 1
                for shot in range(chunk.start, chunk.stop):
                    try:
                        local.append(task.run_one(shot))
                    except QirRuntimeError as error:
                        local_errors.append((shot, error))
                        break  # chunk fail-fast: stop at its first failure
            with merge_lock:
                outcomes.extend(local)
                errors.extend(local_errors)
                pulls.append(pulled)

        workers = min(self.jobs, len(queue))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(pull_until_drained) for _ in range(workers)]
            for future in futures:
                future.result()  # a non-QirRuntimeError here is a bug
        if errors:
            raise min(errors, key=lambda e: e[0])[1]
        obs = task.executor.observer
        if obs.enabled:
            obs.inc("scheduler.queue.chunks", queue.stats.dispatched)
            steals = sum(max(0, n - 1) for n in pulls)
            if steals:
                obs.inc("scheduler.queue.steal", steals)
        outcomes.sort(key=lambda o: o.shot)
        return outcomes


# -- process execution --------------------------------------------------------


@dataclass
class _WorkerChunk:
    """Everything one worker process needs, all of it picklable.

    The program travels as serialized plan bytes; resilience state as a
    lock-free :meth:`~repro.resilience.fallback.FallbackChain.worker_clone`
    and the raw :class:`FaultPlan` (per-shot fault decisions are pure
    functions of ``(plan.seed, rule, shot)``, so per-worker injectors
    reconstruct the exact failure set any other scheduler would see).
    """

    index: int
    start: int
    stop: int
    plan_bytes: bytes
    entry: Optional[str]
    backend_name: str
    noise: Optional[NoiseModel]
    step_limit: int
    max_qubits: int
    allow_on_the_fly_qubits: bool
    policy: RetryPolicy
    fault_plan: Optional[FaultPlan]
    chain: FallbackChain
    keep_stats: bool
    resilient: bool
    root: np.random.SeedSequence
    #: This chunk's dispatch attempt (0 on first dispatch, +1 each time the
    #: queue re-enqueues it after a loss); gates transient process-level
    #: fault rules.  The field keeps its historical name so pickled chunks
    #: and test fixtures stay valid across the round -> queue refactor.
    round_index: int = 0
    #: Heartbeat channel (a multiprocessing.Manager dict proxy) when the
    #: supervisor's watchdog is armed; None means run unwatched.
    heartbeat: Optional[object] = None
    #: Minimum seconds between heartbeat writes (IPC cost gate).
    beat_interval: float = 0.0
    #: Run identity (repro.obs.runctx) of the dispatching run, so worker
    #: telemetry joins the parent's trace/ledger.
    run_id: str = ""
    #: Parent's ``perf_counter()`` at dispatch.  Workers report their own
    #: clock relative to this so the merge can rebase span timestamps;
    #: 0.0 means "no rebase information" (older dispatchers, tests).
    dispatch_clock: float = 0.0
    #: Whether workers may use the decoded plan's fused schedule (mirrors
    #: the parent's fusion toggle; the schedule itself is recomputed from
    #: the plan bytes, never pickled).
    fused_enabled: bool = True


@dataclass
class _WorkerReport:
    """One worker's merged contribution, shipped back to the parent."""

    index: int
    outcomes: List[ShotOutcome]
    degraded: bool
    history: List[str]
    faults_raised: int
    seconds: float
    #: Fail-fast mode only: the first error this worker's chunk hit (the
    #: chunk stops there, mirroring the serial loop's early exit).
    error: Optional[QirRuntimeError] = None
    error_shot: int = -1
    #: Parent's dispatch clock echoed back, plus the worker's start time
    #: relative to it (``worker_t0 - dispatch_clock``).  With a ``fork``
    #: start method both processes share CLOCK_MONOTONIC, so the offset is
    #: the real dispatch->start latency; the merge clamps implausible
    #: values (``spawn`` does not guarantee a shared origin).
    dispatch_clock: float = 0.0
    start_offset: float = -1.0
    #: The chunk's shot range and dispatch attempt, echoed back so the
    #: merged ``process.worker`` span can say *which* shots this worker
    #: interval covered (qir-trace workers reads these tags).
    start: int = 0
    stop: int = 0
    round_index: int = 0
    #: The worker process's identity and how many chunks it had already
    #: run (``seq``); the merge maps pids to stable worker ids and tags
    #: ``seq > 0`` chunks as self-scheduled steals.
    pid: int = 0
    seq: int = 0


#: How many chunks *this* process has run (always 0 in the parent: only
#: worker processes call :func:`_run_worker_chunk`).  ``fork`` children
#: inherit the parent's 0; ``spawn`` children re-import to 0.
_WORKER_RUNS = 0

#: One-slot per-process plan cache.  Workers that pull several chunks of
#: the same run decode the serialized plan once, not once per chunk --
#: the whole point of small self-scheduled chunks would otherwise drown
#: in repeated parse cost.
_WORKER_PLAN: Optional[Tuple[bytes, object]] = None


def _worker_plan(plan_bytes: bytes):
    """Decode (or reuse) this process's cached :class:`ExecutionPlan`."""
    global _WORKER_PLAN
    # Imported here, not at module top: plan.py imports nothing from this
    # module at call time, but keeping the worker's import surface explicit
    # makes the spawn path's cost visible in one place.
    from repro.runtime.plan import ExecutionPlan

    cached = _WORKER_PLAN
    if cached is not None and cached[0] == plan_bytes:
        return cached[1]
    plan = ExecutionPlan.from_bytes(plan_bytes)
    _WORKER_PLAN = (plan_bytes, plan)
    return plan


def _run_worker_chunk(chunk: _WorkerChunk) -> Union[_WorkerReport, bytes]:
    """The worker-process entry point: deserialize the plan, run a
    contiguous shot range, report outcomes plus resilience deltas.

    Must stay a module-level function (spawn pickles it by reference).
    Workers run unobserved -- metric folding happens in the parent's
    order-independent merge, same as the threaded scheduler.

    Chaos hooks: a :class:`~repro.resilience.faults.FaultPlan` with
    process-level sites decides this chunk's fate up front (a pure
    function of the plan, the shot range, and the chunk's dispatch
    attempt).  ``worker_crash`` hard-exits before running the poisoned
    shot, ``worker_hang`` stops heartbeating and sleeps until the
    supervisor terminates the process, and ``ipc_corrupt`` ships mangled
    bytes instead of the report.  None of them touch interpreter state,
    so the shots a re-enqueued chunk re-runs are bit-identical.
    """
    global _WORKER_RUNS
    seq = _WORKER_RUNS
    _WORKER_RUNS += 1
    t0 = perf_counter()
    decision = (
        chunk.fault_plan.process_decision(chunk.start, chunk.stop, chunk.round_index)
        if chunk.fault_plan is not None
        else None
    )
    heartbeat = chunk.heartbeat
    if heartbeat is not None:
        try:
            heartbeat[chunk.index] = 0  # "started" beat
        except Exception:
            heartbeat = None  # manager unreachable; run unwatched
    beats = 0
    last_beat = perf_counter()
    plan = _worker_plan(chunk.plan_bytes)
    executor = ShotExecutor(
        chunk.backend_name,
        chunk.noise,
        chunk.step_limit,
        chunk.max_qubits,
        chunk.allow_on_the_fly_qubits,
        NULL_OBSERVER,
    )
    guard = ChainGuard(chunk.chain)
    injector = (
        FaultInjector(chunk.fault_plan) if chunk.fault_plan is not None else None
    )
    outcomes: List[ShotOutcome] = []
    error: Optional[QirRuntimeError] = None
    error_shot = -1
    for shot in range(chunk.start, chunk.stop):
        if decision is not None:
            if shot == decision.crash_shot:
                os._exit(86)  # simulated hard crash: no cleanup, no report
            if shot == decision.hang_shot:
                # Simulated wedge: no more heartbeats, just sleep until
                # the supervisor's watchdog terminates us.  Bounded so an
                # unsupervised run cannot hang forever.
                sleep(3600.0)
                os._exit(87)
        if heartbeat is not None:
            now = perf_counter()
            if now - last_beat >= chunk.beat_interval:
                beats += 1
                try:
                    heartbeat[chunk.index] = beats
                except Exception:
                    heartbeat = None
                last_beat = now
        try:
            outcomes.append(
                executor.run_shot(
                    plan.module,
                    chunk.entry,
                    shot,
                    chunk.root,
                    guard,
                    injector,
                    chunk.policy,
                    chunk.keep_stats,
                    collect=chunk.resilient,
                    timed=False,
                    schedule=plan.fused if chunk.fused_enabled else None,
                )
            )
        except QirRuntimeError as exc:
            # Fail-fast (non-resilient) semantics: stop the chunk at its
            # first failure; the parent raises the globally-first one.
            error = exc
            error_shot = shot
            break
    report = _WorkerReport(
        index=chunk.index,
        outcomes=outcomes,
        degraded=chunk.chain.degraded,
        history=list(chunk.chain.history),
        faults_raised=injector.stats.faults_raised if injector is not None else 0,
        seconds=perf_counter() - t0,
        error=error,
        error_shot=error_shot,
        dispatch_clock=chunk.dispatch_clock,
        start_offset=(t0 - chunk.dispatch_clock) if chunk.dispatch_clock else -1.0,
        start=chunk.start,
        stop=chunk.stop,
        round_index=chunk.round_index,
        pid=os.getpid(),
        seq=seq,
    )
    if decision is not None and decision.corrupt_report:
        # The work was done; the IPC payload is what gets mangled.  The
        # parent sees "not a _WorkerReport" and treats the chunk as lost.
        return corrupt_bytes(
            pickle.dumps(report), seed=chunk.fault_plan.seed ^ (chunk.index + 1)
        )
    return report


def _default_start_method() -> str:
    """Prefer ``fork`` where available (no per-worker interpreter boot or
    re-import cost); ``spawn`` elsewhere.  Workers never rely on inherited
    state either way -- everything arrives via the pickled chunk."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class ProcessScheduler:
    """N worker processes draining a shared self-scheduled chunk queue.

    The GIL escape hatch: for pure-Python-bound per-shot workloads
    (small registers, interpreter-dominated cost) threads buy almost
    nothing -- ``runtime.scheduler.threaded_speedup`` hovers near 1 --
    while processes scale with cores.  The shot range becomes a
    :class:`~repro.runtime.dispatch.ChunkQueue` of guided-size chunks;
    the supervisor drains the queue into the pool in *waves* (all
    pending chunks submitted at once), and the executor's idle processes
    self-schedule them -- a fast worker simply runs more chunks, so one
    straggler caps a chunk, not an N-th of the run.  Each worker decodes
    the compiled :class:`~repro.runtime.plan.ExecutionPlan` from bytes
    once per process (parse of printed IR only; verify, passes, and
    analysis never re-run), executes chunks with the same spawned
    per-shot seeds every other scheduler uses, and ships outcomes back
    for the shared order-independent merge -- so counts are
    bit-identical to serial for a fixed seed.

    Resilience: retry and fault injection are per-shot-deterministic and
    behave exactly as in serial.  Backend fallback degrades to
    *per-worker* demotion (documented in the module docstring): each
    worker demotes its own chain clone, and the merged result ORs the
    ``degraded`` flags and concatenates histories in worker order.

    Supervision (the DESIGN.md state machine) rides on queue state:
    every dispatch wave is watched.  A worker that dies takes the whole
    ``ProcessPoolExecutor`` with it (``BrokenProcessPool``), a worker
    that stops heartbeating within ``worker_timeout`` is terminated, and
    a worker whose IPC payload fails to deserialize is distrusted -- in
    all three cases the affected chunks are *lost*, not fatal: each one
    is simply re-enqueued with its dispatch ``attempt`` bumped, and
    because per-shot seeds are pure functions of ``(root, shot,
    attempt)`` the re-run reproduces bit-identical outcomes.  After
    ``max_worker_failures`` failed waves a circuit breaker stops paying
    pool-restart costs and demotes the remaining shots ``process ->
    threaded -> serial``, recording the demotion in the shared fallback
    history.  ``worker_timeout=None`` (the default) skips the heartbeat
    channel entirely, so the clean path pays no Manager/IPC overhead;
    it is auto-armed when a fault plan injects ``worker_hang`` so a
    chaos run can never wedge.  The watchdog only judges chunks whose
    worker has *started* (first heartbeat written): a chunk waiting in
    the executor's queue is not hung, it just has not been pulled yet.
    """

    name = "process"

    #: Watchdog deadline auto-armed for worker_hang chaos runs (seconds).
    AUTO_HANG_TIMEOUT = 10.0

    #: Extra seconds granted before a worker's *first* heartbeat: process
    #: startup (fork/spawn, plan deserialization) is the pool's cost, not
    #: the worker's, and under load it can exceed a tight ``worker_timeout``
    #: -- without the grace a slow-starting healthy worker reads as hung.
    STARTUP_GRACE = 10.0

    def __init__(
        self,
        jobs: int = 2,
        start_method: Optional[str] = None,
        worker_timeout: Optional[float] = None,
        max_worker_failures: int = 2,
        chunk_shots: Optional[int] = None,
        min_chunk_shots: Optional[int] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError("worker_timeout must be > 0 seconds")
        if max_worker_failures < 1:
            raise ValueError("max_worker_failures must be >= 1")
        if chunk_shots is not None and chunk_shots < 1:
            raise ValueError("chunk_shots must be >= 1")
        if min_chunk_shots is not None and min_chunk_shots < 1:
            raise ValueError("min_chunk_shots must be >= 1")
        self.jobs = jobs
        self.start_method = start_method or _default_start_method()
        self.worker_timeout = worker_timeout
        self.max_worker_failures = max_worker_failures
        self.chunk_shots = chunk_shots
        self.min_chunk_shots = min_chunk_shots
        #: What actually ran: flips to "serial" when the pool would be
        #: pointless (one shot, or one worker).
        self.effective = "process"
        #: :class:`SupervisionRecord` of the most recent supervised run
        #: (None until one happens); the runtime attaches it to the
        #: :class:`ShotsResult`.
        self.supervision: Optional[SupervisionRecord] = None

    def run(self, task: ShotTask) -> List[ShotOutcome]:
        self.supervision = None
        if task.shots <= 1 or self.jobs == 1:
            self.effective = "serial"
            return SerialScheduler().run(task)
        if task.plan_bytes is None:
            raise ValueError(
                "process scheduler needs task.plan_bytes (a serialized "
                "ExecutionPlan); run it through QirRuntime.run_shots"
            )
        supervision = self.supervision = SupervisionRecord()
        obs = task.executor.observer
        t0 = perf_counter()
        try:
            return self._run_supervised(task, supervision, obs, t0)
        finally:
            if obs.enabled:
                obs.tracer.complete(
                    "process.supervisor",
                    start=t0,
                    seconds=perf_counter() - t0,
                    rounds=supervision.rounds,
                    crashes=supervision.crashes,
                    hangs=supervision.hangs,
                    redispatches=supervision.redispatches,
                    state=supervision.state,
                )

    # -- supervision internals ------------------------------------------------
    def _effective_timeout(self, task: ShotTask) -> Optional[float]:
        if self.worker_timeout is not None:
            return self.worker_timeout
        if task.injector is not None and task.injector.plan.has_hang_faults:
            return self.AUTO_HANG_TIMEOUT
        return None

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        try:
            context = multiprocessing.get_context(self.start_method)
            return ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (OSError, ValueError, RuntimeError, ImportError) as error:
            raise PoolStartupError(
                f"could not start the {self.start_method!r} worker pool "
                f"({workers} worker(s)): {error}"
            ) from error

    def _make_chunk(
        self,
        task: ShotTask,
        index: int,
        item: Chunk,
        heartbeat: Optional[object],
        beat_interval: float,
    ) -> _WorkerChunk:
        return _WorkerChunk(
            index=index,
            start=item.start,
            stop=item.stop,
            plan_bytes=task.plan_bytes,
            entry=task.entry,
            backend_name=task.executor.backend_name,
            noise=task.executor.noise,
            step_limit=task.executor.step_limit,
            max_qubits=task.executor.max_qubits,
            allow_on_the_fly_qubits=task.executor.allow_on_the_fly_qubits,
            policy=task.policy,
            fault_plan=task.injector.plan if task.injector is not None else None,
            chain=task.chain.worker_chain(),
            keep_stats=task.keep_stats or task.timed,
            resilient=task.resilient,
            root=task.root,
            round_index=item.attempt,
            heartbeat=heartbeat,
            beat_interval=beat_interval,
            run_id=task.run_id,
            dispatch_clock=perf_counter(),
            fused_enabled=task.schedule is not None,
        )

    def _run_supervised(
        self,
        task: ShotTask,
        supervision: SupervisionRecord,
        obs,
        t0: float,
    ) -> List[ShotOutcome]:
        timeout = supervision.worker_timeout = self._effective_timeout(task)
        manager = None
        heartbeat = None
        beat_interval = 0.0
        if timeout is not None:
            try:
                manager = multiprocessing.get_context(self.start_method).Manager()
                heartbeat = manager.dict()
            except Exception as error:
                raise PoolStartupError(
                    f"could not start the heartbeat manager: {error}"
                ) from error
            beat_interval = min(0.25, timeout / 4.0)
        queue = ChunkQueue.for_shots(
            task.shots, self.jobs, self.chunk_shots, self.min_chunk_shots
        )
        reports: List[_WorkerReport] = []
        missing: List[int] = []
        next_index = 0
        pool: Optional[ProcessPoolExecutor] = None
        pool_broken = False
        try:
            while queue.pending:
                supervision.rounds += 1
                wave = queue.take_all()
                if pool is None or pool_broken:
                    if pool is not None:
                        pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._new_pool(min(self.jobs, len(wave)))
                    pool_broken = False
                dispatch = []
                for item in wave:
                    dispatch.append((
                        self._make_chunk(
                            task, next_index, item, heartbeat, beat_interval
                        ),
                        item,
                    ))
                    next_index += 1
                done_reports, lost, pool_broken = self._await_wave(
                    pool, dispatch, timeout, supervision, obs
                )
                reports.extend(done_reports)
                if any(r.error is not None for r in reports):
                    # Fail-fast mode hit a program/runtime error: stop
                    # supervising, let the merge raise it (re-dispatching
                    # lost chunks would only delay the inevitable).
                    break
                if not lost:
                    break
                supervision.failed_rounds += 1
                if supervision.failed_rounds >= self.max_worker_failures:
                    supervision.breaker_tripped = True
                    if obs.enabled:
                        obs.inc("scheduler.worker.breaker_trip")
                    missing = sorted(
                        s for item in lost for s in range(item.start, item.stop)
                    )
                    break
                supervision.redispatches += len(lost)
                if obs.enabled:
                    obs.inc("scheduler.worker.redispatch", len(lost))
                for item in lost:
                    queue.requeue(item)
        finally:
            if pool is not None:
                pool.shutdown(wait=not pool_broken, cancel_futures=True)
            if manager is not None:
                manager.shutdown()
        outcomes = self._merge(task, reports, obs, t0, queue)
        if missing:
            outcomes.extend(self._run_demoted(task, missing, supervision, obs))
        return outcomes

    def _await_wave(
        self,
        pool: ProcessPoolExecutor,
        dispatch: List[Tuple[_WorkerChunk, Chunk]],
        timeout: Optional[float],
        supervision: SupervisionRecord,
        obs,
    ) -> Tuple[List[_WorkerReport], List[Chunk], bool]:
        """Dispatch one queue wave and watch it; returns (reports, lost,
        broken).

        The whole wave is submitted at once -- the executor's idle
        processes pull chunks as they free up, which *is* the
        self-scheduling: a straggler holds one chunk while its peers
        drain the rest.  ``lost`` holds the queue chunks that produced no
        usable report (crash, hang, corrupt IPC) for re-enqueueing;
        ``broken`` means the pool must be recreated before the next wave.

        The heartbeat watchdog only judges chunks whose worker *started*
        (wrote its first beat): a chunk still waiting in the executor's
        queue is not hung.  A pool-wide stall backstop (no completion,
        start, or beat for ``timeout + STARTUP_GRACE``) catches the case
        where every process wedged before any chunk of the wave started.
        """
        round_index = supervision.rounds - 1
        try:
            futures = {
                pool.submit(_run_worker_chunk, wchunk): (wchunk, item)
                for wchunk, item in dispatch
            }
        except (OSError, RuntimeError, ValueError) as error:
            raise PoolStartupError(
                f"could not dispatch to the {self.start_method!r} worker "
                f"pool: {error}"
            ) from error
        progress = {wchunk.index: (-1, perf_counter()) for wchunk, _ in dispatch}
        hung: Set[int] = set()
        not_done = set(futures)
        last_progress = perf_counter()
        poll = None if timeout is None else max(0.01, min(0.1, timeout / 4.0))
        while not_done:
            done_now, not_done = wait(not_done, timeout=poll)
            if not not_done or timeout is None:
                continue
            now = perf_counter()
            if done_now:
                last_progress = now
            started_pending: List[int] = []
            for future in not_done:
                chunk = futures[future][0]
                try:
                    value = chunk.heartbeat[chunk.index]  # type: ignore[index]
                except Exception:
                    value = -1
                last_value, since = progress[chunk.index]
                if value != last_value:
                    progress[chunk.index] = (value, now)
                    last_progress = now
                    if value >= 0:
                        started_pending.append(chunk.index)
                    continue
                if value < 0:
                    # Not started: still in the executor's queue (or the
                    # pool is wedged pre-start -- the stall backstop
                    # below owns that case, not a per-chunk deadline).
                    continue
                started_pending.append(chunk.index)
                if now - since > timeout:
                    hung.add(chunk.index)
            # Leave once every started still-pending chunk is a detected
            # hang: healthy workers get to finish (and drain the queued
            # chunks they can reach) while the wedged ones wait for the
            # terminate below.
            if (
                hung
                and started_pending
                and all(i in hung for i in started_pending)
            ):
                break
            if now - last_progress > timeout + self.STARTUP_GRACE:
                hung.update(
                    started_pending
                    or [futures[f][0].index for f in not_done]
                )
                break
        if hung:
            self._terminate_workers(pool)
        reports: List[_WorkerReport] = []
        lost: List[Chunk] = []
        broken = bool(hung)
        for future, (chunk, item) in sorted(
            futures.items(), key=lambda entry: entry[1][0].index
        ):
            span = f"shots {chunk.start}..{chunk.stop - 1}"
            if not future.done():
                future.cancel()
                lost.append(item)
                if chunk.index not in hung:
                    # Never started: the chunk goes straight back to the
                    # queue without counting as a worker failure -- its
                    # worker did nothing wrong, the pool died around it.
                    supervision.note(
                        f"round {round_index}: chunk {chunk.index} ({span}) "
                        "returned to the queue undispatched"
                    )
                    continue
                supervision.hangs += 1
                supervision.last_error_code = WorkerTimeoutError.code
                supervision.note(
                    f"round {round_index}: worker {chunk.index} ({span}) "
                    f"missed its {timeout:g}s heartbeat deadline"
                )
                if obs.enabled:
                    obs.inc("scheduler.worker.hang")
                continue
            try:
                result = future.result(timeout=0)
            except BrokenProcessPool:
                broken = True
                supervision.crashes += 1
                supervision.last_error_code = WorkerCrashError.code
                supervision.note(
                    f"round {round_index}: worker {chunk.index} ({span}) "
                    "lost to a worker-process crash"
                )
                if obs.enabled:
                    obs.inc("scheduler.worker.crash")
                lost.append(item)
                continue
            # Any other exception is a worker *bug*, not lost infrastructure;
            # it propagates exactly as the unsupervised pool.map did.
            if isinstance(result, _WorkerReport):
                reports.append(result)
                continue
            supervision.ipc_corruptions += 1
            supervision.last_error_code = WorkerCrashError.code
            supervision.note(
                f"round {round_index}: worker {chunk.index} ({span}) "
                "returned an undecodable report (IPC corruption)"
            )
            if obs.enabled:
                obs.inc("scheduler.worker.ipc_corrupt")
            lost.append(item)
        return reports, lost, broken

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Kill every pool process (hung workers never exit on their own)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def _run_demoted(
        self,
        task: ShotTask,
        shots: List[int],
        supervision: SupervisionRecord,
        obs,
    ) -> List[ShotOutcome]:
        """The breaker tripped: finish the lost shots on cheaper rungs.

        Threaded first (shares the parent's ChainGuard, so fallback
        semantics actually *improve* over per-worker clones), then plain
        serial.  :class:`QirRuntimeError` from a shot propagates -- that
        is the program failing, same as serial fail-fast -- while
        infrastructure errors walk down the ladder until
        :class:`SchedulerExhaustedError` ends it.
        """
        code = supervision.last_error_code or WorkerCrashError.code
        task.chain.note_scheduler_demotion(
            f"scheduler:process -> scheduler:threaded (after {code}: "
            f"{supervision.worker_failures} worker failure(s) in "
            f"{supervision.failed_rounds} round(s))"
        )
        supervision.demoted_to = "threaded"
        supervision.note(
            f"breaker tripped after round {supervision.rounds - 1}: "
            f"re-running {len(shots)} shot(s) on the threaded scheduler"
        )
        try:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(task.run_one, shots))
        except QirRuntimeError:
            raise
        except Exception as error:
            task.chain.note_scheduler_demotion(
                f"scheduler:threaded -> scheduler:serial "
                f"(after {code}: {error})"
            )
            supervision.demoted_to = "serial"
            supervision.note(f"threaded rung failed ({error}); trying serial")
        try:
            return [task.run_one(shot) for shot in shots]
        except QirRuntimeError:
            raise
        except Exception as error:
            raise SchedulerExhaustedError(
                f"process, threaded, and serial schedulers all failed to "
                f"complete {len(shots)} re-dispatched shot(s): {error}"
            ) from error

    @staticmethod
    def _rebase_start(report: _WorkerReport, pool_start: float) -> float:
        """The worker span's start on the *parent's* clock.

        Workers time themselves on their own ``perf_counter``; folding
        their spans in at ``pool_start`` made every worker appear to
        start the instant the pool did.  The report carries the parent's
        dispatch clock plus the worker's start offset from it -- real
        dispatch latency under ``fork`` (shared CLOCK_MONOTONIC), clamped
        away when implausible (``spawn`` clocks share no origin: a
        negative offset, or one that would end the span in the future).
        """
        if report.dispatch_clock <= 0.0:
            return pool_start
        offset = report.start_offset
        if offset >= 0.0 and (
            report.dispatch_clock + offset + report.seconds <= perf_counter()
        ):
            return report.dispatch_clock + offset
        return report.dispatch_clock

    def _merge(
        self,
        task: ShotTask,
        reports: List[_WorkerReport],
        obs,
        pool_start: float,
        queue: Optional[ChunkQueue] = None,
    ) -> List[ShotOutcome]:
        """Fold worker reports into the parent's shared state.

        Chunk-*index* order (not completion order), so histories and
        metric folds are deterministic regardless of pool scheduling.
        Worker ids for span tags come from the reporting process's pid,
        assigned in first-appearance order over that same deterministic
        iteration -- many chunks, few workers, stable labels.
        """
        outcomes: List[ShotOutcome] = []
        first_error: Optional[QirRuntimeError] = None
        first_error_shot = -1
        worker_ids: Dict[int, int] = {}
        for report in sorted(reports, key=lambda r: r.index):
            outcomes.extend(report.outcomes)
            task.chain.absorb_worker(report.degraded, report.history)
            if task.injector is not None and report.faults_raised:
                task.injector.note_fault_raised(report.faults_raised)
            if report.error is not None and (
                first_error is None or report.error_shot < first_error_shot
            ):
                first_error = report.error
                first_error_shot = report.error_shot
            if obs.enabled:
                worker = worker_ids.setdefault(report.pid, len(worker_ids))
                obs.inc("runtime.scheduler.process_chunks")
                obs.tracer.complete(
                    "process.worker",
                    start=self._rebase_start(report, pool_start),
                    seconds=report.seconds,
                    tid=worker + 1,
                    worker=worker,
                    shots=len(report.outcomes),
                    chunk=f"{report.start}..{max(report.start, report.stop - 1)}",
                    round=report.round_index,
                    steal=report.seq > 0,
                )
        if obs.enabled and queue is not None:
            obs.inc("scheduler.queue.chunks", queue.stats.dispatched)
            steals = sum(1 for r in reports if r.seq > 0)
            if steals:
                obs.inc("scheduler.queue.steal", steals)
            if queue.stats.refills:
                obs.inc("scheduler.queue.refill", queue.stats.refills)
        if first_error is not None:
            # Each chunk stops at its own first failure, so the minimum
            # failing shot across chunks is the globally first one -- the
            # exact error the serial loop would have raised.
            raise first_error
        return outcomes


class BatchedScheduler:
    """One vectorised evolution of all shots at once (chunked for memory).

    Applies when the per-shot loop would otherwise dominate: statevector
    backend, no noise, no per-shot resilience, no per-shot stats.  The
    moment the program does something one shared instruction stream
    cannot express per member -- classical feedback on an outcome,
    dynamic `m`-style results -- the attempt aborts with
    :class:`BatchedUnsupported` and the task falls back to the per-shot
    path, so batched execution is sound by construction (the same
    optimistic-abort design as the sampling fast path).
    """

    name = "batched"
    jobs = 1

    def __init__(self) -> None:
        #: What actually ran: stays "batched" on success, flips to
        #: "serial" when the task was ineligible or the batch aborted.
        self.effective = "batched"

    def run(self, task: ShotTask) -> List[ShotOutcome]:
        executor = task.executor
        obs = executor.observer
        reason = self._ineligible_reason(task)
        if reason is None:
            try:
                return run_batched(task)
            except BatchedUnsupported as abort:
                reason = str(abort)
        if obs.enabled:
            obs.inc("runtime.scheduler.batched_fallback", reason=reason)
        self.effective = "serial"
        return SerialScheduler().run(task)

    @staticmethod
    def _ineligible_reason(task: ShotTask) -> Optional[str]:
        executor = task.executor
        if executor.backend_name != "statevector":
            return "non-statevector backend"
        if executor.noise is not None and not executor.noise.is_trivial:
            return "noise model"
        if task.resilient:
            return "per-shot resilience"
        if task.keep_stats:
            return "keep_stats"
        return None


def get_scheduler(
    name: str,
    jobs: int = 1,
    worker_timeout: Optional[float] = None,
    max_worker_failures: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    min_chunk_shots: Optional[int] = None,
):
    """Resolve a scheduler by name (the ``--scheduler`` CLI contract).

    ``worker_timeout`` and ``max_worker_failures`` configure the process
    scheduler's supervisor and are rejected for every other scheduler
    (there are no worker processes to supervise).  ``chunk_shots`` /
    ``min_chunk_shots`` tune the work queue's chunk sizing and are
    rejected for the serial and batched schedulers (no queue there).
    """
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {', '.join(SCHEDULERS)}"
        )
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if name != "process" and (
        worker_timeout is not None or max_worker_failures is not None
    ):
        raise ValueError(
            "worker supervision options (worker_timeout / "
            "max_worker_failures) require the process scheduler"
        )
    if name not in ("threaded", "process") and (
        chunk_shots is not None or min_chunk_shots is not None
    ):
        raise ValueError(
            "chunk sizing options (chunk_shots / min_chunk_shots) require "
            "the threaded or process scheduler"
        )
    if name == "serial":
        if jobs > 1:
            raise ValueError(
                "jobs > 1 requires --scheduler threaded (serial runs one shot "
                "at a time)"
            )
        return SerialScheduler()
    if name == "threaded":
        return ThreadedScheduler(
            jobs=max(2, jobs) if jobs > 1 else 2,
            chunk_shots=chunk_shots,
            min_chunk_shots=min_chunk_shots,
        )
    if name == "process":
        return ProcessScheduler(
            jobs=max(2, jobs) if jobs > 1 else 2,
            worker_timeout=worker_timeout,
            max_worker_failures=(
                2 if max_worker_failures is None else max_worker_failures
            ),
            chunk_shots=chunk_shots,
            min_chunk_shots=min_chunk_shots,
        )
    return BatchedScheduler()


# -- batched execution --------------------------------------------------------


class BatchedUnsupported(Exception):
    """Raised mid-execution when the program cannot run as one batch."""


class BatchedResultStore(ResultStore):
    """Result store for batched runs: static results hold per-member
    outcome *vectors*; reading one back (classical feedback) aborts the
    batch, while the output-recording epilogue (``read_default``) is
    tolerated -- mirroring the sampling fast path's DeferredResultStore."""

    def new_dynamic(self, value):  # noqa: D102 - see class docstring
        raise BatchedUnsupported("dynamic (m-style) results")

    def write(self, pointer: object, value) -> None:
        if not isinstance(pointer, IntPtr):
            raise BatchedUnsupported("dynamic result pointers")
        super().write(pointer, value)

    def read(self, pointer: object):
        value = super().read(pointer)
        if isinstance(value, np.ndarray):
            raise BatchedUnsupported("program feeds back on a measurement result")
        return value

    def read_default(self, pointer: object, default: int = 0) -> int:
        # Output recording only; per-member values are reconstructed by
        # the batch runner from the stored vectors.
        return default

    def member_bitstring(self, member: int) -> str:
        """Member's bitstring, highest result index leftmost (the shared
        rendering convention of the per-shot path and the fast path)."""
        if self.max_static_index < 0:
            return ""
        bits = []
        for address in range(self.max_static_index, -1, -1):
            value = self._static.get(address, 0)
            if isinstance(value, np.ndarray):
                bits.append(str(int(value[member])))
            else:
                bits.append(str(int(value)))
        return "".join(bits)


def batch_chunk_size(shots: int, required_qubits: Optional[int]) -> int:
    """How many members one batched evolution should carry.

    Bounded by an overall amplitude budget (so wide registers get small
    chunks) and a hard cap; unknown widths use a conservative guess.
    """
    width = required_qubits if required_qubits is not None else 12
    chunk = max(1, _BATCH_AMPLITUDE_BUDGET >> max(0, width))
    return max(1, min(shots, chunk, _BATCH_CHUNK_CAP))


def run_batched(task: ShotTask) -> List[ShotOutcome]:
    """Evolve all shots as chunked batches; one interpreter run per chunk.

    Member ``i`` of the batch draws from the same spawned seed the serial
    scheduler would hand shot ``i``'s backend, so counts are identical.
    """
    executor = task.executor
    obs = executor.observer
    chunk_size = batch_chunk_size(task.shots, task.required_qubits)
    outcomes: List[ShotOutcome] = []
    start = 0
    while start < task.shots:
        size = min(chunk_size, task.shots - start)
        seeds = [
            shot_sequence(task.root, start + member, 0) for member in range(size)
        ]
        backend = BatchedStatevectorSimulator(
            size, seeds=seeds, max_qubits=executor.max_qubits
        )
        if task.schedule is not None:
            # Fused batched path: the kernel schedule replaces the whole
            # interpreter walk, one pre-multiplied pass per kernel over
            # the (batch, 2**n) array.  Per-member RNGs draw in the same
            # member order as the interpreter's batched measure, so
            # counts stay bit-identical.
            strings = run_fused_batched(task.schedule, backend)
            if obs.enabled:
                obs.inc("runtime.scheduler.batched_chunks")
            for member in range(size):
                outcomes.append(
                    ShotOutcome(
                        shot=start + member,
                        bitstring=strings[member],
                        backend_label=executor.backend_name,
                    )
                )
            start += size
            continue
        results = BatchedResultStore()
        interp = Interpreter(
            task.module,
            backend,  # type: ignore[arg-type]
            step_limit=executor.step_limit,
            allow_on_the_fly_qubits=executor.allow_on_the_fly_qubits,
            observer=executor.observer,
            results=results,
        )
        interp.run(task.entry)
        if obs.enabled:
            obs.inc("runtime.scheduler.batched_chunks")
            fold_intrinsic_stats(obs, interp.stats)
        for member in range(size):
            outcomes.append(
                ShotOutcome(
                    shot=start + member,
                    bitstring=results.member_bitstring(member),
                    backend_label=executor.backend_name,
                )
            )
        start += size
    return outcomes


# -- merging ------------------------------------------------------------------


def fold_intrinsic_stats(obs, stats: InterpreterStats) -> None:
    """Roll per-intrinsic profile counters into the observer's metrics."""
    for name, n in stats.intrinsic_calls.items():
        obs.inc("runtime.intrinsic_calls", n, intrinsic=name)
    for name, s in stats.intrinsic_seconds.items():
        obs.inc("runtime.intrinsic_seconds", s, intrinsic=name)


def build_shots_result(
    task: ShotTask, outcomes: List[ShotOutcome], scheduler_name: str
) -> ShotsResult:
    """Deterministic order-independent merge of per-shot outcomes.

    All observer metric writes happen here, on the scheduling thread, so
    worker threads never touch shared metric state.
    """
    outcomes = sorted(outcomes, key=lambda o: o.shot)
    obs = task.executor.observer
    profiled = obs.enabled

    counts: Dict[str, int] = {}
    all_stats: List[InterpreterStats] = []
    per_backend_stats: Dict[str, InterpreterStats] = {}
    failures: List[ShotFailure] = []
    per_error: Dict[str, int] = {}
    backend_counts: Dict[str, int] = {}
    retried = 0

    for outcome in outcomes:
        if profiled:
            if outcome.seconds is not None:
                obs.observe("runtime.shot_seconds", outcome.seconds)
            if outcome.stats is not None:
                fold_intrinsic_stats(obs, outcome.stats)
            if outcome.attempts > 1:
                obs.inc("resilience.retry_attempts", outcome.attempts - 1)
        if outcome.failure is not None:
            failures.append(outcome.failure)
            code = outcome.failure.code
            per_error[code] = per_error.get(code, 0) + 1
            if profiled:
                obs.inc("resilience.shot_failures", code=code)
            continue
        assert outcome.bitstring is not None
        counts[outcome.bitstring] = counts.get(outcome.bitstring, 0) + 1
        if outcome.attempts > 1:
            retried += 1
            if profiled:
                obs.inc("resilience.retried_shots")
        if task.resilient:
            label = outcome.backend_label
            backend_counts[label] = backend_counts.get(label, 0) + 1
            if task.keep_stats and outcome.stats is not None:
                bucket = per_backend_stats.get(label)
                if bucket is None:
                    bucket = per_backend_stats[label] = InterpreterStats()
                bucket.merge(outcome.stats)
        if task.keep_stats and outcome.stats is not None:
            all_stats.append(outcome.stats)

    if profiled:
        demotions = task.chain.demotions_this_run
        if demotions:
            obs.inc("resilience.demotions", demotions)
        if task.injector is not None:
            obs.inc(
                "resilience.faults_injected", task.injector.stats.faults_raised
            )

    if not task.resilient:
        return ShotsResult(
            counts=sorted_counts(counts),
            shots=task.shots,
            per_shot_stats=all_stats,
            scheduler=scheduler_name,
        )
    return ShotsResult(
        counts=sorted_counts(counts),
        shots=task.shots,
        per_shot_stats=all_stats,
        per_backend_stats=dict(sorted(per_backend_stats.items())),
        failed_shots=failures,
        per_error_counts=dict(sorted(per_error.items())),
        degraded=task.chain.degraded,
        backend_shot_counts=dict(sorted(backend_counts.items())),
        fallback_history=task.chain.history,
        retried_shots=retried,
        scheduler=scheduler_name,
    )
