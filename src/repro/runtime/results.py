"""Measurement-result storage.

Static results (``inttoptr`` constants / ``null``) index a table written by
``__quantum__qis__mz__body``; dynamic results are handles returned by
``__quantum__qis__m__body``.  ``read_result`` / ``result_equal`` read back
either kind -- the feedback path of the adaptive profiles.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.runtime.errors import QirRuntimeError
from repro.runtime.values import IntPtr, ResultPtr

# Sentinel handles for __quantum__rt__result_get_zero / _one.
RESULT_ZERO = ResultPtr(-1)
RESULT_ONE = ResultPtr(-2)


class ResultStore:
    def __init__(self) -> None:
        self._static: Dict[int, int] = {}
        self._dynamic: Dict[int, int] = {}
        self._next_handle = 0
        self.max_static_index = -1

    def new_dynamic(self, value: int) -> ResultPtr:
        handle = self._next_handle
        self._next_handle += 1
        self._dynamic[handle] = value
        return ResultPtr(handle)

    def write(self, pointer: object, value: int) -> None:
        if isinstance(pointer, IntPtr):
            self._static[pointer.address] = value
            self.max_static_index = max(self.max_static_index, pointer.address)
            return
        if isinstance(pointer, ResultPtr):
            if pointer.id < 0:
                raise QirRuntimeError("cannot write to a constant result")
            self._dynamic[pointer.id] = value
            return
        raise QirRuntimeError(f"{pointer!r} is not a result pointer")

    def read(self, pointer: object) -> int:
        if isinstance(pointer, ResultPtr):
            if pointer == RESULT_ZERO:
                return 0
            if pointer == RESULT_ONE:
                return 1
            value = self._dynamic.get(pointer.id)
            if value is None:
                raise QirRuntimeError(f"read of unmeasured {pointer!r}")
            return value
        if isinstance(pointer, IntPtr):
            value = self._static.get(pointer.address)
            if value is None:
                raise QirRuntimeError(
                    f"read of unmeasured static result {pointer.address}"
                )
            return value
        raise QirRuntimeError(f"{pointer!r} is not a result pointer")

    def read_default(self, pointer: object, default: int = 0) -> int:
        try:
            return self.read(pointer)
        except QirRuntimeError:
            return default

    def static_bits(self, count: Optional[int] = None) -> Dict[int, int]:
        """The static result table (index -> bit)."""
        if count is None:
            return dict(self._static)
        return {i: self._static.get(i, 0) for i in range(count)}
