"""High-level execution API: run QIR programs for one or many shots.

Measurement collapses simulator state, so -- exactly like the QIR
Alliance's ``qir-runner`` -- multi-shot execution re-interprets the program
per shot with fresh simulator state and aggregates the recorded outputs
into a histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.llvmir.module import Module
from repro.llvmir.parser import parse_assembly
from repro.runtime.interpreter import Interpreter, InterpreterStats
from repro.runtime.output import OutputRecord
from repro.runtime.sampling_fastpath import (
    DeferredMeasurementBackend,
    DeferredResultStore,
    FastPathUnsupported,
    sample_counts_from,
)
from repro.sim.noise import NoiseModel, NoisyBackend
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import StatevectorSimulator

ModuleLike = Union[Module, str]


@dataclass
class ExecutionResult:
    """Outcome of one shot."""

    output_records: List[OutputRecord]
    result_bits: List[int]
    bitstring: str
    messages: List[str]
    stats: InterpreterStats
    return_value: object = None

    def render_output(self) -> str:
        return "\n".join(r.render() for r in self.output_records)


@dataclass
class ShotsResult:
    """Aggregate over many shots."""

    counts: Dict[str, int]
    shots: int
    per_shot_stats: List[InterpreterStats] = field(default_factory=list)
    used_fast_path: bool = False

    def probabilities(self) -> Dict[str, float]:
        return {k: v / self.shots for k, v in self.counts.items()}


def _as_module(program: ModuleLike) -> Module:
    if isinstance(program, str):
        return parse_assembly(program)
    return program


def _make_backend(
    name: str,
    seed: Optional[int],
    max_qubits: int,
    noise: Optional[NoiseModel] = None,
):
    if name == "statevector":
        backend = StatevectorSimulator(0, seed=seed, max_qubits=max_qubits)
    elif name == "stabilizer":
        backend = StabilizerSimulator(0, seed=seed)
    else:
        raise ValueError(f"unknown backend {name!r}")
    if noise is not None and not noise.is_trivial:
        # The wrapper needs its own stream: seeding it identically to the
        # inner simulator would correlate error injection with measurement
        # outcomes (their first random draws would coincide).
        noise_seed = None if seed is None else (seed ^ 0x9E3779B97F4A7C15) & (2**63 - 1)
        return NoisyBackend(backend, noise, seed=noise_seed)
    return backend


class QirRuntime:
    """A configured runtime: backend choice, seeding, step limits.

    >>> rt = QirRuntime(backend="statevector", seed=7)
    >>> result = rt.execute(qir_text)
    >>> counts = rt.run_shots(qir_text, shots=1000).counts
    """

    def __init__(
        self,
        backend: str = "statevector",
        seed: Optional[int] = None,
        step_limit: int = 10_000_000,
        max_qubits: int = 26,
        allow_on_the_fly_qubits: bool = True,
        noise: Optional[NoiseModel] = None,
    ):
        self.backend_name = backend
        self.seed = seed
        self.step_limit = step_limit
        self.max_qubits = max_qubits
        self.allow_on_the_fly_qubits = allow_on_the_fly_qubits
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def execute(
        self, program: ModuleLike, entry: Optional[str] = None
    ) -> ExecutionResult:
        """Run a single shot and return its full execution record."""
        module = _as_module(program)
        backend = _make_backend(
            self.backend_name,
            int(self._rng.integers(2**63)),
            self.max_qubits,
            self.noise,
        )
        interp = Interpreter(
            module,
            backend,
            step_limit=self.step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
        )
        value = interp.run(entry)
        bits = interp.output.result_bits()
        # If the program recorded no output, fall back to the static result
        # table so base-profile programs without an epilogue still report.
        if not bits and interp.results.max_static_index >= 0:
            table = interp.results.static_bits(interp.results.max_static_index + 1)
            bits = [table[i] for i in sorted(table)]
        bitstring = "".join(str(b) for b in reversed(bits))
        return ExecutionResult(
            output_records=list(interp.output.records),
            result_bits=bits,
            bitstring=bitstring,
            messages=list(interp.messages),
            stats=interp.stats,
            return_value=value,
        )

    def run_shots(
        self,
        program: ModuleLike,
        shots: int = 1024,
        entry: Optional[str] = None,
        keep_stats: bool = False,
        sampling: str = "auto",
    ) -> ShotsResult:
        """Run many shots (parsing once) and histogram the result bitstrings.

        ``sampling``:

        * ``"auto"`` (default) -- attempt the deferred-measurement fast path
          (one statevector evolution, then joint sampling) and fall back to
          per-shot interpretation when the program is not sampleable (mid-
          circuit feedback, re-measurement, noise, non-statevector backend);
        * ``"never"`` -- always interpret per shot (the qir-runner model);
        * ``"require"`` -- fast path or raise :class:`FastPathUnsupported`.
        """
        if sampling not in ("auto", "never", "require"):
            raise ValueError(f"unknown sampling mode {sampling!r}")
        module = _as_module(program)

        can_try = (
            sampling != "never"
            and self.backend_name == "statevector"
            and (self.noise is None or self.noise.is_trivial)
            and not keep_stats
        )
        if can_try:
            try:
                counts = self._run_shots_sampled(module, shots, entry)
                return ShotsResult(counts=counts, shots=shots, used_fast_path=True)
            except FastPathUnsupported:
                if sampling == "require":
                    raise
        elif sampling == "require":
            raise FastPathUnsupported(
                "sampling fast path requires the statevector backend, no "
                "noise, and keep_stats=False"
            )

        counts = {}
        all_stats: List[InterpreterStats] = []
        for _ in range(shots):
            result = self.execute(module, entry)
            counts[result.bitstring] = counts.get(result.bitstring, 0) + 1
            if keep_stats:
                all_stats.append(result.stats)
        return ShotsResult(counts=counts, shots=shots, per_shot_stats=all_stats)

    def _run_shots_sampled(
        self, module: Module, shots: int, entry: Optional[str]
    ) -> Dict[str, int]:
        """One evolution + joint sampling (see runtime.sampling_fastpath)."""
        inner = StatevectorSimulator(
            0, seed=int(self._rng.integers(2**63)), max_qubits=self.max_qubits
        )
        backend = DeferredMeasurementBackend(inner)
        interp = Interpreter(
            module,
            backend,  # type: ignore[arg-type]
            step_limit=self.step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
        )
        results = DeferredResultStore()
        interp.results = results
        interp.run(entry)
        return sample_counts_from(backend, results, shots)


def execute(
    program: ModuleLike,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    **kwargs,
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`QirRuntime`."""
    return QirRuntime(backend=backend, seed=seed, **kwargs).execute(program, entry)


def run_shots(
    program: ModuleLike,
    shots: int = 1024,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    **kwargs,
) -> ShotsResult:
    return QirRuntime(backend=backend, seed=seed, **kwargs).run_shots(
        program, shots, entry
    )
