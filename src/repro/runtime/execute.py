"""High-level execution API: run QIR programs for one or many shots.

Measurement collapses simulator state, so -- exactly like the QIR
Alliance's ``qir-runner`` -- multi-shot execution re-interprets the program
per shot with fresh simulator state and aggregates the recorded outputs
into a histogram.

Resilient execution (see :mod:`repro.resilience`): ``run_shots`` accepts a
:class:`~repro.resilience.retry.RetryPolicy` (per-shot retry with backoff),
a :class:`~repro.resilience.faults.FaultPlan` (seeded fault injection for
exercising failure paths), and a
:class:`~repro.resilience.fallback.FallbackChain` (backend demotion).  In
resilient mode a failing shot never destroys the run: the result carries
the aggregated successes plus structured per-shot failure records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.llvmir.module import Module
from repro.llvmir.parser import parse_assembly
from repro.obs.observer import as_observer
from repro.resilience.fallback import BackendLevel, FallbackChain, program_is_clifford
from repro.resilience.faults import FaultInjector, FaultPlan, FaultyBackend, ShotFaultContext
from repro.resilience.report import ShotFailure, render_failure_report
from repro.resilience.retry import RetryPolicy
from repro.runtime.errors import QirRuntimeError
from repro.runtime.interpreter import Interpreter, InterpreterStats
from repro.runtime.output import OutputRecord
from repro.runtime.sampling_fastpath import (
    DeferredMeasurementBackend,
    DeferredResultStore,
    FastPathUnsupported,
    sample_counts_from,
)
from repro.sim.noise import NoiseModel, NoisyBackend
from repro.sim.stabilizer import StabilizerSimulator
from repro.sim.statevector import StatevectorSimulator

ModuleLike = Union[Module, str]


@dataclass
class ExecutionResult:
    """Outcome of one shot."""

    output_records: List[OutputRecord]
    result_bits: List[int]
    bitstring: str
    messages: List[str]
    stats: InterpreterStats
    return_value: object = None

    def render_output(self) -> str:
        return "\n".join(r.render() for r in self.output_records)


@dataclass
class ShotsResult:
    """Aggregate over many shots.

    ``counts`` holds the successful shots only, with bitstring keys in
    stable (sorted) order.  ``shots`` is the number *requested*; use
    ``successful_shots`` as the denominator for rates so a partially
    failed run does not skew downstream statistics.
    """

    counts: Dict[str, int]
    shots: int
    per_shot_stats: List[InterpreterStats] = field(default_factory=list)
    used_fast_path: bool = False
    # -- observability (repro.obs) --------------------------------------------
    wall_seconds: float = 0.0
    # Per-backend InterpreterStats aggregation (keep_stats=True in resilient
    # mode): after a FallbackChain demotion the work done on each rung of
    # the ladder stays attributable.
    per_backend_stats: Dict[str, InterpreterStats] = field(default_factory=dict)
    # -- partial-result recovery (resilient mode) -----------------------------
    failed_shots: List[ShotFailure] = field(default_factory=list)
    per_error_counts: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    backend_shot_counts: Dict[str, int] = field(default_factory=dict)
    fallback_history: List[str] = field(default_factory=list)
    retried_shots: int = 0

    @property
    def total_shots(self) -> int:
        """Shots requested (successes + failures)."""
        return self.shots

    @property
    def successful_shots(self) -> int:
        return self.shots - len(self.failed_shots)

    def probabilities(self) -> Dict[str, float]:
        denominator = self.successful_shots
        if denominator <= 0:
            return {}
        return {k: v / denominator for k, v in self.counts.items()}

    @property
    def shots_per_second(self) -> float:
        """Successful-shot throughput over the measured wall time.

        Coarse clocks can report ``wall_seconds == 0`` for very fast runs
        (notably the sampling fast path); the convention -- shared with
        ``render_timing_line`` and the ``runtime.shots_per_second`` gauge
        -- is to report ``0.0`` ("not measurable"), never ``inf``/``nan``.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.successful_shots / self.wall_seconds

    def aggregated_stats(self) -> InterpreterStats:
        """Sum of per-shot stats (requires ``keep_stats=True``)."""
        return InterpreterStats.aggregate(self.per_shot_stats)

    def failure_report(self) -> str:
        return render_failure_report(
            self.failed_shots,
            self.per_error_counts,
            self.degraded,
            self.fallback_history,
            wall_seconds=self.wall_seconds,
            successful_shots=self.successful_shots,
        )


def _as_module(program: ModuleLike) -> Module:
    if isinstance(program, str):
        return parse_assembly(program)
    return program


def _sorted_counts(counts: Dict[str, int]) -> Dict[str, int]:
    """Stable bitstring ordering so reports and diffs are deterministic."""
    return dict(sorted(counts.items()))


def _make_backend(
    name: str,
    seed: Optional[int],
    max_qubits: int,
    noise: Optional[NoiseModel] = None,
):
    if name == "statevector":
        backend = StatevectorSimulator(0, seed=seed, max_qubits=max_qubits)
    elif name == "stabilizer":
        backend = StabilizerSimulator(0, seed=seed)
    else:
        raise ValueError(f"unknown backend {name!r}")
    if noise is not None and not noise.is_trivial:
        # The wrapper needs its own stream: seeding it identically to the
        # inner simulator would correlate error injection with measurement
        # outcomes (their first random draws would coincide).
        noise_seed = None if seed is None else (seed ^ 0x9E3779B97F4A7C15) & (2**63 - 1)
        return NoisyBackend(backend, noise, seed=noise_seed)
    return backend


class QirRuntime:
    """A configured runtime: backend choice, seeding, step limits.

    >>> rt = QirRuntime(backend="statevector", seed=7)
    >>> result = rt.execute(qir_text)
    >>> counts = rt.run_shots(qir_text, shots=1000).counts
    """

    def __init__(
        self,
        backend: str = "statevector",
        seed: Optional[int] = None,
        step_limit: int = 10_000_000,
        max_qubits: int = 26,
        allow_on_the_fly_qubits: bool = True,
        noise: Optional[NoiseModel] = None,
        observer=None,
    ):
        self.backend_name = backend
        self.seed = seed
        self.step_limit = step_limit
        self.max_qubits = max_qubits
        self.allow_on_the_fly_qubits = allow_on_the_fly_qubits
        self.noise = noise
        # Observability (repro.obs): the default is the shared no-op whose
        # hot-path cost is a single attribute check (bench_obs.py guards it).
        self.observer = as_observer(observer)
        self._rng = np.random.default_rng(seed)

    # -- single-shot ---------------------------------------------------------
    def execute(
        self, program: ModuleLike, entry: Optional[str] = None
    ) -> ExecutionResult:
        """Run a single shot and return its full execution record."""
        module = _as_module(program)
        level = BackendLevel(self.backend_name, noisy=True)
        return self._run_single(module, entry, level, ctx=None)

    def _effective_noise(self, level: BackendLevel) -> Optional[NoiseModel]:
        if not level.noisy:
            return None
        return self.noise

    def _level_label(self, level: BackendLevel) -> str:
        noise = self._effective_noise(level)
        if noise is not None and not noise.is_trivial:
            return f"{level.backend}+noise"
        return level.backend

    def _run_single(
        self,
        module: Module,
        entry: Optional[str],
        level: BackendLevel,
        ctx: Optional[ShotFaultContext],
    ) -> ExecutionResult:
        backend = _make_backend(
            level.backend,
            int(self._rng.integers(2**63)),
            self.max_qubits,
            self._effective_noise(level),
        )
        step_limit = self.step_limit
        fault_hook = None
        if ctx is not None and not ctx.is_inert:
            backend = FaultyBackend(backend, ctx)
            step_limit = ctx.step_limit(self.step_limit)
            if ctx.wants_intrinsic_hook:
                fault_hook = ctx.intrinsic_hook
        interp = Interpreter(
            module,
            backend,
            step_limit=step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
            fault_hook=fault_hook,
            observer=self.observer,
        )
        value = interp.run(entry)
        if self.observer.enabled:
            self._fold_intrinsic_metrics(interp.stats)
        bits = interp.output.result_bits()
        # If the program recorded no output, fall back to the static result
        # table so base-profile programs without an epilogue still report.
        if not bits and interp.results.max_static_index >= 0:
            table = interp.results.static_bits(interp.results.max_static_index + 1)
            bits = [table[i] for i in sorted(table)]
        if ctx is not None and not ctx.is_inert:
            bits = ctx.mangle_bits(bits)
        bitstring = "".join(str(b) for b in reversed(bits))
        return ExecutionResult(
            output_records=list(interp.output.records),
            result_bits=bits,
            bitstring=bitstring,
            messages=list(interp.messages),
            stats=interp.stats,
            return_value=value,
        )

    def _fold_intrinsic_metrics(self, stats: InterpreterStats) -> None:
        """Roll a shot's per-intrinsic profile into the observer's metrics."""
        obs = self.observer
        for name, n in stats.intrinsic_calls.items():
            obs.inc("runtime.intrinsic_calls", n, intrinsic=name)
        for name, s in stats.intrinsic_seconds.items():
            obs.inc("runtime.intrinsic_seconds", s, intrinsic=name)

    # -- multi-shot ----------------------------------------------------------
    def run_shots(
        self,
        program: ModuleLike,
        shots: int = 1024,
        entry: Optional[str] = None,
        keep_stats: bool = False,
        sampling: str = "auto",
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        fallback: Optional[FallbackChain] = None,
        collect_failures: bool = False,
    ) -> ShotsResult:
        """Run many shots (parsing once) and histogram the result bitstrings.

        ``sampling``:

        * ``"auto"`` (default) -- attempt the deferred-measurement fast path
          (one statevector evolution, then joint sampling) and fall back to
          per-shot interpretation when the program is not sampleable (mid-
          circuit feedback, re-measurement, noise, non-statevector backend);
        * ``"never"`` -- always interpret per shot (the qir-runner model);
        * ``"require"`` -- fast path or raise :class:`FastPathUnsupported`.

        Passing any of ``retry`` / ``fault_plan`` / ``fallback`` (or
        ``collect_failures=True``) selects the *resilient* per-shot loop:
        failures are retried per ``retry``, the backend may be demoted per
        ``fallback``, and shots that still fail are returned as structured
        records on the result instead of raising.
        """
        if sampling not in ("auto", "never", "require"):
            raise ValueError(f"unknown sampling mode {sampling!r}")
        obs = self.observer
        t0 = perf_counter()
        if obs.enabled:
            with obs.span("run_shots", shots=shots, sampling=sampling) as span:
                result = self._run_shots_impl(
                    program, shots, entry, keep_stats, sampling,
                    retry, fault_plan, fallback, collect_failures,
                )
                span.tag("fast_path", result.used_fast_path)
        else:
            result = self._run_shots_impl(
                program, shots, entry, keep_stats, sampling,
                retry, fault_plan, fallback, collect_failures,
            )
        result.wall_seconds = perf_counter() - t0
        if obs.enabled:
            obs.inc("runtime.shots.requested", shots)
            path = "runtime.shots.fastpath" if result.used_fast_path else "runtime.shots.per_shot"
            obs.inc(path, shots)
            obs.observe("runtime.run_seconds", result.wall_seconds)
            if result.wall_seconds > 0:
                obs.set_gauge("runtime.shots_per_second", result.shots_per_second)
        return result

    def _run_shots_impl(
        self,
        program: ModuleLike,
        shots: int,
        entry: Optional[str],
        keep_stats: bool,
        sampling: str,
        retry: Optional[RetryPolicy],
        fault_plan: Optional[FaultPlan],
        fallback: Optional[FallbackChain],
        collect_failures: bool,
    ) -> ShotsResult:
        module = _as_module(program)

        resilient = (
            retry is not None
            or fault_plan is not None
            or fallback is not None
            or collect_failures
        )
        if resilient:
            if sampling == "require":
                raise FastPathUnsupported(
                    "sampling fast path is per-run, not per-shot; it cannot "
                    "inject, retry, or degrade individual shots"
                )
            return self._run_shots_resilient(
                module, shots, entry, keep_stats, retry, fault_plan, fallback
            )

        can_try = (
            sampling != "never"
            and self.backend_name == "statevector"
            and (self.noise is None or self.noise.is_trivial)
            and not keep_stats
        )
        if can_try:
            try:
                counts = self._run_shots_sampled(module, shots, entry)
                return ShotsResult(
                    counts=_sorted_counts(counts), shots=shots, used_fast_path=True
                )
            except FastPathUnsupported:
                if sampling == "require":
                    raise
        elif sampling == "require":
            raise FastPathUnsupported(
                "sampling fast path requires the statevector backend, no "
                "noise, and keep_stats=False"
            )

        counts: Dict[str, int] = {}
        all_stats: List[InterpreterStats] = []
        obs = self.observer
        profiled = obs.enabled
        for _ in range(shots):
            if profiled:
                s0 = perf_counter()
                result = self.execute(module, entry)
                obs.observe("runtime.shot_seconds", perf_counter() - s0)
            else:
                result = self.execute(module, entry)
            counts[result.bitstring] = counts.get(result.bitstring, 0) + 1
            if keep_stats:
                all_stats.append(result.stats)
        return ShotsResult(
            counts=_sorted_counts(counts), shots=shots, per_shot_stats=all_stats
        )

    def _run_shots_resilient(
        self,
        module: Module,
        shots: int,
        entry: Optional[str],
        keep_stats: bool,
        retry: Optional[RetryPolicy],
        fault_plan: Optional[FaultPlan],
        fallback: Optional[FallbackChain],
    ) -> ShotsResult:
        policy = retry if retry is not None else RetryPolicy(max_attempts=1)
        injector = FaultInjector(fault_plan) if fault_plan is not None else None
        chain = fallback if fallback is not None else FallbackChain(
            [BackendLevel(self.backend_name, noisy=True)]
        )
        chain.set_program_is_clifford(program_is_clifford(module))

        counts: Dict[str, int] = {}
        all_stats: List[InterpreterStats] = []
        per_backend_stats: Dict[str, InterpreterStats] = {}
        failures: List[ShotFailure] = []
        per_error: Dict[str, int] = {}
        backend_counts: Dict[str, int] = {}
        retried = 0
        obs = self.observer
        profiled = obs.enabled

        for shot in range(shots):
            ctx = injector.context(shot) if injector is not None else None
            total_attempts = 0
            s0 = perf_counter() if profiled else 0.0
            while True:
                level = chain.current
                result, error, attempts = self._attempt_shot(
                    module, entry, level, ctx, policy
                )
                total_attempts += attempts
                if error is None:
                    assert result is not None
                    chain.note_success()
                    label = self._level_label(level)
                    counts[result.bitstring] = counts.get(result.bitstring, 0) + 1
                    backend_counts[label] = backend_counts.get(label, 0) + 1
                    if total_attempts > 1:
                        retried += 1
                        if profiled:
                            obs.inc("resilience.retried_shots")
                    if keep_stats:
                        all_stats.append(result.stats)
                        bucket = per_backend_stats.get(label)
                        if bucket is None:
                            bucket = per_backend_stats[label] = InterpreterStats()
                        bucket.merge(result.stats)
                    break
                if chain.note_failure(error):
                    if profiled:
                        obs.inc("resilience.demotions")
                    continue  # demoted: replay this shot on the new level
                failure = ShotFailure.from_error(
                    shot, error, total_attempts, self._level_label(level)
                )
                failures.append(failure)
                per_error[failure.code] = per_error.get(failure.code, 0) + 1
                if profiled:
                    obs.inc("resilience.shot_failures", code=failure.code)
                break
            if profiled:
                obs.observe("runtime.shot_seconds", perf_counter() - s0)
                if total_attempts > 1:
                    obs.inc("resilience.retry_attempts", total_attempts - 1)

        if profiled and injector is not None:
            obs.inc("resilience.faults_injected", injector.stats.faults_raised)

        return ShotsResult(
            counts=_sorted_counts(counts),
            shots=shots,
            per_shot_stats=all_stats,
            per_backend_stats=dict(sorted(per_backend_stats.items())),
            failed_shots=failures,
            per_error_counts=dict(sorted(per_error.items())),
            degraded=chain.degraded,
            backend_shot_counts=dict(sorted(backend_counts.items())),
            fallback_history=list(chain.history),
            retried_shots=retried,
        )

    def _attempt_shot(
        self,
        module: Module,
        entry: Optional[str],
        level: BackendLevel,
        ctx: Optional[ShotFaultContext],
        policy: RetryPolicy,
    ) -> Tuple[Optional[ExecutionResult], Optional[QirRuntimeError], int]:
        """Run one shot with per-attempt retry; returns (result, error, attempts)."""
        noisy = self._effective_noise(level) is not None
        last_error: Optional[QirRuntimeError] = None
        for attempt in range(1, policy.max_attempts + 1):
            if ctx is not None:
                ctx.begin_attempt(attempt - 1, level.backend, noisy)
            try:
                return self._run_single(module, entry, level, ctx), None, attempt
            except QirRuntimeError as error:
                last_error = error
                if not policy.should_retry(error, attempt):
                    return None, error, attempt
                policy.wait(attempt, self._rng)
        return None, last_error, policy.max_attempts

    def _run_shots_sampled(
        self, module: Module, shots: int, entry: Optional[str]
    ) -> Dict[str, int]:
        """One evolution + joint sampling (see runtime.sampling_fastpath)."""
        inner = StatevectorSimulator(
            0, seed=int(self._rng.integers(2**63)), max_qubits=self.max_qubits
        )
        backend = DeferredMeasurementBackend(inner)
        interp = Interpreter(
            module,
            backend,  # type: ignore[arg-type]
            step_limit=self.step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
            observer=self.observer,
        )
        results = DeferredResultStore()
        interp.results = results
        interp.run(entry)
        if self.observer.enabled:
            self._fold_intrinsic_metrics(interp.stats)
        return sample_counts_from(backend, results, shots)


@dataclass(frozen=True)
class FastpathComparison:
    """Measured sampled-fastpath vs per-shot cost for one workload.

    ``speedup`` is the win factor of the deferred-measurement fast path
    over per-shot re-interpretation (>1 means the fast path is faster);
    ``None`` when the fast-path timing was below clock resolution, so the
    ratio would be meaningless (the ``shots_per_second`` convention).
    """

    shots: int
    repeats: int
    fastpath_seconds: float
    per_shot_seconds: float

    @property
    def speedup(self) -> Optional[float]:
        if self.fastpath_seconds <= 0.0:
            return None
        return self.per_shot_seconds / self.fastpath_seconds

    @property
    def fastpath_shots_per_second(self) -> float:
        if self.fastpath_seconds <= 0.0:
            return 0.0
        return self.shots / self.fastpath_seconds

    @property
    def per_shot_shots_per_second(self) -> float:
        if self.per_shot_seconds <= 0.0:
            return 0.0
        return self.shots / self.per_shot_seconds


def measure_fastpath_speedup(
    program: ModuleLike,
    shots: int = 200,
    repeats: int = 5,
    warmup: int = 1,
    seed: Optional[int] = None,
    runtime: Optional[QirRuntime] = None,
    workload: Optional[str] = None,
) -> FastpathComparison:
    """Median-of-k fastpath-vs-per-shot timing (ROADMAP "fastpath win tracking").

    Runs the same program through ``sampling="require"`` and
    ``sampling="never"`` ``repeats`` times each (after ``warmup`` untimed
    rounds) and reports the median wall times.  Raises
    :class:`FastPathUnsupported` when the program cannot take the fast
    path at all.  When the runtime carries an enabled observer, the ratio
    also lands as a ``runtime.fastpath_speedup`` gauge (labeled by
    ``workload`` when given) so profile output and metrics snapshots see
    the same number the bench records.
    """
    from repro.obs.snapshot import measure

    rt = runtime if runtime is not None else QirRuntime(seed=seed)
    module = _as_module(program)
    fast = measure(
        lambda: rt.run_shots(module, shots=shots, sampling="require"),
        repeats=repeats,
        warmup=warmup,
    )
    slow = measure(
        lambda: rt.run_shots(module, shots=shots, sampling="never"),
        repeats=repeats,
        warmup=warmup,
    )
    comparison = FastpathComparison(
        shots=shots,
        repeats=repeats,
        fastpath_seconds=fast.median,
        per_shot_seconds=slow.median,
    )
    if rt.observer.enabled and comparison.speedup is not None:
        labels = {"workload": workload} if workload else {}
        rt.observer.set_gauge("runtime.fastpath_speedup", comparison.speedup, **labels)
    return comparison


def execute(
    program: ModuleLike,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    **kwargs,
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`QirRuntime`."""
    return QirRuntime(backend=backend, seed=seed, **kwargs).execute(program, entry)


def run_shots(
    program: ModuleLike,
    shots: int = 1024,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    keep_stats: bool = False,
    sampling: str = "auto",
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    fallback: Optional[FallbackChain] = None,
    collect_failures: bool = False,
    **kwargs,
) -> ShotsResult:
    return QirRuntime(backend=backend, seed=seed, **kwargs).run_shots(
        program,
        shots,
        entry,
        keep_stats=keep_stats,
        sampling=sampling,
        retry=retry,
        fault_plan=fault_plan,
        fallback=fallback,
        collect_failures=collect_failures,
    )
