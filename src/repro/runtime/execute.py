"""High-level execution API: run QIR programs for one or many shots.

Measurement collapses simulator state, so -- exactly like the QIR
Alliance's ``qir-runner`` -- multi-shot execution re-interprets the program
per shot with fresh simulator state and aggregates the recorded outputs
into a histogram.

Architecturally this module is now a thin front over the two-phase stack:

* the **compile phase** (:mod:`repro.runtime.plan`) turns source into a
  frozen :class:`~repro.runtime.plan.ExecutionPlan` (``run_shots`` accepts
  one anywhere it accepts source, skipping the frontend entirely);
* the **execute phase** (:mod:`repro.runtime.schedulers`) runs the shots
  through a pluggable :class:`ShotScheduler` -- ``serial`` (default),
  ``threaded`` (``jobs=N`` workers), ``batched`` (one vectorised
  statevector evolution), or ``process`` (``jobs=N`` worker processes
  fed serialized plans) -- all of which reproduce identical ``counts``
  for the same ``seed=`` thanks to spawned per-shot seeding.

For cross-call caching of parsed modules and compiled plans, use
:class:`repro.runtime.session.QirSession`.

Resilient execution (see :mod:`repro.resilience`): ``run_shots`` accepts a
:class:`~repro.resilience.retry.RetryPolicy` (per-shot retry with backoff),
a :class:`~repro.resilience.faults.FaultPlan` (seeded fault injection for
exercising failure paths), and a
:class:`~repro.resilience.fallback.FallbackChain` (backend demotion).  In
resilient mode a failing shot never destroys the run: the result carries
the aggregated successes plus structured per-shot failure records.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Union

import numpy as np

from repro.llvmir.module import Module
from repro.llvmir.parser import parse_assembly
from repro.obs.observer import as_observer
from repro.obs.runctx import RunContext
from repro.resilience.fallback import BackendLevel, FallbackChain, program_is_clifford
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.runtime.interpreter import Interpreter
from repro.runtime.plan import ExecutionPlan, _analyze_entry, compile_plan
from repro.runtime.sampling_fastpath import (
    DeferredMeasurementBackend,
    DeferredResultStore,
    FastPathUnsupported,
    distribution_from,
    sample_counts_from,
)
from repro.runtime.schedulers import (
    ChainGuard,
    ExecutionResult,
    ShotExecutor,
    ShotTask,
    ShotsResult,
    build_shots_result,
    fastpath_sequence,
    fold_intrinsic_stats,
    get_scheduler,
    sorted_counts as _sorted_counts,
)
from repro.sim.noise import NoiseModel
from repro.sim.statevector import StatevectorSimulator

ModuleLike = Union[Module, str, ExecutionPlan]

__all__ = [
    "ExecutionResult",
    "ShotsResult",
    "QirRuntime",
    "FastpathComparison",
    "SchedulerComparison",
    "FusionComparison",
    "DistributionComparison",
    "execute",
    "run_shots",
    "measure_fastpath_speedup",
    "measure_scheduler_speedup",
    "measure_fusion_speedup",
    "measure_distribution_speedup",
]


def _as_module(program: ModuleLike) -> Module:
    if isinstance(program, ExecutionPlan):
        return program.module
    if isinstance(program, str):
        return parse_assembly(program)
    return program


class QirRuntime:
    """A configured runtime: backend choice, seeding, step limits.

    >>> rt = QirRuntime(backend="statevector", seed=7)
    >>> result = rt.execute(qir_text)
    >>> counts = rt.run_shots(qir_text, shots=1000).counts

    ``scheduler``/``jobs`` pick the default execute-phase strategy for
    ``run_shots`` (overridable per call): ``serial``, ``threaded``
    (``jobs`` workers), or ``batched`` (vectorised multi-shot evolution).
    """

    def __init__(
        self,
        backend: str = "statevector",
        seed: Optional[int] = None,
        step_limit: int = 10_000_000,
        max_qubits: int = 26,
        allow_on_the_fly_qubits: bool = True,
        noise: Optional[NoiseModel] = None,
        observer=None,
        scheduler: str = "serial",
        jobs: int = 1,
        fusion: bool = True,
        dist_cache: bool = True,
    ):
        self.backend_name = backend
        self.seed = seed
        self.step_limit = step_limit
        self.max_qubits = max_qubits
        self.allow_on_the_fly_qubits = allow_on_the_fly_qubits
        self.noise = noise
        #: Plan specialization toggles (qir-run --no-fusion /
        #: --no-dist-cache): ``fusion`` gates the fused kernel schedule in
        #: the per-shot and batched paths; ``dist_cache`` gates both
        #: serving from and capturing a plan's memoized distribution.
        self.fusion = fusion
        self.dist_cache = dist_cache
        # Observability (repro.obs): the default is the shared no-op whose
        # hot-path cost is a single attribute check (bench_obs.py guards it).
        self.observer = as_observer(observer)
        self.default_scheduler = scheduler
        self.default_jobs = jobs
        get_scheduler(scheduler, jobs)  # validate the combination eagerly
        self._rng = np.random.default_rng(seed)

    def _make_executor(self) -> ShotExecutor:
        # Built per call so runtime attribute mutation (tests swap noise
        # models and observers in place) keeps taking effect.
        return ShotExecutor(
            self.backend_name,
            self.noise,
            self.step_limit,
            self.max_qubits,
            self.allow_on_the_fly_qubits,
            self.observer,
        )

    # -- single-shot ---------------------------------------------------------
    def execute(
        self, program: ModuleLike, entry: Optional[str] = None
    ) -> ExecutionResult:
        """Run a single shot and return its full execution record."""
        if isinstance(program, ExecutionPlan) and entry is None:
            entry = program.entry
        module = _as_module(program)
        level = BackendLevel(self.backend_name, noisy=True)
        result = self._make_executor().run_single(
            module, entry, level, None, int(self._rng.integers(2**63))
        )
        if self.observer.enabled:
            fold_intrinsic_stats(self.observer, result.stats)
        return result

    # -- multi-shot ----------------------------------------------------------
    def run_shots(
        self,
        program: ModuleLike,
        shots: int = 1024,
        entry: Optional[str] = None,
        keep_stats: bool = False,
        sampling: str = "auto",
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        fallback: Optional[FallbackChain] = None,
        collect_failures: bool = False,
        scheduler: Optional[str] = None,
        jobs: Optional[int] = None,
        worker_timeout: Optional[float] = None,
        max_worker_failures: Optional[int] = None,
        chunk_shots: Optional[int] = None,
        min_chunk_shots: Optional[int] = None,
        run_context: Optional[RunContext] = None,
    ) -> ShotsResult:
        """Run many shots (parsing once) and histogram the result bitstrings.

        ``sampling``:

        * ``"auto"`` (default) -- attempt the deferred-measurement fast path
          (one statevector evolution, then joint sampling) and fall back to
          per-shot interpretation when the program is not sampleable (mid-
          circuit feedback, re-measurement, noise, non-statevector backend);
        * ``"never"`` -- always interpret per shot (the qir-runner model);
        * ``"require"`` -- fast path or raise :class:`FastPathUnsupported`.

        ``scheduler`` / ``jobs`` override the runtime's default execute
        strategy for this call.  The ``batched`` scheduler never takes the
        sampling fast path (it exists for the programs the fast path
        rejects), so ``sampling="require"`` with it raises.  The
        ``process`` scheduler ships the compiled plan to worker processes
        as :meth:`ExecutionPlan.to_bytes` payloads; raw text/``Module``
        programs are compiled (without re-verification) to make one.

        Passing any of ``retry`` / ``fault_plan`` / ``fallback`` (or
        ``collect_failures=True``) selects the *resilient* per-shot loop:
        failures are retried per ``retry``, the backend may be demoted per
        ``fallback``, and shots that still fail are returned as structured
        records on the result instead of raising.  Resilience is per-shot,
        so the batched scheduler degrades to the per-shot loop for it.

        ``worker_timeout`` / ``max_worker_failures`` configure the process
        scheduler's worker supervisor (heartbeat deadline in seconds, and
        failed rounds before the circuit breaker demotes the run to the
        threaded scheduler); both are rejected for other schedulers.  The
        resulting :class:`~repro.runtime.schedulers.SupervisionRecord`
        rides on ``result.supervision``.

        ``chunk_shots`` / ``min_chunk_shots`` tune the shared work
        queue's chunk sizing for the threaded and process schedulers
        (fixed-size chunks, or the floor under guided sizing; see
        :func:`repro.runtime.dispatch.guided_chunks`); rejected for the
        serial and batched schedulers.

        ``run_context`` is the run's durable identity (see
        :mod:`repro.obs.runctx`): pass one (``QirSession`` does, with the
        plan key filled in) or let an observed run mint its own.  Its
        ``run_id`` is stamped on every span, published as a ``run.info``
        gauge, shipped to process workers, and returned on
        ``result.run_id`` so callers can join traces, metrics, and ledger
        rows.
        """
        if sampling not in ("auto", "never", "require"):
            raise ValueError(f"unknown sampling mode {sampling!r}")
        scheduler_name = scheduler if scheduler is not None else self.default_scheduler
        jobs_n = jobs if jobs is not None else self.default_jobs
        sched = get_scheduler(
            scheduler_name,
            jobs_n,
            worker_timeout=worker_timeout,
            max_worker_failures=max_worker_failures,
            chunk_shots=chunk_shots,
            min_chunk_shots=min_chunk_shots,
        )
        obs = self.observer
        ctx: Optional[RunContext] = None
        if run_context is not None or obs.enabled:
            base = run_context if run_context is not None else RunContext()
            labels: dict = {
                "scheduler": scheduler_name,
                "backend": self.backend_name,
                "jobs": jobs_n,
                "shots": shots,
            }
            if entry is not None:
                labels["entry"] = entry
            ctx = base.with_labels(**labels)
            obs.set_run_context(ctx)
        run_id = ctx.run_id if ctx is not None else ""
        t0 = perf_counter()
        if obs.enabled:
            with obs.span(
                "run_shots", shots=shots, sampling=sampling, scheduler=scheduler_name
            ) as span:
                result = self._run_shots_impl(
                    program, shots, entry, keep_stats, sampling,
                    retry, fault_plan, fallback, collect_failures, sched, run_id,
                )
                span.tag("fast_path", result.used_fast_path)
        else:
            result = self._run_shots_impl(
                program, shots, entry, keep_stats, sampling,
                retry, fault_plan, fallback, collect_failures, sched, run_id,
            )
        result.wall_seconds = perf_counter() - t0
        result.run_id = run_id
        if obs.enabled:
            obs.inc("runtime.shots.requested", shots)
            if result.used_fast_path:
                path = "runtime.shots.fastpath"
            elif result.scheduler == "batched":
                path = "runtime.shots.batched"
            else:
                path = "runtime.shots.per_shot"
            obs.inc(path, shots)
            obs.inc("runtime.scheduler.runs", scheduler=result.scheduler)
            obs.observe("runtime.run_seconds", result.wall_seconds)
            if result.wall_seconds > 0:
                obs.set_gauge("runtime.shots_per_second", result.shots_per_second)
        return result

    def _run_shots_impl(
        self,
        program: ModuleLike,
        shots: int,
        entry: Optional[str],
        keep_stats: bool,
        sampling: str,
        retry: Optional[RetryPolicy],
        fault_plan: Optional[FaultPlan],
        fallback: Optional[FallbackChain],
        collect_failures: bool,
        sched,
        run_id: str = "",
    ) -> ShotsResult:
        plan = program if isinstance(program, ExecutionPlan) else None
        if plan is not None and entry is None:
            entry = plan.entry
        module = _as_module(program)

        resilient = (
            retry is not None
            or fault_plan is not None
            or fallback is not None
            or collect_failures
        )
        if resilient and sampling == "require":
            raise FastPathUnsupported(
                "sampling fast path is per-run, not per-shot; it cannot "
                "inject, retry, or degrade individual shots"
            )

        if sched.name == "batched":
            if sampling == "require":
                raise FastPathUnsupported(
                    "the batched scheduler never takes the sampling fast path "
                    "(it exists for the per-shot programs the fast path "
                    "rejects); use scheduler='serial' or 'threaded'"
                )
            can_try = False
        else:
            can_try = (
                not resilient
                and sampling != "never"
                and self.backend_name == "statevector"
                and (self.noise is None or self.noise.is_trivial)
                and not keep_stats
            )
        # One root per run, drawn *before* any fast-path attempt so the
        # stream position -- and therefore every spawned per-shot seed --
        # is identical across sampling modes and schedulers.  Serial,
        # threaded, and batched execution of the same program with the
        # same runtime seed produce identical counts.
        root = np.random.SeedSequence(int(self._rng.integers(2**63)))

        obs = self.observer
        if can_try:
            # Warm tier: a plan whose first fast-path run memoized its
            # terminal distribution serves repeat requests by seeded
            # sampling alone.  The reserved fast-path sequence spawned
            # from this run's root is the exact generator the cold path
            # would have sampled with, so warm counts are bit-identical.
            if plan is not None and self.dist_cache:
                distribution = plan.distribution
                if distribution is not None:
                    if obs.enabled:
                        obs.inc("cache.distribution.hit")
                    counts = distribution.sample_counts(
                        shots, fastpath_sequence(root)
                    )
                    return ShotsResult(
                        counts=_sorted_counts(counts),
                        shots=shots,
                        used_fast_path=True,
                        distribution_served=True,
                    )
                if obs.enabled:
                    obs.inc("cache.distribution.miss")
            try:
                capture = plan is not None and self.dist_cache
                counts, distribution = self._run_shots_sampled(
                    module, shots, entry, fastpath_sequence(root), capture
                )
                if distribution is not None and plan is not None:
                    plan.attach_distribution(distribution)
                return ShotsResult(
                    counts=_sorted_counts(counts), shots=shots, used_fast_path=True
                )
            except FastPathUnsupported:
                if sampling == "require":
                    raise
        elif sampling == "require" and not resilient:
            raise FastPathUnsupported(
                "sampling fast path requires the statevector backend, no "
                "noise, and keep_stats=False"
            )

        executor = self._make_executor()
        policy = retry if retry is not None else RetryPolicy(max_attempts=1)
        injector = FaultInjector(fault_plan) if fault_plan is not None else None
        if resilient:
            chain = fallback if fallback is not None else FallbackChain(
                [BackendLevel(self.backend_name, noisy=True)]
            )
            clifford = plan.is_clifford if plan is not None else program_is_clifford(module)
            chain.set_program_is_clifford(clifford)
        else:
            # Single-level chain: demotion is impossible, failures raise.
            chain = FallbackChain([BackendLevel(self.backend_name, noisy=True)])

        required_qubits = plan.required_qubits if plan is not None else None
        if required_qubits is None and sched.name == "batched":
            required_qubits = _analyze_entry(module, entry)[2]

        # Process workers need the program as bytes.  A compiled plan
        # serializes directly; raw programs get a lightweight plan (no
        # re-verify -- the parent already ran its own checks, and workers
        # re-validate integrity via the embedded module hash).
        plan_bytes = None
        if sched.name == "process":
            worker_plan = plan if plan is not None else compile_plan(
                module, backend=self.backend_name, entry=entry, verify=False
            )
            plan_bytes = worker_plan.to_bytes()

        task = ShotTask(
            executor=executor,
            module=module,
            entry=entry,
            shots=shots,
            root=root,
            policy=policy,
            injector=injector,
            chain=ChainGuard(chain),
            keep_stats=keep_stats,
            resilient=resilient,
            timed=self.observer.enabled,
            required_qubits=required_qubits,
            plan_bytes=plan_bytes,
            run_id=run_id,
            schedule=(
                plan.fused if plan is not None and self.fusion else None
            ),
        )
        outcomes = sched.run(task)
        effective = getattr(sched, "effective", sched.name)
        result = build_shots_result(task, outcomes, effective)
        result.supervision = getattr(sched, "supervision", None)
        return result

    def _run_shots_sampled(
        self,
        module: Module,
        shots: int,
        entry: Optional[str],
        seed: np.random.SeedSequence,
        capture: bool = False,
    ) -> tuple:
        """One evolution + joint sampling (see runtime.sampling_fastpath).

        With ``capture=True`` the terminal distribution also comes back
        (for plan memoization) -- but only when the evolution consumed no
        RNG draws.  A mid-evolution draw (a reset or release of a
        superposed qubit) shifts the generator's position, so a warm
        replay sampling straight from the stored table would read a
        different stream than this cold run did; such programs simply
        stay uncached.
        """
        inner = StatevectorSimulator(0, seed=seed, max_qubits=self.max_qubits)
        backend = DeferredMeasurementBackend(inner)
        results = DeferredResultStore()
        interp = Interpreter(
            module,
            backend,  # type: ignore[arg-type]
            step_limit=self.step_limit,
            allow_on_the_fly_qubits=self.allow_on_the_fly_qubits,
            observer=self.observer,
            results=results,
        )
        state_before = inner._rng.bit_generator.state if capture else None
        interp.run(entry)
        if self.observer.enabled:
            fold_intrinsic_stats(self.observer, interp.stats)
        distribution = None
        if capture and inner._rng.bit_generator.state == state_before:
            # Extracted before sampling: probabilities() reads amplitudes
            # without touching the generator.
            distribution = distribution_from(backend, results)
        return sample_counts_from(backend, results, shots), distribution


@dataclass(frozen=True)
class FastpathComparison:
    """Measured sampled-fastpath vs per-shot cost for one workload.

    ``speedup`` is the win factor of the deferred-measurement fast path
    over per-shot re-interpretation (>1 means the fast path is faster);
    ``None`` when the fast-path timing was below clock resolution, so the
    ratio would be meaningless (the ``shots_per_second`` convention).
    """

    shots: int
    repeats: int
    fastpath_seconds: float
    per_shot_seconds: float

    @property
    def speedup(self) -> Optional[float]:
        if self.fastpath_seconds <= 0.0:
            return None
        return self.per_shot_seconds / self.fastpath_seconds

    @property
    def fastpath_shots_per_second(self) -> float:
        if self.fastpath_seconds <= 0.0:
            return 0.0
        return self.shots / self.fastpath_seconds

    @property
    def per_shot_shots_per_second(self) -> float:
        if self.per_shot_seconds <= 0.0:
            return 0.0
        return self.shots / self.per_shot_seconds


def measure_fastpath_speedup(
    program: ModuleLike,
    shots: int = 200,
    repeats: int = 5,
    warmup: int = 1,
    seed: Optional[int] = None,
    runtime: Optional[QirRuntime] = None,
    workload: Optional[str] = None,
) -> FastpathComparison:
    """Median-of-k fastpath-vs-per-shot timing (ROADMAP "fastpath win tracking").

    Runs the same program through ``sampling="require"`` and
    ``sampling="never"`` ``repeats`` times each (after ``warmup`` untimed
    rounds) and reports the median wall times.  The program is compiled
    once through a :class:`~repro.runtime.session.QirSession`, so
    repetitions measure pure execution cost -- the parse counters stay
    flat across the timed rounds.  Raises :class:`FastPathUnsupported`
    when the program cannot take the fast path at all.  When the runtime
    carries an enabled observer, the ratio also lands as a
    ``runtime.fastpath_speedup`` gauge (labeled by ``workload`` when
    given) so profile output and metrics snapshots see the same number
    the bench records.
    """
    from repro.obs.snapshot import measure
    from repro.runtime.session import QirSession

    rt = runtime if runtime is not None else QirRuntime(seed=seed)
    session = QirSession(runtime=rt)
    plan = session.compile(program)
    fast = measure(
        lambda: rt.run_shots(plan, shots=shots, sampling="require"),
        repeats=repeats,
        warmup=warmup,
    )
    slow = measure(
        lambda: rt.run_shots(plan, shots=shots, sampling="never"),
        repeats=repeats,
        warmup=warmup,
    )
    comparison = FastpathComparison(
        shots=shots,
        repeats=repeats,
        fastpath_seconds=fast.median,
        per_shot_seconds=slow.median,
    )
    if rt.observer.enabled and comparison.speedup is not None:
        labels = {"workload": workload} if workload else {}
        rt.observer.set_gauge("runtime.fastpath_speedup", comparison.speedup, **labels)
    return comparison


@dataclass(frozen=True)
class SchedulerComparison:
    """Measured scheduler-vs-serial cost for one per-shot workload.

    ``speedup`` is the win factor of the scheduler over the serial loop
    (>1 means the scheduler is faster); ``None`` when the scheduled
    timing was below clock resolution (the ``shots_per_second``
    convention).  On single-core machines expect ~1 or below for
    ``process`` -- the CI perf gate runs on multi-core runners.
    """

    scheduler: str
    jobs: int
    shots: int
    repeats: int
    serial_seconds: float
    scheduled_seconds: float

    @property
    def speedup(self) -> Optional[float]:
        if self.scheduled_seconds <= 0.0:
            return None
        return self.serial_seconds / self.scheduled_seconds


def measure_scheduler_speedup(
    program: ModuleLike,
    scheduler: str = "process",
    jobs: int = 2,
    shots: int = 128,
    repeats: int = 3,
    warmup: int = 1,
    seed: Optional[int] = None,
    runtime: Optional[QirRuntime] = None,
    workload: Optional[str] = None,
) -> SchedulerComparison:
    """Median-of-k scheduler-vs-serial timing (ROADMAP "process execution").

    Both arms run ``sampling="never"`` (the schedulers exist for the
    per-shot loop; the fast path would short-circuit them both) on one
    shared compiled plan, so the ratio isolates pure execute-phase cost.
    When the runtime carries an enabled observer the ratio lands as a
    ``runtime.scheduler.<name>_speedup`` gauge (labeled by ``workload``
    when given), the same number ``qir-bench`` records.
    """
    from repro.obs.snapshot import measure
    from repro.runtime.session import QirSession

    rt = runtime if runtime is not None else QirRuntime(seed=seed)
    session = QirSession(runtime=rt)
    plan = session.compile(program)
    serial = measure(
        lambda: rt.run_shots(
            plan, shots=shots, sampling="never", scheduler="serial", jobs=1
        ),
        repeats=repeats,
        warmup=warmup,
    )
    scheduled = measure(
        lambda: rt.run_shots(
            plan, shots=shots, sampling="never", scheduler=scheduler, jobs=jobs
        ),
        repeats=repeats,
        warmup=warmup,
    )
    comparison = SchedulerComparison(
        scheduler=scheduler,
        jobs=jobs,
        shots=shots,
        repeats=repeats,
        serial_seconds=serial.median,
        scheduled_seconds=scheduled.median,
    )
    if rt.observer.enabled and comparison.speedup is not None:
        labels = {"workload": workload} if workload else {}
        rt.observer.set_gauge(
            f"runtime.scheduler.{scheduler}_speedup", comparison.speedup, **labels
        )
    return comparison


@dataclass(frozen=True)
class FusionComparison:
    """Measured fused-vs-unfused per-shot cost for one workload.

    ``speedup`` is the win factor of the fused kernel schedule over
    per-gate interpretation (>1 means fusion is faster); ``None`` when
    the fused timing was below clock resolution (the
    ``shots_per_second`` convention -- never ``inf``/``nan``).
    """

    shots: int
    repeats: int
    fused_seconds: float
    unfused_seconds: float
    kernels: int
    source_gates: int

    @property
    def speedup(self) -> Optional[float]:
        if self.fused_seconds <= 0.0:
            return None
        return self.unfused_seconds / self.fused_seconds

    @property
    def fused_shots_per_second(self) -> float:
        if self.fused_seconds <= 0.0:
            return 0.0
        return self.shots / self.fused_seconds

    @property
    def unfused_shots_per_second(self) -> float:
        if self.unfused_seconds <= 0.0:
            return 0.0
        return self.shots / self.unfused_seconds


def measure_fusion_speedup(
    program: ModuleLike,
    shots: int = 64,
    repeats: int = 3,
    warmup: int = 1,
    seed: Optional[int] = None,
    runtime: Optional[QirRuntime] = None,
    workload: Optional[str] = None,
) -> FusionComparison:
    """Median-of-k fused-vs-unfused timing (ROADMAP "faster kernels").

    Both arms run ``sampling="never"`` (fusion lives in the per-shot and
    batched paths; the sampling fast path would mask it) on one shared
    compiled plan, toggling only the runtime's ``fusion`` flag.  Raises
    ``ValueError`` when the plan has no fused schedule -- a benchmark
    comparing identical code paths would report noise as signal.  With an
    enabled observer the ratio lands as a ``runtime.fusion.speedup``
    gauge, the number ``qir-bench`` records.
    """
    from repro.obs.snapshot import measure

    rt = runtime if runtime is not None else QirRuntime(seed=seed)
    plan = (
        program
        if isinstance(program, ExecutionPlan)
        else compile_plan(program, backend=rt.backend_name, verify=False)
    )
    if plan.fused is None:
        raise ValueError(
            "program is not specializable (dynamic control flow or qubit "
            "addressing); there is no fused schedule to measure"
        )
    saved = rt.fusion
    try:
        rt.fusion = True
        fused = measure(
            lambda: rt.run_shots(plan, shots=shots, sampling="never"),
            repeats=repeats,
            warmup=warmup,
        )
        rt.fusion = False
        unfused = measure(
            lambda: rt.run_shots(plan, shots=shots, sampling="never"),
            repeats=repeats,
            warmup=warmup,
        )
    finally:
        rt.fusion = saved
    comparison = FusionComparison(
        shots=shots,
        repeats=repeats,
        fused_seconds=fused.median,
        unfused_seconds=unfused.median,
        kernels=plan.fused.kernels,
        source_gates=plan.fused.source_gates,
    )
    if rt.observer.enabled and comparison.speedup is not None:
        labels = {"workload": workload} if workload else {}
        rt.observer.set_gauge(
            "runtime.fusion.speedup", comparison.speedup, **labels
        )
    return comparison


@dataclass(frozen=True)
class DistributionComparison:
    """Measured warm (distribution-served) vs cold fast-path cost.

    ``speedup`` is the win factor of serving shots from a plan's
    memoized distribution over re-running the fast-path evolution (>1
    means warm serving is faster); ``None`` when the warm timing was
    below clock resolution -- the same 0.0-not-``inf`` convention the
    per-shot side of :class:`FastpathComparison` uses, applied to the
    distribution-served side.
    """

    shots: int
    repeats: int
    warm_seconds: float
    cold_seconds: float

    @property
    def speedup(self) -> Optional[float]:
        if self.warm_seconds <= 0.0:
            return None
        return self.cold_seconds / self.warm_seconds

    @property
    def warm_shots_per_second(self) -> float:
        if self.warm_seconds <= 0.0:
            return 0.0
        return self.shots / self.warm_seconds

    @property
    def cold_shots_per_second(self) -> float:
        if self.cold_seconds <= 0.0:
            return 0.0
        return self.shots / self.cold_seconds


def measure_distribution_speedup(
    program: ModuleLike,
    shots: int = 512,
    repeats: int = 5,
    warmup: int = 1,
    seed: Optional[int] = None,
    runtime: Optional[QirRuntime] = None,
    workload: Optional[str] = None,
) -> DistributionComparison:
    """Median-of-k warm-serve vs cold-fastpath timing.

    The plan is warmed with one ``sampling="require"`` run (memoizing its
    distribution), then the warm arm serves shots from the cached table
    while the cold arm re-runs the full evolution with ``dist_cache``
    off.  Raises ``ValueError`` when the program never becomes warm (its
    evolution consumes RNG draws, or the support is too large to cache).
    With an enabled observer the ratio lands as a
    ``runtime.plan.dist_warm_speedup`` gauge, the number ``qir-bench``
    records.
    """
    from repro.obs.snapshot import measure

    rt = runtime if runtime is not None else QirRuntime(seed=seed)
    plan = (
        program
        if isinstance(program, ExecutionPlan)
        else compile_plan(program, backend=rt.backend_name, verify=False)
    )
    saved = rt.dist_cache
    try:
        rt.dist_cache = True
        rt.run_shots(plan, shots=shots, sampling="require")
        if plan.distribution is None:
            raise ValueError(
                "plan did not memoize a distribution (the evolution draws "
                "from the RNG, or the outcome support is too large)"
            )
        warm = measure(
            lambda: rt.run_shots(plan, shots=shots, sampling="require"),
            repeats=repeats,
            warmup=warmup,
        )
        rt.dist_cache = False
        cold = measure(
            lambda: rt.run_shots(plan, shots=shots, sampling="require"),
            repeats=repeats,
            warmup=warmup,
        )
    finally:
        rt.dist_cache = saved
    comparison = DistributionComparison(
        shots=shots,
        repeats=repeats,
        warm_seconds=warm.median,
        cold_seconds=cold.median,
    )
    if rt.observer.enabled and comparison.speedup is not None:
        labels = {"workload": workload} if workload else {}
        rt.observer.set_gauge(
            "runtime.plan.dist_warm_speedup", comparison.speedup, **labels
        )
    return comparison


def execute(
    program: ModuleLike,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    **kwargs,
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`QirRuntime`."""
    return QirRuntime(backend=backend, seed=seed, **kwargs).execute(program, entry)


def run_shots(
    program: ModuleLike,
    shots: int = 1024,
    backend: str = "statevector",
    seed: Optional[int] = None,
    entry: Optional[str] = None,
    keep_stats: bool = False,
    sampling: str = "auto",
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    fallback: Optional[FallbackChain] = None,
    collect_failures: bool = False,
    scheduler: Optional[str] = None,
    jobs: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    max_worker_failures: Optional[int] = None,
    chunk_shots: Optional[int] = None,
    min_chunk_shots: Optional[int] = None,
    run_context: Optional[RunContext] = None,
    **kwargs,
) -> ShotsResult:
    return QirRuntime(backend=backend, seed=seed, **kwargs).run_shots(
        program,
        shots,
        entry,
        keep_stats=keep_stats,
        sampling=sampling,
        retry=retry,
        fault_plan=fault_plan,
        fallback=fallback,
        collect_failures=collect_failures,
        scheduler=scheduler,
        jobs=jobs,
        worker_timeout=worker_timeout,
        max_worker_failures=max_worker_failures,
        chunk_shots=chunk_shots,
        min_chunk_shots=min_chunk_shots,
        run_context=run_context,
    )
