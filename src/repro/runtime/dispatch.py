"""Shared work-queue dispatch core for the threaded and process schedulers.

The one-contiguous-range-per-worker model had a built-in straggler
problem: a worker that runs slow (noisy neighbour, costly shots, a
restarted pool) caps the whole run, and `qir-trace workers` showed it as
an imbalance ratio drifting above 1.  This module replaces that model
with *self-scheduling*: :func:`guided_chunks` splits the shot range into
many small chunks (large first, shrinking toward a floor -- classic
guided scheduling), a :class:`ChunkQueue` hands them out, and idle
workers keep pulling until the queue drains.  A fast worker simply runs
more chunks; a slow one runs fewer; nobody waits on a pre-assigned
range.

Determinism is untouched by any of this: per-shot seeds are pure
functions of ``(root, shot, attempt)`` (see
:func:`repro.runtime.schedulers.shot_sequence`), and the merge re-sorts
outcomes by shot index -- so *which* worker runs a chunk, and in what
order, cannot change ``counts``.

Supervision rides on queue state: a chunk lost to a worker crash, hang,
or IPC corruption is simply :meth:`~ChunkQueue.requeue`-d with its
dispatch ``attempt`` bumped.  Process-level fault rules gate on that
per-chunk attempt (see :meth:`FaultPlan.process_decision`), so a
transient fault spends itself per chunk, not per global round.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, List, Optional, Tuple

#: Guided scheduling divides the *remaining* shots by this multiple of
#: the worker count on every split: the first chunks are big (low queue
#: overhead while everyone is busy anyway) and the tail chunks are small
#: (fine-grained rebalancing exactly when stragglers matter).
GUIDED_FACTOR = 2


def partition_shots(shots: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(shots)`` into at most ``workers`` contiguous chunks.

    The historical one-chunk-per-worker split, kept for callers that
    want it (and as the explicit "contiguous baseline" arm of the
    imbalance bench: ``chunk_shots=ceil(shots/jobs)`` reproduces it).
    Early chunks get the remainder, so sizes differ by at most one and
    every shot index appears exactly once -- the determinism story does
    not depend on the split (seeds are pure functions of shot index),
    only completeness does.
    """
    if shots < 1:
        return []
    workers = max(1, min(workers, shots))
    base, extra = divmod(shots, workers)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        chunks.append((start, start + size))
        start += size
    return chunks


def guided_chunks(
    shots: int,
    workers: int,
    chunk_shots: Optional[int] = None,
    min_chunk_shots: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Split ``range(shots)`` into self-scheduled chunk ranges.

    With ``chunk_shots`` set, every chunk is exactly that size (except a
    short final remainder) -- predictable, and the knob that reproduces
    the contiguous baseline (``chunk_shots=ceil(shots/workers)``).
    Otherwise *guided* sizing applies: each chunk takes
    ``ceil(remaining / (GUIDED_FACTOR * workers))`` shots, clamped below
    by ``min_chunk_shots`` (default 1), so sizes shrink geometrically
    toward the floor.  Chunks are contiguous, in shot order, and cover
    every index exactly once.
    """
    if shots < 1:
        return []
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_shots is not None and chunk_shots < 1:
        raise ValueError("chunk_shots must be >= 1")
    if min_chunk_shots is not None and min_chunk_shots < 1:
        raise ValueError("min_chunk_shots must be >= 1")
    floor = min_chunk_shots if min_chunk_shots is not None else 1
    ranges: List[Tuple[int, int]] = []
    start = 0
    while start < shots:
        remaining = shots - start
        if chunk_shots is not None:
            size = chunk_shots
        else:
            size = max(floor, -(-remaining // (GUIDED_FACTOR * workers)))
        size = min(size, remaining)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass(frozen=True)
class Chunk:
    """One self-scheduled unit of work: a contiguous shot range.

    ``attempt`` counts dispatches of *this* chunk (0 on first dispatch,
    +1 per :meth:`ChunkQueue.requeue` after a loss); it gates transient
    process-level fault rules and lands on the merged span's ``round``
    tag, so re-dispatches stay visible in traces.
    """

    id: int
    start: int
    stop: int
    attempt: int = 0

    @property
    def shots(self) -> int:
        return self.stop - self.start

    @property
    def label(self) -> str:
        return f"{self.start}..{max(self.start, self.stop - 1)}"


@dataclass
class QueueStats:
    """What the queue did, for the ``scheduler.queue.*`` counters."""

    #: Distinct chunks the shot range was split into.
    chunks: int = 0
    #: Chunk dispatches (pops), including re-dispatches of requeued chunks.
    dispatched: int = 0
    #: Lost chunks returned to the queue (one per requeue).
    refills: int = 0


class ChunkQueue:
    """A thread-safe queue of shot chunks that idle workers pull dry.

    The shared dispatch core of :class:`ThreadedScheduler` (worker
    threads pop directly) and :class:`ProcessScheduler` (the supervisor
    drains the queue into pool waves via :meth:`take_all`, and returns
    lost chunks with :meth:`requeue`).  Completeness invariant: every
    shot of the original range is in exactly one live chunk until that
    chunk's outcomes are merged -- requeueing replaces a lost chunk with
    the *same* range at the next attempt, so nothing is lost or
    duplicated no matter how many times workers die.
    """

    def __init__(self, chunks: List[Chunk]):
        self._lock = threading.Lock()
        self._pending: Deque[Chunk] = deque(chunks)
        self.stats = QueueStats(chunks=len(chunks))

    @classmethod
    def for_shots(
        cls,
        shots: int,
        workers: int,
        chunk_shots: Optional[int] = None,
        min_chunk_shots: Optional[int] = None,
    ) -> "ChunkQueue":
        ranges = guided_chunks(shots, workers, chunk_shots, min_chunk_shots)
        return cls(
            [Chunk(id=i, start=a, stop=b) for i, (a, b) in enumerate(ranges)]
        )

    def pop(self) -> Optional[Chunk]:
        """Next chunk to run, or ``None`` when the queue is drained."""
        with self._lock:
            if not self._pending:
                return None
            self.stats.dispatched += 1
            return self._pending.popleft()

    def take_all(self) -> List[Chunk]:
        """Drain every pending chunk at once (one dispatch wave)."""
        with self._lock:
            chunks = list(self._pending)
            self._pending.clear()
            self.stats.dispatched += len(chunks)
            return chunks

    def requeue(self, chunk: Chunk) -> Chunk:
        """Return a lost chunk to the queue at the next dispatch attempt.

        The range is identical -- per-shot seeds are pure functions of
        shot index, so the re-run reproduces bit-identical outcomes --
        only ``attempt`` moves, which is what lets transient fault rules
        expire per chunk.
        """
        bumped = replace(chunk, attempt=chunk.attempt + 1)
        with self._lock:
            self._pending.append(bumped)
            self.stats.refills += 1
        return bumped

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def pending_shots(self) -> int:
        with self._lock:
            return sum(c.shots for c in self._pending)

    def __len__(self) -> int:
        return self.pending
