"""Intrinsic bindings: the runtime definitions of ``__quantum__*`` symbols.

This module is the reproduction of the paper's Example 5: "Every function,
such as ``@__quantum__qis__h__body``, is implemented so that it modifies
the internal state of the simulator to reflect the application of the
respective gate."  Here each binding is a Python callable receiving the
runtime context and the evaluated call arguments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from repro.qir.catalog import RT_PREFIX, parse_qis_name
from repro.runtime.errors import QirRuntimeError, TrapError
from repro.runtime.results import RESULT_ONE, RESULT_ZERO
from repro.runtime.values import ArrayHandle, GlobalPtr, IntPtr, QubitPtr, StackPtr

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.interpreter import Interpreter

Intrinsic = Callable[["Interpreter", List[object]], object]


def _label_text(pointer: object) -> str:
    if isinstance(pointer, GlobalPtr):
        return pointer.as_text()
    if isinstance(pointer, IntPtr) and pointer.address == 0:
        return ""
    return repr(pointer)


# -- QIS dispatch ---------------------------------------------------------------
def dispatch_qis(interp: "Interpreter", name: str, args: List[object]) -> object:
    entry = parse_qis_name(name)
    if entry is None:
        raise QirRuntimeError(f"no runtime binding for QIS function @{name}")
    interp.stats.quantum_calls += 1

    if entry.gate == "mz":
        qubit, result = args
        outcome = interp.backend.measure(interp.qubits.slot_for(qubit))
        interp.results.write(result, outcome)
        interp.stats.measurements += 1
        return None
    if entry.gate == "m":
        (qubit,) = args
        outcome = interp.backend.measure(interp.qubits.slot_for(qubit))
        interp.stats.measurements += 1
        return interp.results.new_dynamic(outcome)
    if entry.gate == "reset":
        (qubit,) = args
        interp.backend.reset(interp.qubits.slot_for(qubit))
        return None
    if entry.gate == "read_result":
        (result,) = args
        return interp.results.read(result)

    params = [float(a) for a in args[: entry.num_params]]  # type: ignore[arg-type]
    qubit_args = args[entry.num_params :]
    slots = [interp.qubits.slot_for(q) for q in qubit_args]
    interp.backend.apply_gate(entry.gate, slots, params)
    interp.stats.gates += 1
    return None


# -- RT intrinsics ---------------------------------------------------------------
def _rt_initialize(interp: "Interpreter", args: List[object]) -> None:
    return None


def _rt_qubit_allocate(interp: "Interpreter", args: List[object]) -> QubitPtr:
    return interp.qubits.allocate()


def _rt_qubit_release(interp: "Interpreter", args: List[object]) -> None:
    (qubit,) = args
    if not isinstance(qubit, QubitPtr):
        raise QirRuntimeError(f"qubit_release of non-dynamic pointer {qubit!r}")
    interp.qubits.release(qubit)
    return None


def _rt_qubit_allocate_array(interp: "Interpreter", args: List[object]) -> ArrayHandle:
    (count,) = args
    array = ArrayHandle(int(count), is_qubit_array=True)  # type: ignore[arg-type]
    for i in range(int(count)):  # type: ignore[arg-type]
        array.cells[i] = interp.qubits.allocate()
    return array


def _rt_qubit_release_array(interp: "Interpreter", args: List[object]) -> None:
    (array,) = args
    if not isinstance(array, ArrayHandle) or not array.is_qubit_array:
        raise QirRuntimeError(f"qubit_release_array of {array!r}")
    for cell in array.cells:
        if isinstance(cell, QubitPtr):
            interp.qubits.release(cell)
    array.cells = []
    return None


def _rt_array_create_1d(interp: "Interpreter", args: List[object]) -> ArrayHandle:
    element_size, count = args
    return ArrayHandle(int(count), int(element_size))  # type: ignore[arg-type]


def _rt_array_get_element_ptr_1d(interp: "Interpreter", args: List[object]) -> object:
    array, index = args
    if not isinstance(array, ArrayHandle):
        raise QirRuntimeError(f"array_get_element_ptr_1d of {array!r}")
    i = int(index)  # type: ignore[arg-type]
    if not 0 <= i < len(array.cells):
        raise QirRuntimeError(
            f"array index {i} out of bounds for {len(array.cells)}-element array"
        )
    # Qubit arrays yield the qubit handle itself (see catalog docstring);
    # plain arrays yield a pointer to the cell.
    if array.is_qubit_array:
        return array.cells[i]
    from repro.runtime.values import Memory

    # Cells of plain arrays are addressable: represent as StackPtr into a
    # shared Memory view over the array cells.
    memory = getattr(array, "_memory", None)
    if memory is None:
        memory = Memory(len(array.cells))
        memory.cells = array.cells  # share storage
        array._memory = memory  # type: ignore[attr-defined]
    return StackPtr(memory, i)


def _rt_array_get_size_1d(interp: "Interpreter", args: List[object]) -> int:
    (array,) = args
    if not isinstance(array, ArrayHandle):
        raise QirRuntimeError(f"array_get_size_1d of {array!r}")
    return len(array.cells)


def _rt_refcount_noop(interp: "Interpreter", args: List[object]) -> None:
    array = args[0]
    delta = int(args[1])  # type: ignore[arg-type]
    if isinstance(array, ArrayHandle):
        array.ref_count += delta
    return None


def _rt_result_get_zero(interp: "Interpreter", args: List[object]):
    return RESULT_ZERO


def _rt_result_get_one(interp: "Interpreter", args: List[object]):
    return RESULT_ONE


def _rt_result_equal(interp: "Interpreter", args: List[object]) -> int:
    a, b = args
    return int(interp.results.read(a) == interp.results.read(b))


def _rt_result_record_output(interp: "Interpreter", args: List[object]) -> None:
    result, label = args
    value = interp.results.read_default(result, 0)
    interp.output.record("RESULT", value, _label_text(label) or None)
    return None


def _rt_array_record_output(interp: "Interpreter", args: List[object]) -> None:
    count, label = args
    interp.output.record("ARRAY", int(count), _label_text(label) or None)  # type: ignore[arg-type]
    return None


def _rt_tuple_record_output(interp: "Interpreter", args: List[object]) -> None:
    count, label = args
    interp.output.record("TUPLE", int(count), _label_text(label) or None)  # type: ignore[arg-type]
    return None


def _rt_bool_record_output(interp: "Interpreter", args: List[object]) -> None:
    value, label = args
    interp.output.record("BOOL", int(bool(value)), _label_text(label) or None)
    return None


def _rt_int_record_output(interp: "Interpreter", args: List[object]) -> None:
    value, label = args
    interp.output.record("INT", int(value), _label_text(label) or None)  # type: ignore[arg-type]
    return None


def _rt_double_record_output(interp: "Interpreter", args: List[object]) -> None:
    value, label = args
    interp.output.record("DOUBLE", float(value), _label_text(label) or None)  # type: ignore[arg-type]
    return None


def _rt_message(interp: "Interpreter", args: List[object]) -> None:
    (pointer,) = args
    interp.messages.append(_label_text(pointer))
    return None


def _rt_fail(interp: "Interpreter", args: List[object]) -> None:
    (pointer,) = args
    raise TrapError(f"__quantum__rt__fail: {_label_text(pointer)}")


RT_INTRINSICS: Dict[str, Intrinsic] = {
    f"{RT_PREFIX}initialize": _rt_initialize,
    f"{RT_PREFIX}qubit_allocate": _rt_qubit_allocate,
    f"{RT_PREFIX}qubit_release": _rt_qubit_release,
    f"{RT_PREFIX}qubit_allocate_array": _rt_qubit_allocate_array,
    f"{RT_PREFIX}qubit_release_array": _rt_qubit_release_array,
    f"{RT_PREFIX}array_create_1d": _rt_array_create_1d,
    f"{RT_PREFIX}array_get_element_ptr_1d": _rt_array_get_element_ptr_1d,
    f"{RT_PREFIX}array_get_size_1d": _rt_array_get_size_1d,
    f"{RT_PREFIX}array_update_reference_count": _rt_refcount_noop,
    f"{RT_PREFIX}array_update_alias_count": _rt_refcount_noop,
    f"{RT_PREFIX}result_get_zero": _rt_result_get_zero,
    f"{RT_PREFIX}result_get_one": _rt_result_get_one,
    f"{RT_PREFIX}result_equal": _rt_result_equal,
    f"{RT_PREFIX}result_update_reference_count": lambda i, a: None,
    f"{RT_PREFIX}result_record_output": _rt_result_record_output,
    f"{RT_PREFIX}array_record_output": _rt_array_record_output,
    f"{RT_PREFIX}tuple_record_output": _rt_tuple_record_output,
    f"{RT_PREFIX}bool_record_output": _rt_bool_record_output,
    f"{RT_PREFIX}int_record_output": _rt_int_record_output,
    f"{RT_PREFIX}double_record_output": _rt_double_record_output,
    f"{RT_PREFIX}message": _rt_message,
    f"{RT_PREFIX}fail": _rt_fail,
}
