"""Mapping QIR qubit addresses onto simulator slots (paper, Section IV-A).

Two address spaces coexist:

* *Dynamic* qubits come from ``__quantum__rt__qubit_allocate``; the manager
  mints a fresh handle id and binds it to a backend slot.
* *Static* qubits are integer addresses baked into the program.  The
  manager supports the two strategies the paper discusses: pre-allocation
  from the entry point's ``required_num_qubits`` attribute, and
  **on-the-fly allocation** when an unseen address is touched.

The manager also keeps the statistics the SCALE benchmark reports
(total allocations vs. peak simultaneous width, i.e. slot reuse).
"""

from __future__ import annotations

from typing import Dict

from repro.runtime.errors import QirRuntimeError
from repro.runtime.values import IntPtr, QubitPtr
from repro.sim.backend import SimulatorBackend


class QubitManager:
    def __init__(self, backend: SimulatorBackend, allow_on_the_fly: bool = True):
        self.backend = backend
        self.allow_on_the_fly = allow_on_the_fly
        self._dynamic: Dict[int, int] = {}  # handle id -> backend slot
        self._static: Dict[int, int] = {}  # static address -> backend slot
        self._next_handle = 0
        # statistics
        self.total_allocations = 0
        self.peak_width = 0
        self.on_the_fly_allocations = 0

    # -- dynamic addressing ------------------------------------------------------
    def allocate(self) -> QubitPtr:
        slot = self.backend.allocate_qubit()
        handle = self._next_handle
        self._next_handle += 1
        self._dynamic[handle] = slot
        self._note_alloc()
        return QubitPtr(handle)

    def release(self, qubit: QubitPtr) -> None:
        slot = self._dynamic.pop(qubit.id, None)
        if slot is None:
            raise QirRuntimeError(f"release of unknown or already-released {qubit!r}")
        self.backend.release_qubit(slot)

    # -- static addressing ---------------------------------------------------------
    def reserve_static(self, count: int) -> None:
        """Pre-bind static addresses ``0..count-1`` (the attribute route)."""
        for address in range(count):
            if address not in self._static:
                self._static[address] = self.backend.allocate_qubit()
                self._note_alloc()

    def slot_for(self, pointer: object) -> int:
        """Resolve any qubit pointer kind to a backend slot."""
        if isinstance(pointer, QubitPtr):
            slot = self._dynamic.get(pointer.id)
            if slot is None:
                raise QirRuntimeError(f"use of released/unknown {pointer!r}")
            return slot
        if isinstance(pointer, IntPtr):
            slot = self._static.get(pointer.address)
            if slot is None:
                if not self.allow_on_the_fly:
                    raise QirRuntimeError(
                        f"static qubit address {pointer.address} exceeds the "
                        "reserved range and on-the-fly allocation is disabled"
                    )
                slot = self.backend.allocate_qubit()
                self._static[pointer.address] = slot
                self.on_the_fly_allocations += 1
                self._note_alloc()
            return slot
        raise QirRuntimeError(f"{pointer!r} is not a qubit pointer")

    # -- stats ---------------------------------------------------------------
    def _note_alloc(self) -> None:
        self.total_allocations += 1
        width = len(self._dynamic) + len(self._static)
        self.peak_width = max(self.peak_width, width)

    @property
    def live_width(self) -> int:
        return len(self._dynamic) + len(self._static)
