"""The QIR runtime: interpret QIR programs against a simulator backend.

Paper, Section III-C: "A file that contains LLVM IR bytecode can be
executed directly with the lli tool [...] this can be overcome by
providing the missing definitions for the QIR extensions to LLVM.  The
resulting quantum runtime augments the classical LLVM runtime."

This package is that runtime, in Python: :class:`Interpreter` plays the
role of ``lli`` for the classical IR subset, and :mod:`~repro.runtime.intrinsics`
supplies the ``__quantum__qis__*`` / ``__quantum__rt__*`` definitions,
which mutate a :class:`~repro.sim.backend.SimulatorBackend` exactly the way
XANADU's Catalyst runtime drives the Lightning simulator (Example 5).

Qubit addressing follows Section IV-A: dynamic addresses are handles from
``qubit_allocate``; static addresses (``inttoptr`` constants) are mapped to
simulator slots either from the entry point's ``required_num_qubits``
attribute or *on the fly* when first touched.
"""

from repro.runtime.errors import (
    BackendFaultError,
    ERROR_CODES,
    ErrorContext,
    InvalidPointerError,
    OutputCorruptionError,
    PoolStartupError,
    QirRuntimeError,
    QubitAllocationError,
    SchedulerExhaustedError,
    StepLimitExceeded,
    TrapError,
    UnboundFunctionError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.runtime.values import (
    ArrayHandle,
    GlobalPtr,
    IntPtr,
    QubitPtr,
    ResultPtr,
    StackPtr,
)
from repro.runtime.qubit_manager import QubitManager
from repro.runtime.results import ResultStore
from repro.runtime.output import OutputRecord, OutputRecorder
from repro.runtime.interpreter import Interpreter
from repro.runtime.plan import (
    ExecutionPlan,
    PlanDecodeError,
    compile_plan,
    content_hash,
    plan_key,
)
from repro.runtime.plancache import PlanCache, default_cache_dir
from repro.runtime.dispatch import (
    Chunk,
    ChunkQueue,
    QueueStats,
    guided_chunks,
    partition_shots,
)
from repro.runtime.schedulers import (
    SCHEDULERS,
    BatchedScheduler,
    ProcessScheduler,
    SerialScheduler,
    ShotOutcome,
    SupervisionRecord,
    ThreadedScheduler,
    get_scheduler,
)
from repro.runtime.execute import (
    ExecutionResult,
    FastpathComparison,
    QirRuntime,
    SchedulerComparison,
    ShotsResult,
    execute,
    measure_fastpath_speedup,
    measure_scheduler_speedup,
    run_shots,
)
from repro.runtime.session import QirSession

__all__ = [
    "BackendFaultError",
    "ERROR_CODES",
    "ErrorContext",
    "InvalidPointerError",
    "OutputCorruptionError",
    "PoolStartupError",
    "QirRuntimeError",
    "QubitAllocationError",
    "SchedulerExhaustedError",
    "StepLimitExceeded",
    "TrapError",
    "UnboundFunctionError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "ArrayHandle",
    "GlobalPtr",
    "IntPtr",
    "QubitPtr",
    "ResultPtr",
    "StackPtr",
    "QubitManager",
    "ResultStore",
    "OutputRecord",
    "OutputRecorder",
    "Interpreter",
    "ExecutionPlan",
    "PlanDecodeError",
    "PlanCache",
    "default_cache_dir",
    "compile_plan",
    "content_hash",
    "plan_key",
    "SCHEDULERS",
    "SerialScheduler",
    "ThreadedScheduler",
    "BatchedScheduler",
    "ProcessScheduler",
    "ShotOutcome",
    "SupervisionRecord",
    "get_scheduler",
    "Chunk",
    "ChunkQueue",
    "QueueStats",
    "guided_chunks",
    "partition_shots",
    "ExecutionResult",
    "FastpathComparison",
    "SchedulerComparison",
    "ShotsResult",
    "QirRuntime",
    "QirSession",
    "execute",
    "measure_fastpath_speedup",
    "measure_scheduler_speedup",
    "run_shots",
]
