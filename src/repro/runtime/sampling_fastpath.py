"""Deferred-measurement sampling: a multi-shot fast path for the runtime.

A base-profile program measures every qubit at the end; re-interpreting it
per shot (the general path, what qir-runner does) re-simulates the same
unitary evolution a thousand times.  When measurements are *terminal* the
quantum state right before them is shot-independent, so the runtime can
evolve once and sample the joint measurement distribution.

The fast path is attempted optimistically and *proves its own
applicability while running*: a deferred backend records measurements
without collapsing, and aborts with :class:`FastPathUnsupported` the
moment the program does anything whose semantics would depend on a
measurement outcome --

* a gate / reset / release touching an already-measured qubit,
* measuring the same qubit twice,
* reading a result value (``read_result`` / ``result_equal`` feedback).

On abort the caller falls back to per-shot interpretation, so the fast
path is sound by construction rather than by up-front program analysis.
The EX5 benchmark ablates the two strategies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.runtime.results import ResultStore
from repro.runtime.values import IntPtr
from repro.sim.statevector import StatevectorSimulator


class FastPathUnsupported(Exception):
    """Raised mid-execution when the program is not sampleable."""


class DeferredMeasurementBackend:
    """Statevector wrapper that records measurements instead of collapsing."""

    def __init__(self, inner: StatevectorSimulator):
        self.inner = inner
        self.measured_slots: List[int] = []
        self._measured_set: set = set()

    @property
    def num_qubits(self) -> int:
        return self.inner.num_qubits

    def allocate_qubit(self) -> int:
        return self.inner.allocate_qubit()

    def ensure_qubits(self, count: int) -> None:
        self.inner.ensure_qubits(count)

    def release_qubit(self, slot: int) -> None:
        # Releasing resets the qubit.  For a *measured* qubit the reset
        # happens after the recorded outcome in the per-shot model, so it
        # cannot affect results -- but here it would corrupt the deferred
        # joint distribution.  Skip the physical reset and leave the slot
        # allocated (it is never reused within this single evolution).
        if slot in self._measured_set:
            return
        self.inner.release_qubit(slot)

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        if self._measured_set.intersection(qubits):
            raise FastPathUnsupported("gate after measurement on the same qubit")
        self.inner.apply_gate(name, qubits, params)

    def measure(self, slot: int) -> int:
        if slot in self._measured_set:
            raise FastPathUnsupported("qubit measured twice")
        self._measured_set.add(slot)
        self.measured_slots.append(slot)
        return 0  # placeholder; real outcomes are sampled afterwards

    def reset(self, slot: int) -> None:
        if slot in self._measured_set:
            raise FastPathUnsupported("reset after measurement")
        self.inner.reset(slot)


class DeferredResultStore(ResultStore):
    """Tracks which results hold placeholders; reading one aborts the fast
    path (the program feeds back on a measurement), while the output-
    recording epilogue (which uses :meth:`read_default`) is tolerated."""

    def __init__(self) -> None:
        super().__init__()
        self.write_order: List[int] = []
        self._deferred: set = set()

    def write(self, pointer: object, value: int) -> None:
        if not isinstance(pointer, IntPtr):
            raise FastPathUnsupported("dynamic result pointers")
        super().write(pointer, value)
        self.write_order.append(pointer.address)
        self._deferred.add(pointer.address)

    def read(self, pointer: object) -> int:
        if isinstance(pointer, IntPtr) and pointer.address in self._deferred:
            raise FastPathUnsupported("program reads a measurement result")
        return super().read(pointer)

    def read_default(self, pointer: object, default: int = 0) -> int:
        # Output recording only; values are reconstructed by the sampler.
        return default


def sample_counts_from(
    backend: DeferredMeasurementBackend,
    results: DeferredResultStore,
    shots: int,
) -> Dict[str, int]:
    """Turn one uncollapsed evolution into a shot histogram.

    The k-th recorded measurement wrote the k-th result address; sampled
    bits are routed accordingly and rendered highest-result-index first,
    matching the per-shot path's bitstrings.
    """
    slots = backend.measured_slots
    addresses = results.write_order
    if len(slots) != len(addresses):
        raise FastPathUnsupported("measurement/result bookkeeping mismatch")
    if not slots:
        return {"": shots}

    raw = backend.inner.sample(shots, qubits=slots)
    # sample() renders bits as reversed(slots): bit 0 of the string is the
    # *last* slot in `slots`.
    max_address = max(addresses)
    counts: Dict[str, int] = {}
    for bits, count in raw.items():
        by_address = {}
        for position, address in enumerate(addresses):
            by_address[address] = bits[len(slots) - 1 - position]
        rendered = "".join(
            by_address.get(address, "0")
            for address in range(max_address, -1, -1)
        )
        counts[rendered] = counts.get(rendered, 0) + count
    return counts
