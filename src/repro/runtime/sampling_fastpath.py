"""Deferred-measurement sampling: a multi-shot fast path for the runtime.

A base-profile program measures every qubit at the end; re-interpreting it
per shot (the general path, what qir-runner does) re-simulates the same
unitary evolution a thousand times.  When measurements are *terminal* the
quantum state right before them is shot-independent, so the runtime can
evolve once and sample the joint measurement distribution.

The fast path is attempted optimistically and *proves its own
applicability while running*: a deferred backend records measurements
without collapsing, and aborts with :class:`FastPathUnsupported` the
moment the program does anything whose semantics would depend on a
measurement outcome --

* a gate / reset / release touching an already-measured qubit,
* measuring the same qubit twice,
* reading a result value (``read_result`` / ``result_equal`` feedback).

On abort the caller falls back to per-shot interpretation, so the fast
path is sound by construction rather than by up-front program analysis.
The EX5 benchmark ablates the two strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.results import ResultStore
from repro.runtime.values import IntPtr
from repro.sim.statevector import StatevectorSimulator

#: Distributions with more nonzero outcomes than this are not cached --
#: the wire payload would dwarf the module text and the warm win shrinks
#: as the support grows anyway.
MAX_CACHED_OUTCOMES = 4096


class FastPathUnsupported(Exception):
    """Raised mid-execution when the program is not sampleable."""


class DeferredMeasurementBackend:
    """Statevector wrapper that records measurements instead of collapsing."""

    def __init__(self, inner: StatevectorSimulator):
        self.inner = inner
        self.measured_slots: List[int] = []
        self._measured_set: set = set()

    @property
    def num_qubits(self) -> int:
        return self.inner.num_qubits

    def allocate_qubit(self) -> int:
        return self.inner.allocate_qubit()

    def ensure_qubits(self, count: int) -> None:
        self.inner.ensure_qubits(count)

    def release_qubit(self, slot: int) -> None:
        # Releasing resets the qubit.  For a *measured* qubit the reset
        # happens after the recorded outcome in the per-shot model, so it
        # cannot affect results -- but here it would corrupt the deferred
        # joint distribution.  Skip the physical reset and leave the slot
        # allocated (it is never reused within this single evolution).
        if slot in self._measured_set:
            return
        self.inner.release_qubit(slot)

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> None:
        if self._measured_set.intersection(qubits):
            raise FastPathUnsupported("gate after measurement on the same qubit")
        self.inner.apply_gate(name, qubits, params)

    def measure(self, slot: int) -> int:
        if slot in self._measured_set:
            raise FastPathUnsupported("qubit measured twice")
        self._measured_set.add(slot)
        self.measured_slots.append(slot)
        return 0  # placeholder; real outcomes are sampled afterwards

    def reset(self, slot: int) -> None:
        if slot in self._measured_set:
            raise FastPathUnsupported("reset after measurement")
        self.inner.reset(slot)


class DeferredResultStore(ResultStore):
    """Tracks which results hold placeholders; reading one aborts the fast
    path (the program feeds back on a measurement), while the output-
    recording epilogue (which uses :meth:`read_default`) is tolerated."""

    def __init__(self) -> None:
        super().__init__()
        self.write_order: List[int] = []
        self._deferred: set = set()

    def write(self, pointer: object, value: int) -> None:
        if not isinstance(pointer, IntPtr):
            raise FastPathUnsupported("dynamic result pointers")
        super().write(pointer, value)
        self.write_order.append(pointer.address)
        self._deferred.add(pointer.address)

    def read(self, pointer: object) -> int:
        if isinstance(pointer, IntPtr) and pointer.address in self._deferred:
            raise FastPathUnsupported("program reads a measurement result")
        return super().read(pointer)

    def read_default(self, pointer: object, default: int = 0) -> int:
        # Output recording only; values are reconstructed by the sampler.
        return default


def sample_counts_from(
    backend: DeferredMeasurementBackend,
    results: DeferredResultStore,
    shots: int,
) -> Dict[str, int]:
    """Turn one uncollapsed evolution into a shot histogram.

    The k-th recorded measurement wrote the k-th result address; sampled
    bits are routed accordingly and rendered highest-result-index first,
    matching the per-shot path's bitstrings.
    """
    slots = backend.measured_slots
    addresses = results.write_order
    if len(slots) != len(addresses):
        raise FastPathUnsupported("measurement/result bookkeeping mismatch")
    if not slots:
        return {"": shots}

    raw = backend.inner.sample(shots, qubits=slots)
    return _remap_counts(raw, slots, addresses)


def _remap_counts(
    raw: Dict[str, int], slots: Sequence[int], addresses: Sequence[int]
) -> Dict[str, int]:
    # sample() renders bits as reversed(slots): bit 0 of the string is the
    # *last* slot in `slots`.
    max_address = max(addresses)
    counts: Dict[str, int] = {}
    for bits, count in raw.items():
        by_address = {}
        for position, address in enumerate(addresses):
            by_address[address] = bits[len(slots) - 1 - position]
        rendered = "".join(
            by_address.get(address, "0")
            for address in range(max_address, -1, -1)
        )
        counts[rendered] = counts.get(rendered, 0) + count
    return counts


# -- cached sampling distributions ---------------------------------------------


@dataclass(frozen=True)
class SampledDistribution:
    """The terminal output distribution of one fast-path evolution.

    ``entries`` holds ``(bitstring, probability)`` pairs for every
    *nonzero* basis outcome, **in basis-index order and unaggregated** --
    two basis states of the full register may render the same bitstring
    (unmeasured qubits) and must stay separate entries, because bit-exact
    warm replay depends on the cumulative sums :meth:`sample_counts`
    feeds the RNG matching the cold path's dense ones.  Dropping exact
    zeros and keeping order preserves every partial sum (``x + 0.0 == x``)
    and every ``searchsorted`` decision, so a warm plan serving shots
    from this table is bit-identical to re-running the evolution, for
    the same reserved fast-path seed.

    Empty ``entries`` encodes the measurement-free program (the cold
    path's ``{"": shots}``, no RNG consumed).
    """

    entries: Tuple[Tuple[str, float], ...]

    def sample_counts(self, shots: int, seed) -> Dict[str, int]:
        """Serve a shot histogram with zero simulation.

        ``seed`` must be the run's reserved fast-path sequence
        (:func:`~repro.runtime.schedulers.fastpath_sequence`) so warm
        counts reproduce what the cold path would have drawn.
        """
        if not self.entries:
            return {"": shots}
        probs = np.asarray([p for _, p in self.entries], dtype=np.float64)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        for index, count in zip(*np.unique(outcomes, return_counts=True)):
            bits = self.entries[int(index)][0]
            counts[bits] = counts.get(bits, 0) + int(count)
        return counts

    def to_entries(self) -> List[List[object]]:
        return [[bits, prob] for bits, prob in self.entries]

    @classmethod
    def from_entries(cls, entries: object) -> "SampledDistribution":
        """Decode and validate a wire-format entry list.  Raises
        ``ValueError`` on anything suspect -- shape, types, negative or
        non-finite probabilities, or a total that is not ~1.0."""
        if not isinstance(entries, list):
            raise ValueError("distribution entries must be a list")
        pairs: List[Tuple[str, float]] = []
        total = 0.0
        for item in entries:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise ValueError("distribution entry must be a [bits, prob] pair")
            bits, prob = item
            if not isinstance(bits, str) or bits.strip("01"):
                raise ValueError(f"distribution bitstring {bits!r} is not binary")
            if isinstance(prob, bool) or not isinstance(prob, (int, float)):
                raise ValueError("distribution probability must be a number")
            prob = float(prob)
            if not math.isfinite(prob) or prob <= 0.0:
                raise ValueError(f"distribution probability {prob!r} out of range")
            total += prob
            pairs.append((bits, prob))
        if pairs and abs(total - 1.0) > 1e-6:
            raise ValueError(f"distribution sums to {total!r}, expected ~1.0")
        return cls(entries=tuple(pairs))


def distribution_from(
    backend: DeferredMeasurementBackend,
    results: DeferredResultStore,
) -> Optional[SampledDistribution]:
    """Extract the cacheable terminal distribution of one evolution.

    Replicates exactly what :meth:`StatevectorSimulator.sample` feeds
    ``Generator.choice`` -- including its conditional renormalisation --
    then renders each nonzero basis outcome through the same
    slot->address remap as :func:`sample_counts_from`.  Returns ``None``
    when the support exceeds :data:`MAX_CACHED_OUTCOMES` (not worth
    persisting) or the bookkeeping is inconsistent.
    """
    slots = backend.measured_slots
    addresses = results.write_order
    if len(slots) != len(addresses):
        return None
    if not slots:
        return SampledDistribution(entries=())

    probs = backend.inner.probabilities()
    total = float(probs.sum())
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        probs = probs / total
    nonzero = np.flatnonzero(probs)
    if len(nonzero) > MAX_CACHED_OUTCOMES:
        return None
    max_address = max(addresses)
    entries: List[Tuple[str, float]] = []
    for basis in nonzero:
        basis = int(basis)
        by_address = {}
        for position, address in enumerate(addresses):
            by_address[address] = str((basis >> slots[position]) & 1)
        rendered = "".join(
            by_address.get(address, "0")
            for address in range(max_address, -1, -1)
        )
        entries.append((rendered, float(probs[basis])))
    return SampledDistribution(entries=tuple(entries))
