"""Output recording, in the format used by the QIR Alliance's qir-runner.

Base-profile programs end with ``__quantum__rt__*_record_output`` calls;
the recorder turns them into structured records and renders the
``OUTPUT\\t...`` text lines, e.g.::

    OUTPUT\tARRAY\t2\tresults
    OUTPUT\tRESULT\t0\tr0
    OUTPUT\tRESULT\t1\tr1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union


@dataclass(frozen=True)
class OutputRecord:
    kind: str  # "ARRAY" | "TUPLE" | "RESULT" | "BOOL" | "INT" | "DOUBLE"
    value: Union[int, float, str]
    label: Optional[str] = None

    def render(self) -> str:
        parts = ["OUTPUT", self.kind, str(self.value)]
        if self.label is not None:
            parts.append(self.label)
        return "\t".join(parts)


class OutputRecorder:
    def __init__(self) -> None:
        self.records: List[OutputRecord] = []

    def record(self, kind: str, value: Union[int, float, str], label: Optional[str]) -> None:
        self.records.append(OutputRecord(kind, value, label))

    def render(self) -> str:
        return "\n".join(r.render() for r in self.records)

    def result_bits(self) -> List[int]:
        """The RESULT records' values in recording order."""
        return [int(r.value) for r in self.records if r.kind == "RESULT"]

    def bitstring(self) -> str:
        """RESULT records as a bitstring, *last recorded result first* so the
        text matches the simulator histograms (highest index leftmost)."""
        bits = self.result_bits()
        return "".join(str(b) for b in reversed(bits))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
