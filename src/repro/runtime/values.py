"""Runtime value representations.

Classical scalars are plain Python ``int``/``float`` (integer ops re-wrap
to the IR type's width at each step).  Pointers are small tagged objects;
the tag determines which operations a pointer supports:

* :class:`IntPtr` -- result of ``inttoptr`` / ``null``.  When passed to a
  QIS function this *is* a static qubit/result address (paper, Ex. 6).
* :class:`QubitPtr` / :class:`ResultPtr` -- opaque handles minted by the
  runtime for dynamic allocation (paper, Ex. 2).
* :class:`ArrayHandle` -- a ``__quantum__rt__array_*`` object.
* :class:`StackPtr` -- points into an ``alloca``-created cell list.
* :class:`GlobalPtr` -- points into a global constant (label strings).
"""

from __future__ import annotations

from typing import List, Optional


class IntPtr:
    """An integer reinterpreted as a pointer (includes ``null`` = 0)."""

    __slots__ = ("address",)

    def __init__(self, address: int):
        self.address = address

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntPtr) and other.address == self.address

    def __hash__(self) -> int:
        return hash(("intptr", self.address))

    def __repr__(self) -> str:
        return f"IntPtr({self.address})"


NULL = IntPtr(0)


class QubitPtr:
    __slots__ = ("id",)

    def __init__(self, id_: int):
        self.id = id_

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QubitPtr) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("qubit", self.id))

    def __repr__(self) -> str:
        return f"QubitPtr({self.id})"


class ResultPtr:
    __slots__ = ("id",)

    def __init__(self, id_: int):
        self.id = id_

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultPtr) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("result", self.id))

    def __repr__(self) -> str:
        return f"ResultPtr({self.id})"


class ArrayHandle:
    """A ``%Array*`` runtime object: fixed-size cell list + refcounts."""

    __slots__ = (
        "cells",
        "element_size",
        "ref_count",
        "alias_count",
        "is_qubit_array",
        "_memory",
    )

    def __init__(self, size: int, element_size: int = 8, is_qubit_array: bool = False):
        self.cells: List[object] = [None] * size
        self.element_size = element_size
        self.ref_count = 1
        self.alias_count = 0
        self.is_qubit_array = is_qubit_array
        self._memory: Optional["Memory"] = None

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        kind = "qubits" if self.is_qubit_array else "values"
        return f"ArrayHandle({len(self.cells)} {kind})"


class Memory:
    """Backing store for one ``alloca`` (a flat cell list)."""

    __slots__ = ("cells",)

    def __init__(self, num_cells: int):
        self.cells: List[object] = [None] * num_cells


class StackPtr:
    __slots__ = ("memory", "offset")

    def __init__(self, memory: Memory, offset: int = 0):
        self.memory = memory
        self.offset = offset

    def load(self) -> object:
        if not 0 <= self.offset < len(self.memory.cells):
            raise IndexError(f"stack load out of bounds at offset {self.offset}")
        return self.memory.cells[self.offset]

    def store(self, value: object) -> None:
        if not 0 <= self.offset < len(self.memory.cells):
            raise IndexError(f"stack store out of bounds at offset {self.offset}")
        self.memory.cells[self.offset] = value

    def offset_by(self, delta: int) -> "StackPtr":
        return StackPtr(self.memory, self.offset + delta)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StackPtr)
            and other.memory is self.memory
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("stack", id(self.memory), self.offset))

    def __repr__(self) -> str:
        return f"StackPtr(+{self.offset})"


class GlobalPtr:
    """Pointer into a global constant's byte representation."""

    __slots__ = ("data", "offset", "name")

    def __init__(self, data: bytes, offset: int = 0, name: Optional[str] = None):
        self.data = data
        self.offset = offset
        self.name = name

    def load_byte(self) -> int:
        return self.data[self.offset]

    def as_text(self) -> str:
        """The NUL-terminated string starting at this pointer."""
        end = self.data.find(b"\x00", self.offset)
        if end == -1:
            end = len(self.data)
        return self.data[self.offset : end].decode("utf-8", errors="replace")

    def offset_by(self, delta: int) -> "GlobalPtr":
        return GlobalPtr(self.data, self.offset + delta, self.name)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GlobalPtr)
            and other.data == self.data
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("global", self.data, self.offset))

    def __repr__(self) -> str:
        return f"GlobalPtr({self.as_text()!r})"
