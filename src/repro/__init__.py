"""repro: a complete QIR (Quantum Intermediate Representation) toolchain.

A from-scratch Python reproduction of the systems discussed in
"Towards Supporting QIR: Steps for Adopting the Quantum Intermediate
Representation" (Stade, Burgholzer, Wille; SC 2025): an LLVM-IR-subset
infrastructure, the QIR layer (profiles, builder, validation), classical
and quantum optimisation passes, OpenQASM 2/3 frontends, a custom circuit
IR, a QIR runtime with statevector and stabilizer simulator backends, and
a hybrid classical-quantum partitioner with coherence-feasibility
checking.

Quickstart::

    from repro import SimpleModule, run_shots

    sm = SimpleModule("bell", num_qubits=2, num_results=2)
    sm.qis.h(0)
    sm.qis.cnot(0, 1)
    sm.qis.mz(0, 0)
    sm.qis.mz(1, 1)
    sm.record_output()
    print(run_shots(sm.ir(), shots=1000).counts)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced experiments.
"""

from repro.circuit import Circuit, run_circuit, statevector_of
from repro.frontend import (
    export_circuit,
    export_circuit_text,
    import_circuit,
    parse_base_profile,
)
from repro.llvmir import parse_assembly, print_module, verify_module
from repro.obs import NULL_OBSERVER, MetricsRegistry, Observer, Tracer, render_profile
from repro.qasm import circuit_to_qasm2, parse_qasm2, parse_qasm3
from repro.qir import (
    AdaptiveProfile,
    BaseProfile,
    BasicQisBuilder,
    FullProfile,
    SimpleModule,
    validate_profile,
)
from repro.resilience import FallbackChain, FaultPlan, RetryPolicy
from repro.runtime import QirRuntime, ShotsResult, execute, run_shots
from repro.sim import NoiseModel, StabilizerSimulator, StatevectorSimulator
from repro.hybrid import DeviceModel, check_feasibility, partition_function
from repro.compiler import CompilationResult, Target, compile_program

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "run_circuit",
    "statevector_of",
    "export_circuit",
    "export_circuit_text",
    "import_circuit",
    "parse_base_profile",
    "parse_assembly",
    "print_module",
    "verify_module",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "Observer",
    "Tracer",
    "render_profile",
    "circuit_to_qasm2",
    "parse_qasm2",
    "parse_qasm3",
    "AdaptiveProfile",
    "BaseProfile",
    "BasicQisBuilder",
    "FullProfile",
    "SimpleModule",
    "validate_profile",
    "QirRuntime",
    "ShotsResult",
    "execute",
    "run_shots",
    "FallbackChain",
    "FaultPlan",
    "RetryPolicy",
    "NoiseModel",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "DeviceModel",
    "check_feasibility",
    "partition_function",
    "CompilationResult",
    "Target",
    "compile_program",
    "__version__",
]
