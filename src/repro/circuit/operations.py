"""Operations that can appear in a circuit."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuit.registers import Clbit, ClassicalRegister, Qubit
from repro.sim.gates import ADJOINT, canonical_name, get_gate


class Operation:
    """Base class; concrete ops are gates, measurements, resets, barriers,
    and classically-conditioned wrappers."""

    __slots__ = ()

    @property
    def qubits(self) -> Tuple[Qubit, ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class GateOperation(Operation):
    __slots__ = ("name", "_qubits", "params")

    def __init__(self, name: str, qubits: Sequence[Qubit], params: Sequence[float] = ()):
        name = canonical_name(name)
        spec = get_gate(name)  # raises on unknown gate
        if len(qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {name!r} acts on {spec.num_qubits} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"gate {name!r} applied to duplicate qubits {qubits}")
        if len(params) != spec.num_params:
            raise ValueError(
                f"gate {name!r} takes {spec.num_params} params, got {len(params)}"
            )
        self.name = name
        self._qubits = tuple(qubits)
        self.params = tuple(float(p) for p in params)

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        return self._qubits

    def inverse(self) -> "GateOperation":
        spec = get_gate(self.name)
        if spec.hermitian:
            return GateOperation(self.name, self._qubits, self.params)
        if self.name in ADJOINT:
            return GateOperation(ADJOINT[self.name], self._qubits)
        if spec.num_params and self.name != "u3":
            # all single-angle rotations invert by negating the angle
            return GateOperation(self.name, self._qubits, [-p for p in self.params])
        if self.name == "u3":
            theta, phi, lam = self.params
            return GateOperation("u3", self._qubits, [-theta, -lam, -phi])
        raise ValueError(f"no inverse rule for gate {self.name!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GateOperation)
            and other.name == self.name
            and other._qubits == self._qubits
            and other.params == self.params
        )

    def __hash__(self) -> int:
        return hash((self.name, self._qubits, self.params))

    def __repr__(self) -> str:
        params = f"({', '.join(f'{p:g}' for p in self.params)})" if self.params else ""
        targets = ", ".join(map(repr, self._qubits))
        return f"{self.name}{params} {targets}"


class Measurement(Operation):
    __slots__ = ("qubit", "clbit")

    def __init__(self, qubit: Qubit, clbit: Clbit):
        self.qubit = qubit
        self.clbit = clbit

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        return (self.qubit,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Measurement)
            and other.qubit == self.qubit
            and other.clbit == self.clbit
        )

    def __hash__(self) -> int:
        return hash(("measure", self.qubit, self.clbit))

    def __repr__(self) -> str:
        return f"measure {self.qubit!r} -> {self.clbit!r}"


class Reset(Operation):
    __slots__ = ("qubit",)

    def __init__(self, qubit: Qubit):
        self.qubit = qubit

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        return (self.qubit,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reset) and other.qubit == self.qubit

    def __hash__(self) -> int:
        return hash(("reset", self.qubit))

    def __repr__(self) -> str:
        return f"reset {self.qubit!r}"


class Barrier(Operation):
    __slots__ = ("_qubits",)

    def __init__(self, qubits: Sequence[Qubit]):
        self._qubits = tuple(qubits)

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        return self._qubits

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Barrier) and other._qubits == self._qubits

    def __hash__(self) -> int:
        return hash(("barrier", self._qubits))

    def __repr__(self) -> str:
        return f"barrier {', '.join(map(repr, self._qubits))}"


class ConditionalOperation(Operation):
    """OpenQASM-2-style ``if (creg == value) op;``.

    This is the *only* classical control the custom IR can express -- the
    precise limitation the paper's Section III-A warns about when a tool's
    IR meets adaptive-profile QIR.
    """

    __slots__ = ("register", "value", "operation")

    def __init__(self, register: ClassicalRegister, value: int, operation: Operation):
        if isinstance(operation, ConditionalOperation):
            raise ValueError("conditions cannot nest")
        if value < 0 or value >= (1 << register.size):
            raise ValueError(
                f"condition value {value} out of range for {register!r}"
            )
        self.register = register
        self.value = value
        self.operation = operation

    @property
    def qubits(self) -> Tuple[Qubit, ...]:
        return self.operation.qubits

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConditionalOperation)
            and other.register == self.register
            and other.value == self.value
            and other.operation == self.operation
        )

    def __hash__(self) -> int:
        return hash(("if", self.register, self.value, self.operation))

    def __repr__(self) -> str:
        return f"if ({self.register.name} == {self.value}) {self.operation!r}"
