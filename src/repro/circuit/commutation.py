"""Pairwise gate-commutation rules.

The plain peephole (:mod:`repro.circuit.optimize`) invalidates its window
whenever *any* gate touches an operand qubit.  Many of those gates
actually commute -- the standard structural rules:

* gates diagonal in the Z basis (z, s, t, rz, p, cz, cp, rzz, crz, ...)
  commute with each other unconditionally, and with a CNOT when they touch
  only its *control*;
* gates diagonal in the X basis (x, rx, rxx) commute with each other, and
  with a CNOT when they touch only its *target*;
* two CNOTs commute when they share a control or share a target (but not
  when one's control is the other's target).

``commutes(a, b)`` answers soundly (False when unsure); the commutation-
aware optimiser uses it to slide cancellation/merge partners together.
"""

from __future__ import annotations

from repro.circuit.operations import GateOperation, Operation

# Diagonal in the computational (Z) basis.
Z_DIAGONAL = {"i", "z", "s", "s_adj", "t", "t_adj", "rz", "p", "cz", "cp", "rzz", "crz"}

# Diagonal in the X basis.
X_DIAGONAL = {"i", "x", "rx", "rxx"}


def _overlap(a: GateOperation, b: GateOperation):
    return set(a.qubits) & set(b.qubits)


def commutes(a: Operation, b: Operation) -> bool:
    """Do the unitaries of ``a`` and ``b`` commute? (False when unsure.)"""
    if not isinstance(a, GateOperation) or not isinstance(b, GateOperation):
        return False
    shared = _overlap(a, b)
    if not shared:
        return True

    if a.name in Z_DIAGONAL and b.name in Z_DIAGONAL:
        return True
    if a.name in X_DIAGONAL and b.name in X_DIAGONAL:
        return True

    # CNOT interaction: control behaves Z-like, target X-like.
    for first, second in ((a, b), (b, a)):
        if second.name == "cnot":
            control, target = second.qubits
            if first.name in Z_DIAGONAL and all(
                q == control for q in first.qubits if q in shared
            ):
                return True
            if first.name in X_DIAGONAL and all(
                q == target for q in first.qubits if q in shared
            ):
                return True
            if first.name == "cnot":
                fc, ft = first.qubits
                # share a control or share a target -> commute
                if fc == control and ft != target:
                    return True
                if ft == target and fc != control:
                    return True
    return False
