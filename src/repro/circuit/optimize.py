"""Peephole optimisation on the custom circuit IR.

This is the optimiser of the Section III-B *transpile* route: tools that
convert QIR into their own circuit representation re-implement here what
:mod:`repro.passes.quantum` does directly on the QIR AST.  Semantics match
the AST passes exactly (same window rules), so the QOPT benchmark can
compare the two routes like-for-like.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.operations import GateOperation, Operation
from repro.sim.gates import ADJOINT, GATE_SET, MERGEABLE_ROTATIONS

_ZERO_EPS = 1e-12


def cancel_adjacent_gates(circuit: Circuit) -> Tuple[Circuit, int]:
    """Remove adjacent self-inverse / adjoint pairs on identical qubits.

    Returns ``(optimised_circuit, removed_count)``.
    """
    removed = 0
    ops = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        out: List[Operation] = []
        window: Dict[Tuple, int] = {}  # qubit tuple -> index in `out`
        for op in ops:
            if not isinstance(op, GateOperation):
                window.clear()
                out.append(op)
                continue
            key = op.qubits
            prev_index = window.get(key)
            spec = GATE_SET[op.name]
            cancels = False
            if prev_index is not None and not op.params:
                prev = out[prev_index]
                assert isinstance(prev, GateOperation)
                if (spec.hermitian and prev.name == op.name) or ADJOINT.get(
                    prev.name
                ) == op.name:
                    cancels = True
            if cancels:
                assert prev_index is not None
                out.pop(prev_index)
                removed += 2
                # The window cannot simply be re-indexed from `out`: that
                # would resurrect entries later gates already invalidated.
                # Clearing it is sound (only misses fusions the outer
                # fixpoint loop's next sweep will find).
                window.clear()
                changed = True
                continue
            touched = set(key)
            window = {
                k: v for k, v in window.items() if not (set(k) & touched)
            }
            out.append(op)
            if not op.params:
                window[key] = len(out) - 1
        ops = out
    result = circuit.copy()
    result.operations = ops
    return result, removed


def merge_rotations(circuit: Circuit) -> Tuple[Circuit, int]:
    """Sum adjacent same-axis rotations; drop exact zeros."""
    merged = 0
    ops = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        out: List[Operation] = []
        window: Dict[Tuple, int] = {}
        for op in ops:
            if not isinstance(op, GateOperation):
                window.clear()
                out.append(op)
                continue
            key = (op.name, op.qubits)
            mergeable = op.name in MERGEABLE_ROTATIONS and len(op.params) == 1
            prev_index = window.get(key) if mergeable else None
            if prev_index is not None:
                prev = out[prev_index]
                assert isinstance(prev, GateOperation)
                total = prev.params[0] + op.params[0]
                out.pop(prev_index)
                if abs(total) >= _ZERO_EPS:
                    out.insert(
                        prev_index, GateOperation(op.name, op.qubits, [total])
                    )
                merged += 1
                # See cancel_adjacent_gates: re-indexing would resurrect
                # invalidated windows; clear and let the next sweep finish.
                window.clear()
                changed = True
                continue
            touched = set(op.qubits)
            window = {
                k: v
                for k, v in window.items()
                if not (set(k[1]) & touched)
            }
            out.append(op)
            if mergeable:
                window[key] = len(out) - 1
        ops = out
    result = circuit.copy()
    result.operations = ops
    return result, merged


def optimize_circuit(circuit: Circuit) -> Circuit:
    """The full circuit-level peephole: cancellation + rotation merging,
    iterated to a fixpoint."""
    current = circuit
    while True:
        current, removed = cancel_adjacent_gates(current)
        current, merged = merge_rotations(current)
        if not removed and not merged:
            return current


def _commutation_optimize_once(ops: List[Operation]) -> Tuple[List[Operation], bool]:
    """One sweep of commutation-aware cancellation/merging.

    For each gate, scan forward past operations it commutes with; when the
    next blocking operation is its cancellation partner (self-inverse pair
    or adjoint pair) or a same-axis rotation on the same qubits, fuse them.
    """
    from repro.circuit.commutation import commutes

    for i, op in enumerate(ops):
        if not isinstance(op, GateOperation):
            continue
        spec = GATE_SET[op.name]
        is_rotation = op.name in MERGEABLE_ROTATIONS and len(op.params) == 1
        is_cancellable = not op.params and (spec.hermitian or op.name in ADJOINT)
        if not (is_rotation or is_cancellable):
            continue
        for j in range(i + 1, len(ops)):
            other = ops[j]
            if not isinstance(other, GateOperation):
                break  # measurement / barrier / conditional: stop
            if other.qubits == op.qubits:
                if is_rotation and other.name == op.name and len(other.params) == 1:
                    total = op.params[0] + other.params[0]
                    del ops[j]
                    if abs(total) < _ZERO_EPS:
                        del ops[i]
                    else:
                        ops[i] = GateOperation(op.name, op.qubits, [total])
                    return ops, True
                if is_cancellable and not other.params and (
                    (spec.hermitian and other.name == op.name)
                    or ADJOINT.get(op.name) == other.name
                ):
                    del ops[j]
                    del ops[i]
                    return ops, True
            if set(other.qubits) & set(op.qubits) and not commutes(op, other):
                break
    return ops, False


def optimize_circuit_commuting(circuit: Circuit) -> Circuit:
    """Commutation-aware peephole: like :func:`optimize_circuit` but slides
    gates past operations they provably commute with, catching e.g. a
    ``t``/``t_adj`` pair separated by a CNOT controlled on the same qubit.
    Strictly more powerful, at O(n^2) sweep cost."""
    current = optimize_circuit(circuit)
    ops = list(current.operations)
    changed = True
    while changed:
        ops, changed = _commutation_optimize_once(ops)
    result = current.copy()
    result.operations = ops
    return optimize_circuit(result)
