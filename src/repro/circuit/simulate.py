"""Direct circuit execution on a simulator backend.

This is the "custom IR" execution path; the QIR runtime path lives in
:mod:`repro.runtime`.  The integration tests run the same program down both
paths and require identical outcome distributions.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.sim.statevector import StatevectorSimulator
from repro.sim.stabilizer import StabilizerSimulator


def _register_value(bits: Dict[int, int], circuit: Circuit, register) -> int:
    value = 0
    for i in range(register.size):
        index = circuit.clbit_index(register[i])
        value |= bits.get(index, 0) << i
    return value


def _execute_once(circuit: Circuit, backend) -> Dict[int, int]:
    """Run every operation; returns the final classical-bit assignment."""
    bits: Dict[int, int] = {}
    for op in circuit.operations:
        _apply(op, circuit, backend, bits)
    return bits


def _apply(op: Operation, circuit: Circuit, backend, bits: Dict[int, int]) -> None:
    if isinstance(op, ConditionalOperation):
        if _register_value(bits, circuit, op.register) == op.value:
            _apply(op.operation, circuit, backend, bits)
        return
    if isinstance(op, GateOperation):
        backend.apply_gate(op.name, [circuit.qubit_index(q) for q in op.qubits], op.params)
    elif isinstance(op, Measurement):
        outcome = backend.measure(circuit.qubit_index(op.qubit))
        bits[circuit.clbit_index(op.clbit)] = outcome
    elif isinstance(op, Reset):
        backend.reset(circuit.qubit_index(op.qubit))
    elif isinstance(op, Barrier):
        pass
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"unknown operation {op!r}")


def run_circuit(
    circuit: Circuit,
    shots: int = 1024,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> Dict[str, int]:
    """Execute ``shots`` times; returns a histogram over the classical bits
    (bit order: highest clbit index first, matching OpenQASM conventions).

    ``backend`` is ``"statevector"``, ``"stabilizer"``, or ``"auto"`` (picks
    the stabilizer backend for Clifford circuits beyond statevector reach).
    """
    if backend == "auto":
        backend = (
            "stabilizer"
            if circuit.is_clifford() and circuit.num_qubits > 20
            else "statevector"
        )

    rng = np.random.default_rng(seed)
    histogram: Dict[str, int] = {}
    n_clbits = circuit.num_clbits

    mid_circuit = circuit.has_conditionals() or _has_mid_circuit_collapse(circuit)
    if backend == "statevector" and not mid_circuit:
        # Fast path: one statevector evolution, sample measured qubits.
        sim = StatevectorSimulator(circuit.num_qubits, seed=int(rng.integers(2**63)))
        measured: Dict[int, int] = {}  # clbit index -> qubit index
        for op in circuit.operations:
            if isinstance(op, Measurement):
                measured[circuit.clbit_index(op.clbit)] = circuit.qubit_index(op.qubit)
            else:
                _apply(op, circuit, sim, {})
        samples = sim.sample(shots)
        for bitstring, count in samples.items():
            # map sampled qubit values onto classical bits
            qvalues = {
                q: int(bitstring[circuit.num_qubits - 1 - q]) for q in range(circuit.num_qubits)
            }
            out = "".join(
                str(qvalues.get(measured.get(c, -1), 0)) for c in reversed(range(n_clbits))
            )
            histogram[out] = histogram.get(out, 0) + count
        return histogram

    for _ in range(shots):
        shot_seed = int(rng.integers(2**63))
        if backend == "statevector":
            sim = StatevectorSimulator(circuit.num_qubits, seed=shot_seed)
        elif backend == "stabilizer":
            sim = StabilizerSimulator(circuit.num_qubits, seed=shot_seed)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        bits = _execute_once(circuit, sim)
        out = "".join(str(bits.get(c, 0)) for c in reversed(range(n_clbits)))
        histogram[out] = histogram.get(out, 0) + 1
    return histogram


def _has_mid_circuit_collapse(circuit: Circuit) -> bool:
    """True when a measurement or reset is followed by more quantum ops on
    any qubit, so per-shot simulation is required."""
    collapsed = set()
    for op in circuit.operations:
        if isinstance(op, (Measurement, Reset)):
            collapsed.add(op.qubits[0])
        elif isinstance(op, GateOperation) and collapsed & set(op.qubits):
            return True
    return False


def statevector_of(circuit: Circuit) -> np.ndarray:
    """The final statevector of a measurement-free circuit."""
    if circuit.has_measurements() or circuit.has_conditionals():
        raise ValueError("circuit must be unitary (no measurements/conditions)")
    sim = StatevectorSimulator(circuit.num_qubits)
    for op in circuit.operations:
        _apply(op, circuit, sim, {})
    return sim.state.copy()
