"""A custom quantum-circuit IR (the paper's "tool-specific IR").

Section III-A/B of the paper weighs parsing/transpiling QIR into a custom
in-memory circuit representation against operating on the QIR AST directly.
This package *is* that custom IR: registers, gate operations, measurements,
resets and (OpenQASM-2-style) classically-conditioned operations -- but, by
design, no arbitrary classical control flow.  The expressiveness gap this
creates for adaptive-profile QIR programs is exactly what the QOPT
benchmark measures.
"""

from repro.circuit.registers import Clbit, ClassicalRegister, QuantumRegister, Qubit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.circuit.circuit import Circuit
from repro.circuit.simulate import run_circuit, statevector_of
from repro.circuit.dag import CircuitDAG

__all__ = [
    "Clbit",
    "ClassicalRegister",
    "QuantumRegister",
    "Qubit",
    "Barrier",
    "ConditionalOperation",
    "GateOperation",
    "Measurement",
    "Operation",
    "Reset",
    "Circuit",
    "run_circuit",
    "statevector_of",
    "CircuitDAG",
]
