"""Dependency DAG over circuit operations.

Used by the quantum optimisation passes: two operations commute trivially
when they share no wires, so the DAG's edges are per-wire successor links.
Built on networkx for traversals.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.circuit.circuit import Circuit
from repro.circuit.operations import ConditionalOperation, Measurement, Operation


class CircuitDAG:
    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_wire: Dict[object, int] = {}
        for i, op in enumerate(circuit.operations):
            self.graph.add_node(i, op=op)
            for wire in self._wires(op):
                prev = last_on_wire.get(wire)
                if prev is not None:
                    self.graph.add_edge(prev, i)
                last_on_wire[wire] = i

    def _wires(self, op: Operation) -> List[object]:
        wires: List[object] = list(op.qubits)
        inner = op.operation if isinstance(op, ConditionalOperation) else op
        if isinstance(inner, Measurement):
            wires.append(inner.clbit)
        if isinstance(op, ConditionalOperation):
            wires.extend(op.register[i] for i in range(op.register.size))
        return wires

    def operation(self, node: int) -> Operation:
        return self.graph.nodes[node]["op"]

    def topological_operations(self) -> List[Operation]:
        return [self.operation(n) for n in nx.topological_sort(self.graph)]

    def successors_on_wires(self, node: int) -> List[int]:
        return sorted(self.graph.successors(node))

    def predecessors_on_wires(self, node: int) -> List[int]:
        return sorted(self.graph.predecessors(node))

    def longest_path_length(self) -> int:
        """Critical-path length in operations (an alternative depth metric)."""
        if not self.graph:
            return 0
        return nx.dag_longest_path_length(self.graph) + 1

    def layers(self) -> List[List[Operation]]:
        """ASAP-scheduled layers of simultaneously executable operations."""
        level: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        if not level:
            return []
        out: List[List[Operation]] = [[] for _ in range(max(level.values()) + 1)]
        for node, lvl in level.items():
            out[lvl].append(self.operation(node))
        return out
