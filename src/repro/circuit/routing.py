"""Qubit mapping and routing against a hardware coupling map.

Paper, Section III-A: tools transform the program "so that it complies
with all the restrictions imposed by the hardware", citing the qubit-
mapping problem; Section IV-A calls the qubit-assignment step "very
similar to register allocation".  This module implements that
transformation for the custom circuit IR:

* :class:`CouplingMap` -- the device topology (line / ring / grid /
  fully-connected factories, or any networkx graph);
* :func:`route_circuit` -- greedy shortest-path router: whenever a
  two-qubit gate spans non-adjacent physical qubits, SWAPs move one
  operand along a shortest path; the logical->physical layout is tracked
  throughout, so measurements always read the right physical qubit.

The MAP benchmark reports the added-SWAP overhead across topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.circuit.circuit import Circuit
from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.circuit.registers import Qubit, QuantumRegister


class CouplingMap:
    """An undirected connectivity graph over physical qubits ``0..n-1``."""

    def __init__(self, graph: "nx.Graph"):
        if any(not isinstance(node, int) for node in graph.nodes):
            raise ValueError("coupling-map nodes must be integers")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise ValueError("coupling-map nodes must be 0..n-1")
        if graph.number_of_nodes() and not nx.is_connected(graph):
            raise ValueError("coupling map must be connected")
        self.graph = graph
        self._paths: Dict[Tuple[int, int], List[int]] = {}

    # -- factories -----------------------------------------------------------
    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        return cls(nx.path_graph(num_qubits))

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        return cls(nx.cycle_graph(num_qubits))

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        grid = nx.grid_2d_graph(rows, cols)
        relabel = {node: row * cols + col for (row, col) in grid.nodes for node in [(row, col)]}
        return cls(nx.relabel_nodes(grid, relabel))

    @classmethod
    def full(cls, num_qubits: int) -> "CouplingMap":
        return cls(nx.complete_graph(num_qubits))

    # -- queries ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.graph.number_of_nodes()

    def adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def shortest_path(self, a: int, b: int) -> List[int]:
        key = (a, b)
        path = self._paths.get(key)
        if path is None:
            path = nx.shortest_path(self.graph, a, b)
            self._paths[key] = path
        return list(path)

    def distance(self, a: int, b: int) -> int:
        return len(self.shortest_path(a, b)) - 1

    def __repr__(self) -> str:
        return (
            f"<CouplingMap {self.size} qubits, "
            f"{self.graph.number_of_edges()} edges>"
        )


@dataclass
class RoutingResult:
    circuit: Circuit
    initial_layout: Dict[int, int]  # logical -> physical at program start
    final_layout: Dict[int, int]  # logical -> physical at program end
    swaps_inserted: int

    @property
    def overhead(self) -> int:
        return self.swaps_inserted


class RoutingError(ValueError):
    pass


def route_circuit(
    circuit: Circuit,
    coupling: CouplingMap,
    initial_layout: Optional[Dict[int, int]] = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate acts on coupled physical qubits.

    ``initial_layout`` maps logical indices to physical ones (default:
    identity).  Three-qubit gates are not routed -- decompose first.
    Classical conditions are preserved; the conditioned gate is routed
    like any other.
    """
    if circuit.num_qubits > coupling.size:
        raise RoutingError(
            f"circuit needs {circuit.num_qubits} qubits; device has {coupling.size}"
        )

    layout: Dict[int, int] = dict(
        initial_layout
        if initial_layout is not None
        else {i: i for i in range(circuit.num_qubits)}
    )
    if initial_layout is not None:
        used = set(layout.values())
        if len(used) != len(layout):
            raise RoutingError("initial layout is not injective")
        if any(not 0 <= p < coupling.size for p in used):
            raise RoutingError("initial layout targets nonexistent qubits")

    physical_reg = QuantumRegister("phys", coupling.size)
    routed = Circuit(f"{circuit.name}_routed")
    routed.add_qreg(physical_reg)
    for creg in circuit.cregs:
        routed.add_creg(creg)

    # reverse map for swapping
    occupant: Dict[int, Optional[int]] = {p: None for p in range(coupling.size)}
    for logical, physical in layout.items():
        occupant[physical] = logical

    swaps = 0

    def emit_swap(a: int, b: int) -> None:
        nonlocal swaps
        routed.append(GateOperation("swap", [physical_reg[a], physical_reg[b]]))
        la, lb = occupant[a], occupant[b]
        occupant[a], occupant[b] = lb, la
        if la is not None:
            layout[la] = b
        if lb is not None:
            layout[lb] = a
        swaps += 1

    def bring_adjacent(l1: int, l2: int) -> None:
        """Move logical l1's carrier toward l2's along a shortest path."""
        p1, p2 = layout[l1], layout[l2]
        path = coupling.shortest_path(p1, p2)
        # swap along path until the two occupants are adjacent
        for next_hop in path[1:-1]:
            emit_swap(layout[l1], next_hop)
            if coupling.adjacent(layout[l1], layout[l2]):
                break

    def route_gate(op: GateOperation) -> GateOperation:
        logicals = [circuit.qubit_index(q) for q in op.qubits]
        if len(logicals) == 1:
            return GateOperation(op.name, [physical_reg[layout[logicals[0]]]], op.params)
        if len(logicals) == 2:
            l1, l2 = logicals
            if not coupling.adjacent(layout[l1], layout[l2]):
                bring_adjacent(l1, l2)
            return GateOperation(
                op.name,
                [physical_reg[layout[l1]], physical_reg[layout[l2]]],
                op.params,
            )
        raise RoutingError(
            f"cannot route {len(logicals)}-qubit gate {op.name!r}; decompose first"
        )

    for op in circuit.operations:
        if isinstance(op, GateOperation):
            routed.append(route_gate(op))
        elif isinstance(op, Measurement):
            logical = circuit.qubit_index(op.qubit)
            routed.append(Measurement(physical_reg[layout[logical]], op.clbit))
        elif isinstance(op, Reset):
            logical = circuit.qubit_index(op.qubit)
            routed.append(Reset(physical_reg[layout[logical]]))
        elif isinstance(op, Barrier):
            physical = [physical_reg[layout[circuit.qubit_index(q)]] for q in op.qubits]
            routed.append(Barrier(physical))
        elif isinstance(op, ConditionalOperation):
            inner = op.operation
            if isinstance(inner, GateOperation):
                routed_inner: Operation = route_gate(inner)
            elif isinstance(inner, Measurement):
                logical = circuit.qubit_index(inner.qubit)
                routed_inner = Measurement(physical_reg[layout[logical]], inner.clbit)
            elif isinstance(inner, Reset):
                logical = circuit.qubit_index(inner.qubit)
                routed_inner = Reset(physical_reg[layout[logical]])
            else:  # pragma: no cover
                raise RoutingError(f"cannot route conditional {inner!r}")
            routed.append(ConditionalOperation(op.register, op.value, routed_inner))
        else:  # pragma: no cover
            raise RoutingError(f"cannot route operation {op!r}")

    initial = (
        dict(initial_layout)
        if initial_layout is not None
        else {i: i for i in range(circuit.num_qubits)}
    )
    return RoutingResult(routed, initial, dict(layout), swaps)


def verify_routing(result: RoutingResult, coupling: CouplingMap) -> None:
    """Check the hardware constraint: every 2q gate spans a coupled pair."""
    circuit = result.circuit
    for op in circuit.operations:
        inner = op.operation if isinstance(op, ConditionalOperation) else op
        if isinstance(inner, GateOperation) and len(inner.qubits) == 2:
            a, b = (circuit.qubit_index(q) for q in inner.qubits)
            if not coupling.adjacent(a, b):
                raise RoutingError(
                    f"gate {inner!r} spans non-adjacent qubits {a}, {b}"
                )
