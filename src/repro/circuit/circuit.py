"""The Circuit container: ordered operations over named registers."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.circuit.operations import (
    Barrier,
    ConditionalOperation,
    GateOperation,
    Measurement,
    Operation,
    Reset,
)
from repro.circuit.registers import Clbit, ClassicalRegister, QuantumRegister, Qubit

QubitLike = Union[Qubit, int]
ClbitLike = Union[Clbit, int]


class Circuit:
    """An ordered list of operations over quantum/classical registers.

    Qubits may be addressed by :class:`Qubit` handle or by *global index*
    (flat across registers in declaration order), mirroring how the QIR
    exporters number qubits.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.qregs: List[QuantumRegister] = []
        self.cregs: List[ClassicalRegister] = []
        self.operations: List[Operation] = []

    # -- registers ---------------------------------------------------------------
    def add_qreg(self, register: QuantumRegister) -> QuantumRegister:
        if any(r.name == register.name for r in self.qregs):
            raise ValueError(f"duplicate quantum register {register.name!r}")
        self.qregs.append(register)
        return register

    def add_creg(self, register: ClassicalRegister) -> ClassicalRegister:
        if any(r.name == register.name for r in self.cregs):
            raise ValueError(f"duplicate classical register {register.name!r}")
        self.cregs.append(register)
        return register

    def qreg(self, size: int, name: Optional[str] = None) -> QuantumRegister:
        name = name or f"q{len(self.qregs) if self.qregs else ''}"
        return self.add_qreg(QuantumRegister(name, size))

    def creg(self, size: int, name: Optional[str] = None) -> ClassicalRegister:
        name = name or f"c{len(self.cregs) if self.cregs else ''}"
        return self.add_creg(ClassicalRegister(name, size))

    @property
    def num_qubits(self) -> int:
        return sum(r.size for r in self.qregs)

    @property
    def num_clbits(self) -> int:
        return sum(r.size for r in self.cregs)

    @property
    def qubits(self) -> List[Qubit]:
        return [q for reg in self.qregs for q in reg]

    @property
    def clbits(self) -> List[Clbit]:
        return [c for reg in self.cregs for c in reg]

    def qubit_index(self, qubit: Qubit) -> int:
        offset = 0
        for reg in self.qregs:
            if reg == qubit.register:
                return offset + qubit.index
            offset += reg.size
        raise ValueError(f"{qubit!r} is not in this circuit")

    def clbit_index(self, clbit: Clbit) -> int:
        offset = 0
        for reg in self.cregs:
            if reg == clbit.register:
                return offset + clbit.index
            offset += reg.size
        raise ValueError(f"{clbit!r} is not in this circuit")

    def _resolve_qubit(self, q: QubitLike) -> Qubit:
        if isinstance(q, Qubit):
            self.qubit_index(q)  # validates membership
            return q
        index = q
        for reg in self.qregs:
            if index < reg.size:
                return reg[index]
            index -= reg.size
        raise IndexError(f"global qubit index {q} out of range")

    def _resolve_clbit(self, c: ClbitLike) -> Clbit:
        if isinstance(c, Clbit):
            self.clbit_index(c)
            return c
        index = c
        for reg in self.cregs:
            if index < reg.size:
                return reg[index]
            index -= reg.size
        raise IndexError(f"global clbit index {c} out of range")

    # -- construction ---------------------------------------------------------------
    def append(self, operation: Operation) -> Operation:
        for qubit in operation.qubits:
            self.qubit_index(qubit)  # membership check
        self.operations.append(operation)
        return operation

    def gate(
        self, name: str, qubits: Sequence[QubitLike], params: Sequence[float] = ()
    ) -> GateOperation:
        op = GateOperation(name, [self._resolve_qubit(q) for q in qubits], params)
        return self.append(op)  # type: ignore[return-value]

    # common gates as methods
    def h(self, q: QubitLike) -> GateOperation:
        return self.gate("h", [q])

    def x(self, q: QubitLike) -> GateOperation:
        return self.gate("x", [q])

    def y(self, q: QubitLike) -> GateOperation:
        return self.gate("y", [q])

    def z(self, q: QubitLike) -> GateOperation:
        return self.gate("z", [q])

    def s(self, q: QubitLike) -> GateOperation:
        return self.gate("s", [q])

    def sdg(self, q: QubitLike) -> GateOperation:
        return self.gate("s_adj", [q])

    def t(self, q: QubitLike) -> GateOperation:
        return self.gate("t", [q])

    def tdg(self, q: QubitLike) -> GateOperation:
        return self.gate("t_adj", [q])

    def rx(self, theta: float, q: QubitLike) -> GateOperation:
        return self.gate("rx", [q], [theta])

    def ry(self, theta: float, q: QubitLike) -> GateOperation:
        return self.gate("ry", [q], [theta])

    def rz(self, theta: float, q: QubitLike) -> GateOperation:
        return self.gate("rz", [q], [theta])

    def p(self, lam: float, q: QubitLike) -> GateOperation:
        return self.gate("p", [q], [lam])

    def cx(self, control: QubitLike, target: QubitLike) -> GateOperation:
        return self.gate("cnot", [control, target])

    cnot = cx

    def cz(self, control: QubitLike, target: QubitLike) -> GateOperation:
        return self.gate("cz", [control, target])

    def cp(self, lam: float, control: QubitLike, target: QubitLike) -> GateOperation:
        return self.gate("cp", [control, target], [lam])

    def swap(self, a: QubitLike, b: QubitLike) -> GateOperation:
        return self.gate("swap", [a, b])

    def ccx(self, c1: QubitLike, c2: QubitLike, target: QubitLike) -> GateOperation:
        return self.gate("ccx", [c1, c2, target])

    def measure(self, qubit: QubitLike, clbit: ClbitLike) -> Measurement:
        op = Measurement(self._resolve_qubit(qubit), self._resolve_clbit(clbit))
        return self.append(op)  # type: ignore[return-value]

    def measure_all(self) -> None:
        if self.num_clbits < self.num_qubits:
            raise ValueError("not enough classical bits to measure every qubit")
        for q, c in zip(self.qubits, self.clbits):
            self.measure(q, c)

    def reset(self, qubit: QubitLike) -> Reset:
        return self.append(Reset(self._resolve_qubit(qubit)))  # type: ignore[return-value]

    def barrier(self, *qubits: QubitLike) -> Barrier:
        resolved = [self._resolve_qubit(q) for q in qubits] or self.qubits
        return self.append(Barrier(resolved))  # type: ignore[return-value]

    def c_if(
        self, register: ClassicalRegister, value: int, operation: Operation
    ) -> ConditionalOperation:
        """Wrap an operation in a classical condition and append it.

        ``operation`` must not already be in the circuit; build it directly
        (e.g. ``GateOperation("x", [qr[0]])``) and pass it here.
        """
        op = ConditionalOperation(register, value, operation)
        return self.append(op)  # type: ignore[return-value]

    # -- whole-circuit operations ------------------------------------------------
    def compose(self, other: "Circuit") -> "Circuit":
        """Append another circuit's operations; registers must be compatible
        (same names imply same sizes)."""
        merged = self.copy()
        mine_q = {r.name: r for r in merged.qregs}
        mine_c = {r.name: r for r in merged.cregs}
        for reg in other.qregs:
            if reg.name in mine_q:
                if mine_q[reg.name] != reg:
                    raise ValueError(f"register clash on {reg.name!r}")
            else:
                merged.add_qreg(reg)
        for reg in other.cregs:
            if reg.name in mine_c:
                if mine_c[reg.name] != reg:
                    raise ValueError(f"register clash on {reg.name!r}")
            else:
                merged.add_creg(reg)
        merged.operations.extend(other.operations)
        return merged

    def inverse(self) -> "Circuit":
        """Reverse with inverted gates; measurement/reset/conditionals refuse."""
        inv = Circuit(f"{self.name}_inv")
        for reg in self.qregs:
            inv.add_qreg(reg)
        for reg in self.cregs:
            inv.add_creg(reg)
        for op in reversed(self.operations):
            if isinstance(op, GateOperation):
                inv.append(op.inverse())
            elif isinstance(op, Barrier):
                inv.append(op)
            else:
                raise ValueError(f"cannot invert non-unitary operation {op!r}")
        return inv

    def copy(self) -> "Circuit":
        dup = Circuit(self.name)
        dup.qregs = list(self.qregs)
        dup.cregs = list(self.cregs)
        dup.operations = list(self.operations)
        return dup

    # -- queries ---------------------------------------------------------------
    def count_ops(self) -> Counter:
        counts: Counter = Counter()
        for op in self.operations:
            if isinstance(op, GateOperation):
                counts[op.name] += 1
            elif isinstance(op, Measurement):
                counts["measure"] += 1
            elif isinstance(op, Reset):
                counts["reset"] += 1
            elif isinstance(op, Barrier):
                counts["barrier"] += 1
            elif isinstance(op, ConditionalOperation):
                counts["if"] += 1
        return counts

    def depth(self) -> int:
        """Circuit depth over qubit wires (barriers synchronise, classical
        conditions tie in every bit of their register)."""
        level: Dict[object, int] = {}
        depth = 0
        for op in self.operations:
            wires: List[object] = list(op.qubits)
            if isinstance(op, Measurement):
                wires.append(op.clbit)
            if isinstance(op, ConditionalOperation):
                wires.extend(op.register[i] for i in range(op.register.size))
                if isinstance(op.operation, Measurement):
                    wires.append(op.operation.clbit)
            if isinstance(op, Barrier):
                wires = list(op.qubits)
            start = max((level.get(w, 0) for w in wires), default=0)
            if not isinstance(op, Barrier):
                start += 1
            for w in wires:
                level[w] = start
            depth = max(depth, start)
        return depth

    def has_measurements(self) -> bool:
        return any(
            isinstance(op, Measurement)
            or (
                isinstance(op, ConditionalOperation)
                and isinstance(op.operation, Measurement)
            )
            for op in self.operations
        )

    def has_conditionals(self) -> bool:
        return any(isinstance(op, ConditionalOperation) for op in self.operations)

    def is_clifford(self) -> bool:
        from repro.sim.gates import is_clifford_gate

        for op in self.operations:
            inner = op.operation if isinstance(op, ConditionalOperation) else op
            if isinstance(inner, GateOperation) and not is_clifford_gate(inner.name):
                return False
        return True

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Circuit)
            and other.qregs == self.qregs
            and other.cregs == self.cregs
            and other.operations == self.operations
        )

    def __repr__(self) -> str:
        return (
            f"<Circuit {self.name!r}: {self.num_qubits} qubits, "
            f"{self.num_clbits} clbits, {len(self.operations)} ops>"
        )
