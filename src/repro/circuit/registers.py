"""Quantum and classical registers and their bit handles."""

from __future__ import annotations

from typing import Iterator


class _Register:
    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int):
        if size < 0:
            raise ValueError("register size must be non-negative")
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise ValueError(f"invalid register name {name!r}")
        self.name = name
        self.size = size

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.name == self.name  # type: ignore[attr-defined]
            and other.size == self.size  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, self.size))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.size})"


class QuantumRegister(_Register):
    def __getitem__(self, index: int) -> "Qubit":
        if not 0 <= index < self.size:
            raise IndexError(f"qubit index {index} out of range for {self!r}")
        return Qubit(self, index)

    def __iter__(self) -> Iterator["Qubit"]:
        return (self[i] for i in range(self.size))


class ClassicalRegister(_Register):
    def __getitem__(self, index: int) -> "Clbit":
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} out of range for {self!r}")
        return Clbit(self, index)

    def __iter__(self) -> Iterator["Clbit"]:
        return (self[i] for i in range(self.size))


class Qubit:
    __slots__ = ("register", "index")

    def __init__(self, register: QuantumRegister, index: int):
        self.register = register
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Qubit)
            and other.register == self.register
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash(("qubit", self.register, self.index))

    def __repr__(self) -> str:
        return f"{self.register.name}[{self.index}]"


class Clbit:
    __slots__ = ("register", "index")

    def __init__(self, register: ClassicalRegister, index: int):
        self.register = register
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Clbit)
            and other.register == self.register
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash(("clbit", self.register, self.index))

    def __repr__(self) -> str:
        return f"{self.register.name}[{self.index}]"
