"""qir-run: execute a QIR program (the ``lli`` analogue, paper Sec. III-C).

Examples::

    qir-run program.ll                      # one shot, print OUTPUT records
    qir-run program.ll --shots 1000         # histogram over 1000 shots
    qir-run program.ll --backend stabilizer --seed 7
    qir-run program.ll --noise-1q 0.01 --noise-readout 0.02
    qir-run program.ll --shots 1000 --retries 3 --fallback \\
        --inject-fault gate,p=0.01,failures=2
    qir-run program.ll --shots 1000 --profile --trace t.jsonl --metrics m.json

Exit codes distinguish failure origins: 0 = success (including partial
success with a failure report), 1 = the *program* trapped (``unreachable``
or ``__quantum__rt__fail``), 2 = input could not be read/parsed/verified,
3 = the runtime infrastructure failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.cli import add_observability_args, emit_observability, observer_from_args
from repro.resilience import FallbackChain, FaultPlan, RetryPolicy, ShotFailure
from repro.resilience.report import render_timing_line
from repro.runtime import QirRuntime, QirRuntimeError, QirSession, TrapError
from repro.sim import NoiseModel

EXIT_OK = 0
EXIT_TRAP = 1
EXIT_PARSE = 2
EXIT_INFRA = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-run", description=__doc__.splitlines()[0]
    )
    parser.add_argument("input", help="QIR (.ll) file, or '-' for stdin")
    parser.add_argument("--shots", type=int, default=1,
                        help="number of shots (default 1: print OUTPUT records)")
    parser.add_argument("--backend", choices=["statevector", "stabilizer"],
                        default="statevector")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--entry", default=None, help="entry-point function name")
    parser.add_argument("--max-qubits", type=int, default=26,
                        help="statevector width guard")
    parser.add_argument("--no-on-the-fly", action="store_true",
                        help="disable on-the-fly allocation for static addresses")
    parser.add_argument("--noise-1q", type=float, default=0.0,
                        help="1-qubit depolarizing probability")
    parser.add_argument("--noise-2q", type=float, default=0.0,
                        help="2-qubit depolarizing probability")
    parser.add_argument("--noise-readout", type=float, default=0.0,
                        help="readout flip probability")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the IR verifier")
    parser.add_argument("--no-fusion", action="store_true",
                        help="disable fused gate kernels (run every gate "
                             "through the interpreter individually)")
    parser.add_argument("--no-dist-cache", action="store_true",
                        help="disable the cached sampling distribution "
                             "(warm plans re-simulate instead of sampling "
                             "the memoized output distribution)")
    parser.add_argument("--opt", default=None, metavar="PIPELINE",
                        help="run a qir-opt pipeline before executing "
                             "(same names as qir-opt --pipeline)")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--scheduler",
                           choices=["serial", "threaded", "batched", "process"],
                           default="serial",
                           help="shot scheduler: serial (default), threaded "
                                "(--jobs worker threads), batched (vectorised "
                                "multi-shot statevector evolution), or process "
                                "(--jobs worker processes fed serialized plans)")
    execution.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="workers for --scheduler threaded/process")
    execution.add_argument("--chunk-shots", type=int, default=None,
                           metavar="K",
                           help="fixed shots per work-queue chunk for "
                                "--scheduler threaded/process (default: "
                                "guided sizing — large chunks first, "
                                "shrinking toward a floor; K = "
                                "ceil(shots/jobs) reproduces the old "
                                "one-chunk-per-worker contiguous split)")
    execution.add_argument("--min-chunk-shots", type=int, default=None,
                           metavar="F",
                           help="floor for guided chunk sizing (raise it "
                                "when per-chunk dispatch overhead rivals "
                                "the cost of F shots)")
    execution.add_argument("--worker-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="process-scheduler watchdog: a worker that "
                                "stops heartbeating for SECONDS is declared "
                                "hung, terminated, and its chunk re-dispatched "
                                "(default: off; auto-armed for worker_hang "
                                "fault injection)")
    execution.add_argument("--max-worker-failures", type=int, default=None,
                           metavar="N",
                           help="failed dispatch waves before the process "
                                "scheduler's circuit breaker demotes the run "
                                "to the threaded scheduler (default 2)")
    execution.add_argument("--plan-cache", default=None, metavar="DIR",
                           help="persist compiled plans under DIR so later "
                                "processes warm-start (also honours the "
                                "QIR_PLAN_CACHE environment variable); "
                                "reports 'plan-cache: hit|miss' on stderr")
    execution.add_argument("--ledger", default=None, metavar="DIR",
                           help="append one durable row per multi-shot run "
                                "to the run ledger under DIR (also honours "
                                "the QIR_LEDGER environment variable); read "
                                "it back with qir-ledger")
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument("--retries", type=int, default=1, metavar="N",
                            help="attempts per shot (default 1: fail fast)")
    resilience.add_argument("--backoff-base", type=float, default=0.0,
                            help="base retry delay in seconds (exponential)")
    resilience.add_argument("--fallback", action="store_true",
                            help="demote the backend on repeated failure "
                                 "(noisy->clean, statevector->stabilizer)")
    resilience.add_argument("--inject-fault", action="append", default=[],
                            metavar="SPEC",
                            help="seeded fault injection, e.g. "
                                 "'gate,p=0.01,failures=2' (repeatable)")
    resilience.add_argument("--fault-seed", type=int, default=0,
                            help="seed for the fault plan (default 0)")
    add_observability_args(parser)
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _print_failures(failures: List[ShotFailure]) -> None:
    for failure in failures:
        print(failure.render(), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    observer = observer_from_args(args)
    try:
        return _run(args, observer)
    finally:
        # Trace/metrics/profile are flushed even on failure exits: a run
        # that died halfway is exactly the one worth inspecting.
        emit_observability(args, observer)


def _run(args: argparse.Namespace, observer) -> int:
    if args.jobs < 1:
        print("qir-run: error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_PARSE
    if args.jobs > 1 and args.scheduler == "serial":
        print(
            "qir-run: error: --jobs > 1 requires --scheduler threaded "
            "(the serial scheduler runs one shot at a time)",
            file=sys.stderr,
        )
        return EXIT_PARSE
    supervised = (
        args.worker_timeout is not None or args.max_worker_failures is not None
    )
    if supervised and args.scheduler != "process":
        print(
            "qir-run: error: --worker-timeout/--max-worker-failures require "
            "--scheduler process (there are no worker processes to supervise)",
            file=sys.stderr,
        )
        return EXIT_PARSE
    if args.worker_timeout is not None and args.worker_timeout <= 0:
        print("qir-run: error: --worker-timeout must be > 0", file=sys.stderr)
        return EXIT_PARSE
    if args.max_worker_failures is not None and args.max_worker_failures < 1:
        print("qir-run: error: --max-worker-failures must be >= 1", file=sys.stderr)
        return EXIT_PARSE
    chunked = args.chunk_shots is not None or args.min_chunk_shots is not None
    if chunked and args.scheduler not in ("threaded", "process"):
        print(
            "qir-run: error: --chunk-shots/--min-chunk-shots require "
            "--scheduler threaded or process (only those pull from the "
            "shared work queue)",
            file=sys.stderr,
        )
        return EXIT_PARSE
    if args.chunk_shots is not None and args.chunk_shots < 1:
        print("qir-run: error: --chunk-shots must be >= 1", file=sys.stderr)
        return EXIT_PARSE
    if args.min_chunk_shots is not None and args.min_chunk_shots < 1:
        print("qir-run: error: --min-chunk-shots must be >= 1", file=sys.stderr)
        return EXIT_PARSE
    if args.jobs == 1 and args.scheduler in ("threaded", "process"):
        # Symmetric to the rejection above: one worker IS the serial loop,
        # so normalize instead of paying pool startup for nothing.
        print(
            f"qir-run: note: --scheduler {args.scheduler} with --jobs 1 "
            "runs serially (one worker is the serial loop)",
            file=sys.stderr,
        )
        args.scheduler = "serial"
        args.worker_timeout = None  # nothing to supervise in the serial loop
        args.max_worker_failures = None
        args.chunk_shots = None  # the serial loop has no work queue
        args.min_chunk_shots = None

    try:
        source = _read_input(args.input)
    except OSError as error:
        print(f"qir-run: error: {error}", file=sys.stderr)
        return EXIT_PARSE

    try:
        fault_plan = (
            FaultPlan.parse(args.inject_fault, seed=args.fault_seed)
            if args.inject_fault
            else None
        )
    except ValueError as error:
        print(f"qir-run: error: {error}", file=sys.stderr)
        return EXIT_PARSE
    if args.retries < 1:
        print("qir-run: error: --retries must be >= 1", file=sys.stderr)
        return EXIT_PARSE

    noise = NoiseModel(
        depolarizing_1q=args.noise_1q,
        depolarizing_2q=args.noise_2q,
        readout_error=args.noise_readout,
    )
    has_noise = not noise.is_trivial
    runtime = QirRuntime(
        backend=args.backend,
        seed=args.seed,
        max_qubits=args.max_qubits,
        allow_on_the_fly_qubits=not args.no_on_the_fly,
        noise=noise if has_noise else None,
        observer=observer,
        fusion=not args.no_fusion,
        dist_cache=not args.no_dist_cache,
    )

    # The lli workflow, compile-once style: parse -> verify -> optional
    # pipeline happen in the session's compile phase, sharing the observer
    # so one invocation profiles parse -> passes -> runtime end to end (and
    # the --profile table shows the cache.{module,plan}.* counters).
    session = QirSession(
        runtime=runtime, plan_cache_dir=args.plan_cache, ledger_dir=args.ledger
    )
    try:
        plan = session.compile(
            source,
            pipeline=args.opt,
            entry=args.entry,
            verify=not args.no_verify,
        )
    except ValueError as error:
        print(f"qir-run: error: {error}", file=sys.stderr)
        return EXIT_PARSE
    if session.plan_cache is not None:
        # One greppable line for scripts (the CI smoke step relies on it):
        # a warm second process reports 'hit' and skipped the frontend.
        disk = session.plan_cache.stats
        print(
            f"qir-run: plan-cache: {'hit' if disk['hits'] else 'miss'} "
            f"({session.plan_cache.directory})",
            file=sys.stderr,
        )

    resilient = args.retries > 1 or fault_plan is not None or args.fallback

    try:
        if args.shots <= 1 and not resilient:
            result = runtime.execute(plan, entry=args.entry)
            for message in result.messages:
                print(f"INFO\t{message}")
            output = result.render_output()
            if output:
                print(output)
            elif result.bitstring:
                print(f"RESULTS\t{result.bitstring}")
            return EXIT_OK

        retry = RetryPolicy(max_attempts=args.retries, backoff_base=args.backoff_base)
        fallback = (
            FallbackChain.default(args.backend, noisy=has_noise)
            if args.fallback
            else None
        )
        # Through the session, not the runtime: the session mints the
        # run's durable identity (plan key included) and writes the
        # ledger row at run end when --ledger / QIR_LEDGER is set.
        shots_result = session.run_shots(
            plan,
            shots=max(1, args.shots),
            entry=args.entry,
            pipeline=args.opt,
            retry=retry if resilient else None,
            fault_plan=fault_plan,
            fallback=fallback,
            collect_failures=resilient,
            scheduler=args.scheduler,
            jobs=args.jobs,
            worker_timeout=args.worker_timeout,
            max_worker_failures=args.max_worker_failures,
            chunk_shots=args.chunk_shots,
            min_chunk_shots=args.min_chunk_shots,
        )
        if session.ledger is not None and shots_result.run_id:
            # One greppable line (the CI ledger smoke step relies on it).
            print(
                f"qir-run: run-id: {shots_result.run_id} "
                f"({session.ledger.path})",
                file=sys.stderr,
            )
        width = max((len(k) for k in shots_result.counts), default=0)
        for bits, count in sorted(
            shots_result.counts.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"{bits:>{width}}\t{count}")
        report = shots_result.failure_report()
        if report:
            print(report, file=sys.stderr)  # ends with its own TIMING line
        else:
            print(
                render_timing_line(
                    shots_result.wall_seconds, shots_result.successful_shots
                ),
                file=sys.stderr,
            )
        if shots_result.successful_shots > 0:
            return EXIT_OK
        # Every shot failed: classify by the dominant failure kind.
        if all(f.code == TrapError.code for f in shots_result.failed_shots):
            return EXIT_TRAP
        return EXIT_INFRA
    except TrapError as error:
        print(f"qir-run: trap: {error.describe()}", file=sys.stderr)
        return EXIT_TRAP
    except QirRuntimeError as error:
        print(f"qir-run: runtime error: {error.describe()}", file=sys.stderr)
        return EXIT_INFRA
    except Exception as error:  # internal failures are infra, not traps
        print(f"qir-run: internal error: {error}", file=sys.stderr)
        return EXIT_INFRA


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
