"""qir-run: execute a QIR program (the ``lli`` analogue, paper Sec. III-C).

Examples::

    qir-run program.ll                      # one shot, print OUTPUT records
    qir-run program.ll --shots 1000         # histogram over 1000 shots
    qir-run program.ll --backend stabilizer --seed 7
    qir-run program.ll --noise-1q 0.01 --noise-readout 0.02
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.llvmir import parse_assembly, verify_module
from repro.runtime import QirRuntime
from repro.sim import NoiseModel


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-run", description=__doc__.splitlines()[0]
    )
    parser.add_argument("input", help="QIR (.ll) file, or '-' for stdin")
    parser.add_argument("--shots", type=int, default=1,
                        help="number of shots (default 1: print OUTPUT records)")
    parser.add_argument("--backend", choices=["statevector", "stabilizer"],
                        default="statevector")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--entry", default=None, help="entry-point function name")
    parser.add_argument("--max-qubits", type=int, default=26,
                        help="statevector width guard")
    parser.add_argument("--no-on-the-fly", action="store_true",
                        help="disable on-the-fly allocation for static addresses")
    parser.add_argument("--noise-1q", type=float, default=0.0,
                        help="1-qubit depolarizing probability")
    parser.add_argument("--noise-2q", type=float, default=0.0,
                        help="2-qubit depolarizing probability")
    parser.add_argument("--noise-readout", type=float, default=0.0,
                        help="readout flip probability")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the IR verifier")
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        module = parse_assembly(_read_input(args.input))
        if not args.no_verify:
            verify_module(module)
    except (OSError, ValueError) as error:
        print(f"qir-run: error: {error}", file=sys.stderr)
        return 1

    noise = NoiseModel(
        depolarizing_1q=args.noise_1q,
        depolarizing_2q=args.noise_2q,
        readout_error=args.noise_readout,
    )
    runtime = QirRuntime(
        backend=args.backend,
        seed=args.seed,
        max_qubits=args.max_qubits,
        allow_on_the_fly_qubits=not args.no_on_the_fly,
        noise=None if noise.is_trivial else noise,
    )

    try:
        if args.shots <= 1:
            result = runtime.execute(module, entry=args.entry)
            for message in result.messages:
                print(f"INFO\t{message}")
            output = result.render_output()
            if output:
                print(output)
            elif result.bitstring:
                print(f"RESULTS\t{result.bitstring}")
        else:
            shots_result = runtime.run_shots(
                module, shots=args.shots, entry=args.entry
            )
            width = max((len(k) for k in shots_result.counts), default=0)
            for bits, count in sorted(
                shots_result.counts.items(), key=lambda kv: -kv[1]
            ):
                print(f"{bits:>{width}}\t{count}")
    except Exception as error:  # runtime errors are user-facing here
        print(f"qir-run: runtime error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
