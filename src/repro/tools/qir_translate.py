"""qir-translate: convert between OpenQASM 2 / OpenQASM 3 (subset) / QIR.

The format bridge of the paper's Section II/III adoption story.

Examples::

    qir-translate bell.qasm --to qir                     # QASM2 -> QIR
    qir-translate bell.ll --to qasm2                     # QIR   -> QASM2
    qir-translate prog.qasm3 --from qasm3 --to qir --addressing dynamic
    qir-translate bell.ll --to qir --addressing dynamic  # re-address QIR
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.circuit import Circuit
from repro.frontend import export_circuit_text, import_circuit
from repro.llvmir import parse_assembly
from repro.qasm import circuit_to_qasm2, circuit_to_qasm3, parse_qasm2, parse_qasm3

FORMATS = ("qasm2", "qasm3", "qir")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-translate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("input", help="input file, or '-' for stdin")
    parser.add_argument("--from", dest="source_format", choices=FORMATS,
                        default=None,
                        help="input format (default: inferred from content)")
    parser.add_argument("--to", dest="target_format",
                        choices=("qasm2", "qasm3", "qir"), required=True,
                        help="output format")
    parser.add_argument("--addressing", choices=["static", "dynamic"],
                        default="static", help="qubit addressing for QIR output")
    parser.add_argument("--no-record-output", action="store_true",
                        help="omit the output-recording epilogue in QIR output")
    parser.add_argument("-o", "--output", default=None)
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _infer_format(text: str) -> str:
    stripped = text.lstrip()
    if stripped.startswith("OPENQASM 3"):
        return "qasm3"
    if stripped.startswith("OPENQASM"):
        return "qasm2"
    return "qir"


def _to_circuit(text: str, source_format: str) -> Circuit:
    if source_format == "qasm2":
        return parse_qasm2(text)
    if source_format == "qasm3":
        return parse_qasm3(text)
    return import_circuit(parse_assembly(text))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        text = _read_input(args.input)
    except OSError as error:
        print(f"qir-translate: error: {error}", file=sys.stderr)
        return 1

    source_format = args.source_format or _infer_format(text)
    try:
        circuit = _to_circuit(text, source_format)
    except ValueError as error:
        print(
            f"qir-translate: cannot read {source_format} input: {error}",
            file=sys.stderr,
        )
        return 1

    try:
        if args.target_format == "qasm2":
            out = circuit_to_qasm2(circuit)
        elif args.target_format == "qasm3":
            out = circuit_to_qasm3(circuit)
        else:
            out = export_circuit_text(
                circuit,
                addressing=args.addressing,
                record_output=not args.no_record_output,
            )
    except ValueError as error:
        print(f"qir-translate: cannot emit {args.target_format}: {error}",
              file=sys.stderr)
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(out)
    else:
        print(out, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
