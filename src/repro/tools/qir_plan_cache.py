"""qir-plan-cache: inspect and maintain the persistent ExecutionPlan cache.

The disk tier (:mod:`repro.runtime.plancache`) is shared by every process
pointed at the same directory; this tool is the operator's view of it::

    qir-plan-cache list                    # entries in the default dir
    qir-plan-cache list --dir /tmp/plans   # ... or an explicit one
    qir-plan-cache list --verify           # full decode; delete corrupt files
    qir-plan-cache path                    # print the resolved directory
    qir-plan-cache clear                   # delete every cached plan

The directory resolves exactly as at runtime: ``--dir`` wins, then the
``QIR_PLAN_CACHE`` environment variable, then ``~/.cache/qir-repro/plans``.

``list --verify`` runs every file through the full wire-format decode
(:meth:`PlanCache.verify`), so bit-flipped payloads that still parse as
JSON are caught; corrupt files are deleted (use ``--keep-corrupt`` to
only report them).  The decode includes the cached sampling
distribution block (the ``dist`` column): entries whose distribution
fails to decode or does not sum to ~1.0 are corrupt and fail closed to
a recompile, counted under ``cache.plan_disk.corrupt``.

Exit codes: 0 = success (cache clean), 1 = corrupt entries found,
2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime
from typing import List, Optional

from repro.runtime.plancache import PlanCache, default_cache_dir

EXIT_OK = 0
EXIT_CORRUPT = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-plan-cache", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $QIR_PLAN_CACHE or "
             "~/.cache/qir-repro/plans)",
    )
    sub = parser.add_subparsers(dest="command")
    lister = sub.add_parser("list", help="list cached plans, newest first")
    lister.add_argument(
        "--verify", action="store_true",
        help="decode every file end-to-end and delete corrupt ones "
             "(exit 1 if any were corrupt)",
    )
    lister.add_argument(
        "--keep-corrupt", action="store_true",
        help="with --verify: report corrupt files without deleting them",
    )
    sub.add_parser("path", help="print the resolved cache directory")
    sub.add_parser("clear", help="delete every cached plan")
    return parser


def _human_size(size: int) -> str:
    if size >= 1 << 20:
        return f"{size / (1 << 20):.1f}M"
    if size >= 1 << 10:
        return f"{size / (1 << 10):.1f}K"
    return f"{size}B"


def _list(cache: PlanCache, verify: bool = False, delete: bool = True) -> int:
    if verify:
        # Verify first: a corrupt file is deleted (unless --keep-corrupt)
        # *before* the listing, so the table below shows what survives.
        report = cache.verify(delete=delete)
        for path in report.corrupt:
            action = "deleted" if report.deleted else "kept"
            print(f"CORRUPT\t{path}\t({action})", file=sys.stderr)
    entries = cache.entries()
    if not entries:
        print(f"qir-plan-cache: empty ({cache.directory})")
    else:
        print(
            f"{'HASH':<14}{'BACKEND':<14}{'PIPELINE':<12}{'DIST':<6}"
            f"{'SIZE':>8}  WRITTEN"
        )
        for entry in entries:
            written = datetime.fromtimestamp(entry.mtime).strftime(
                "%Y-%m-%d %H:%M:%S"
            )
            dist = "yes" if entry.has_distribution else "-"
            print(
                f"{entry.short_hash:<14}{entry.backend:<14}"
                f"{(entry.pipeline or '-'):<12}{dist:<6}"
                f"{_human_size(entry.size_bytes):>8}"
                f"  {written}"
            )
        print(f"{len(entries)} plan(s) in {cache.directory}")
    if verify:
        state = "deleted" if delete else "kept"
        print(
            f"VERIFY\tok={len(report.ok)} corrupt={len(report.corrupt)}"
            + (f" ({state})" if report.corrupt else "")
        )
        if not report.clean:
            return EXIT_CORRUPT
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE
    if args.command == "path":
        print(args.dir if args.dir else default_cache_dir())
        return EXIT_OK
    cache = PlanCache(args.dir)
    if args.command == "list":
        if args.keep_corrupt and not args.verify:
            print(
                "qir-plan-cache: error: --keep-corrupt requires --verify",
                file=sys.stderr,
            )
            return EXIT_USAGE
        return _list(cache, verify=args.verify, delete=not args.keep_corrupt)
    removed = cache.clear()
    print(f"qir-plan-cache: removed {removed} plan(s) from {cache.directory}")
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
