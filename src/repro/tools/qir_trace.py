"""qir-trace: interpret a recorded span trace.

``qir-run --trace run.jsonl`` (or ``qir-opt --trace``) records where the
time went; this tool answers the follow-up questions::

    qir-trace summary run.jsonl            # spans, hotspots, issues
    qir-trace critical-path run.jsonl      # the chain that bounds wall time
    qir-trace workers run.jsonl            # per-worker busy/gap/imbalance
    qir-trace flame run.jsonl -o run.folded
    qir-trace diff base.jsonl head.jsonl   # what regressed, and where

``flame`` emits collapsed stacks (``frame;frame <self_us>``) for
``flamegraph.pl`` or speedscope.  ``diff`` joins both traces against the
run ledger when one is configured (``--ledger`` or ``$QIR_LEDGER``), so
the per-span deltas come annotated with what each run *was* (shots,
scheduler, wall seconds).  Every subcommand accepts ``-`` to read the
trace from stdin and ``--json`` for machine-readable output.

Exit codes: 0 = success, 1 = nothing to report (e.g. ``workers`` on a
serial trace), 2 = bad invocation or unreadable trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, List, Optional

from repro.obs.analytics import (
    chunk_rows,
    collapsed_stacks,
    critical_path,
    diff_traces,
    render_chunk_rows,
    render_critical_path,
    summarize,
    worker_utilization,
)
from repro.obs.ledger import LedgerError, RunLedger, ledger_dir_from_env
from repro.obs.traceview import Trace, TraceError

EXIT_OK = 0
EXIT_NOT_FOUND = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-trace", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command")

    def trace_arg(p: argparse.ArgumentParser, name: str = "trace") -> None:
        p.add_argument(
            name, help="trace file (JSONL or Chrome JSON), or - for stdin"
        )

    summary = sub.add_parser("summary", help="spans, hotspots, and issues")
    trace_arg(summary)
    summary.add_argument("--hotspots", type=int, default=10, metavar="N")
    summary.add_argument("--json", action="store_true")

    path = sub.add_parser(
        "critical-path", help="the span chain that bounds wall-clock time"
    )
    trace_arg(path)
    path.add_argument("--json", action="store_true")

    workers = sub.add_parser(
        "workers", help="per-worker utilization, gaps, and imbalance"
    )
    trace_arg(workers)
    workers.add_argument(
        "--chunks", action="store_true",
        help="also list per-chunk dispatch rows: shot range, worker, "
             "dispatch attempt, and origin (first pull / steal / requeued)",
    )
    workers.add_argument("--json", action="store_true")

    flame = sub.add_parser(
        "flame", help="collapsed-stack flamegraph export (self-time us)"
    )
    trace_arg(flame)
    flame.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write collapsed stacks here (default: stdout)",
    )

    diff = sub.add_parser(
        "diff", help="explain where two traces spend time differently"
    )
    trace_arg(diff, "base")
    trace_arg(diff, "current")
    diff.add_argument("--limit", type=int, default=20, metavar="N")
    diff.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="annotate run_ids from this ledger (default: $QIR_LEDGER)",
    )
    diff.add_argument("--json", action="store_true")
    return parser


def _load(source: str) -> Trace:
    if source == "-":
        return Trace.from_text(sys.stdin.read())
    return Trace.load(source)


def _summary(args: argparse.Namespace) -> int:
    report = summarize(_load(args.trace), hotspots=args.hotspots)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return EXIT_OK
    print(
        f"spans {report.spans}  instants {report.instants}  "
        f"wall {report.duration_us / 1000.0:.3f} ms"
    )
    if report.run_ids:
        print(f"run_id {' '.join(report.run_ids)}")
    for issue in report.issues:
        print(f"issue: {issue}", file=sys.stderr)
    if report.hotspots:
        print("\nhotspots (self time):")
        for entry in report.hotspots:
            print(
                f"  {entry.name:<40} x{entry.count:<4} "
                f"self {entry.self_us / 1000.0:>10.3f} ms  "
                f"total {entry.total_us / 1000.0:>10.3f} ms"
            )
    if report.critical_path:
        print("\ncritical path:")
        print(render_critical_path(report.critical_path))
    if report.workers:
        print("\nworkers:")
        print(report.workers.render())
    return EXIT_OK


def _critical_path(args: argparse.Namespace) -> int:
    steps = critical_path(_load(args.trace))
    if args.json:
        print(json.dumps([s.to_dict() for s in steps], indent=2))
        return EXIT_OK
    if not steps:
        print("qir-trace: no spans on the critical path", file=sys.stderr)
        return EXIT_NOT_FOUND
    print(render_critical_path(steps))
    return EXIT_OK


def _workers(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    report = worker_utilization(trace)
    if report is None:
        if args.json:
            print("null")
        else:
            print(
                "qir-trace: no process.worker spans (serial trace?)",
                file=sys.stderr,
            )
        return EXIT_NOT_FOUND
    rows = chunk_rows(trace) if args.chunks else None
    if args.json:
        # The default JSON shape is unchanged; --chunks wraps it so the
        # per-chunk rows ride alongside rather than inside the report.
        if rows is None:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            payload = {
                "workers": report.to_dict(),
                "chunks": [row.to_dict() for row in rows],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
        if rows is not None:
            print()
            if rows:
                print(render_chunk_rows(rows))
            else:
                print(
                    "qir-trace: no chunk tags on worker spans "
                    "(pre-work-queue trace?)",
                    file=sys.stderr,
                )
    return EXIT_OK


def _flame(args: argparse.Namespace) -> int:
    lines = collapsed_stacks(_load(args.trace))
    if not lines:
        print("qir-trace: no spans to fold", file=sys.stderr)
        return EXIT_NOT_FOUND
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _ledger_rows(run_ids: List[str], directory: Optional[str]) -> dict:
    """Ledger context for the run_ids a diff touches (best effort)."""
    if not directory or not run_ids:
        return {}
    rows = {}
    try:
        ledger = RunLedger(directory)
        for run_id in run_ids:
            record = ledger.get(run_id)
            if record is not None:
                rows[run_id] = {
                    "scheduler": record.scheduler,
                    "jobs": record.jobs,
                    "shots": record.shots,
                    "wall_seconds": record.wall_seconds,
                    "shots_per_second": record.shots_per_second,
                    "supervision_state": record.supervision_state,
                }
    except LedgerError as error:
        print(f"qir-trace: ledger unavailable: {error}", file=sys.stderr)
    return rows


def _diff(args: argparse.Namespace) -> int:
    result = diff_traces(
        _load(args.base), _load(args.current), limit=args.limit
    )
    directory = args.ledger if args.ledger else ledger_dir_from_env()
    run_ids = [i for i in (result.base_run_id, result.current_run_id) if i]
    ledger_rows = _ledger_rows(run_ids, directory)
    if args.json:
        payload = result.to_dict()
        payload["ledger"] = ledger_rows
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    print(result.render())
    for run_id, row in ledger_rows.items():
        print(
            f"  ledger {run_id}: {row['scheduler']} x{row['jobs']}, "
            f"{row['shots']} shots, {row['wall_seconds']:.3f} s "
            f"({row['shots_per_second']:.1f} shots/s)"
        )
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.command:
        parser.print_help(sys.stderr)
        return EXIT_USAGE
    handlers = {
        "summary": _summary,
        "critical-path": _critical_path,
        "workers": _workers,
        "flame": _flame,
        "diff": _diff,
    }
    try:
        return handlers[args.command](args)
    except TraceError as error:
        print(f"qir-trace: error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
