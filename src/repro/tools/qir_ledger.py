"""qir-ledger: read and maintain the durable run ledger.

Every ``run_shots`` through a ledger-enabled :class:`QirSession` (or
``qir-run --ledger DIR``) appends one row to an SQLite database under
the ledger directory; this tool is the operator's view of it::

    qir-ledger list                        # recent runs, newest first
    qir-ledger --ledger /tmp/runs list     # ... in an explicit directory
    qir-ledger show 01JG...                # one run, every column
    qir-ledger top --by wall_seconds       # slowest runs first
    qir-ledger top --by shots_per_second   # fastest
    qir-ledger flaky                       # runs where infrastructure wobbled
    qir-ledger gc --keep-days 30           # age out old rows

The directory resolves exactly as at runtime: ``--ledger`` wins, then
the ``QIR_LEDGER`` environment variable.  ``list``/``show``/``top``/
``flaky`` accept ``--json`` for machine-readable output.

Exit codes: 0 = success, 1 = not found (unknown run id, empty ledger),
2 = bad invocation or unusable ledger.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from datetime import datetime
from typing import List, Optional

from repro.obs.ledger import (
    LedgerError,
    RunLedger,
    RunRecord,
    SORTABLE_COLUMNS,
    ledger_dir_from_env,
)

EXIT_OK = 0
EXIT_NOT_FOUND = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-ledger", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: $QIR_LEDGER)",
    )
    sub = parser.add_subparsers(dest="command")

    lister = sub.add_parser("list", help="recent runs, newest first")
    lister.add_argument("--limit", type=int, default=20, metavar="N")
    lister.add_argument("--json", action="store_true")

    shower = sub.add_parser("show", help="every column of one run")
    shower.add_argument("run_id", help="full run id (or a unique suffix)")
    shower.add_argument("--json", action="store_true")

    topper = sub.add_parser("top", help="runs ranked by one numeric column")
    topper.add_argument(
        "--by", default="wall_seconds", choices=SORTABLE_COLUMNS,
    )
    topper.add_argument("--limit", type=int, default=10, metavar="N")
    topper.add_argument("--json", action="store_true")

    flaky = sub.add_parser(
        "flaky",
        help="runs with redispatches, worker failures, demotions, or "
             "degraded results",
    )
    flaky.add_argument("--limit", type=int, default=20, metavar="N")
    flaky.add_argument("--json", action="store_true")

    gc = sub.add_parser("gc", help="delete rows older than --keep-days")
    gc.add_argument("--keep-days", type=float, required=True, metavar="N")

    sub.add_parser("path", help="print the resolved ledger database path")
    return parser


def _when(timestamp: float) -> str:
    return datetime.fromtimestamp(timestamp).strftime("%Y-%m-%d %H:%M:%S")


def _table(records: List[RunRecord]) -> str:
    header = (
        "RUN_ID", "FINISHED", "SCHED", "SHOTS", "OK", "FAIL",
        "WALL_S", "SHOTS/S", "STATE",
    )
    rows = [header]
    for r in records:
        state = r.supervision_state or ("error" if r.error_code else "ok")
        if r.error_code:
            state = f"error:{r.error_code}"
        rows.append((
            r.run_id,
            _when(r.finished_at),
            r.scheduler,
            str(r.shots),
            str(r.successful_shots),
            str(r.failed_shots),
            f"{r.wall_seconds:.3f}",
            f"{r.shots_per_second:.1f}",
            state,
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    )


def _emit(records: List[RunRecord], as_json: bool) -> int:
    if as_json:
        print(json.dumps([asdict(r) for r in records], indent=2, sort_keys=True))
        return EXIT_OK
    if not records:
        print("qir-ledger: no runs recorded", file=sys.stderr)
        return EXIT_NOT_FOUND
    print(_table(records))
    return EXIT_OK


def _show(ledger: RunLedger, run_id: str, as_json: bool) -> int:
    record = ledger.get(run_id)
    if record is None:
        # Convenience: accept a unique id suffix (operators paste the
        # short_id from logs); ambiguity is an error, not a guess.
        matches = [
            r for r in ledger.list_runs(limit=1000)
            if r.run_id.endswith(run_id)
        ]
        if len(matches) == 1:
            record = matches[0]
        elif len(matches) > 1:
            print(
                f"qir-ledger: error: {run_id!r} matches "
                f"{len(matches)} runs; use the full id",
                file=sys.stderr,
            )
            return EXIT_USAGE
    if record is None:
        print(f"qir-ledger: no run {run_id!r}", file=sys.stderr)
        return EXIT_NOT_FOUND
    if as_json:
        print(json.dumps(asdict(record), indent=2, sort_keys=True))
        return EXIT_OK
    scalars = {
        k: v for k, v in asdict(record).items()
        if k not in ("demotions", "counters", "environment")
    }
    for key in sorted(scalars):
        print(f"{key}\t{scalars[key]}")
    for entry in record.demotions:
        print(f"demotion\t{entry}")
    for key in sorted(record.counters):
        print(f"counter\t{key}\t{record.counters[key]}")
    for key in sorted(record.environment):
        print(f"environment\t{key}\t{record.environment[key]}")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    directory = args.ledger if args.ledger else ledger_dir_from_env()
    if not directory:
        print(
            "qir-ledger: error: no ledger directory (pass --ledger DIR or "
            "set QIR_LEDGER)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    ledger = RunLedger(directory)
    command = args.command or "list"
    try:
        if command == "path":
            print(ledger.path)
            return EXIT_OK
        if command == "list":
            limit = getattr(args, "limit", 20)
            return _emit(ledger.list_runs(limit=limit), getattr(args, "json", False))
        if command == "show":
            return _show(ledger, args.run_id, args.json)
        if command == "top":
            return _emit(ledger.top(by=args.by, limit=args.limit), args.json)
        if command == "flaky":
            return _emit(ledger.flaky(limit=args.limit), args.json)
        if command == "gc":
            deleted = ledger.gc(args.keep_days)
            print(f"qir-ledger: deleted {deleted} run(s)")
            return EXIT_OK
    except LedgerError as error:
        print(f"qir-ledger: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # `qir-ledger list | head` closes our stdout mid-write; point the
        # descriptor at /dev/null so interpreter shutdown doesn't print a
        # second traceback while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK
    parser.print_help(sys.stderr)  # pragma: no cover - argparse guards this
    return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
