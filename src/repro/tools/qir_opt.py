"""qir-opt: run pass pipelines over a QIR file (the ``opt`` analogue).

Examples::

    qir-opt program.ll -p mem2reg,constprop,dce
    qir-opt program.ll --pipeline unroll          # Example 4's recipe
    qir-opt program.ll --pipeline lower-static    # dynamic -> static (Sec. IV-A)
    qir-opt program.ll --validate base_profile
    qir-opt program.ll --pipeline unroll --profile --trace t.json

"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.llvmir import parse_assembly, print_module, verify_module
from repro.obs.cli import add_observability_args, emit_observability, observer_from_args
from repro.passes import (
    ConstantFoldPass,
    ConstantPropagationPass,
    DeadCodeEliminationPass,
    InlinePass,
    LoopUnrollPass,
    Mem2RegPass,
    PassManager,
    SimplifyCFGPass,
    default_pipeline,
    o1_pipeline,
    unroll_pipeline,
)
from repro.passes.manager import budgets_from_specs
from repro.passes.quantum import (
    DynamicAddressRaisingPass,
    GateCancellationPass,
    QubitCountInferencePass,
    RotationMergingPass,
    StaticAddressLoweringPass,
)
from repro.passes.quantum.address_lowering import lowering_pipeline
from repro.qir import profile_by_name, validate_profile

PASS_REGISTRY: Dict[str, Callable[[], object]] = {
    "mem2reg": Mem2RegPass,
    "constant-fold": ConstantFoldPass,
    "constprop": ConstantPropagationPass,
    "dce": DeadCodeEliminationPass,
    "simplify-cfg": SimplifyCFGPass,
    "loop-unroll": LoopUnrollPass,
    "inline": InlinePass,
    "gate-cancellation": GateCancellationPass,
    "rotation-merging": RotationMergingPass,
    "qubit-count-inference": QubitCountInferencePass,
    "static-address-lowering": StaticAddressLoweringPass,
    "dynamic-address-raising": DynamicAddressRaisingPass,
}

PIPELINES: Dict[str, Callable[[], PassManager]] = {
    "o1": o1_pipeline,
    "unroll": unroll_pipeline,
    "default": default_pipeline,
    "lower-static": lowering_pipeline,
    "lower-static-reuse": lambda: lowering_pipeline(reuse_released=True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qir-opt", description=__doc__.splitlines()[0]
    )
    parser.add_argument("input", help="QIR (.ll) file, or '-' for stdin")
    parser.add_argument("-o", "--output", default=None,
                        help="output file (default stdout)")
    parser.add_argument("-p", "--passes", default=None,
                        help=f"comma-separated pass list; available: "
                             f"{', '.join(sorted(PASS_REGISTRY))}")
    parser.add_argument("--pipeline", choices=sorted(PIPELINES), default=None)
    parser.add_argument("--validate", default=None, metavar="PROFILE",
                        help="after transforming, validate against a profile "
                             "(base_profile / adaptive_profile / full)")
    parser.add_argument("--verify-each", action="store_true",
                        help="verify the module between passes")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass changed flags to stderr")
    parser.add_argument("--budget", action="append", default=[],
                        metavar="PASS=SECONDS",
                        help="per-pass time budget override; busts are "
                             "printed as warnings and show up in --profile "
                             "output (repeatable)")
    add_observability_args(parser)
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    observer = observer_from_args(args)
    try:
        return _run(args, observer)
    finally:
        emit_observability(args, observer)


def _run(args: argparse.Namespace, observer) -> int:
    if args.passes and args.pipeline:
        print("qir-opt: error: choose either --passes or --pipeline",
              file=sys.stderr)
        return 1

    try:
        module = parse_assembly(_read_input(args.input), observer=observer)
        verify_module(module)
    except (OSError, ValueError) as error:
        print(f"qir-opt: error: {error}", file=sys.stderr)
        return 1

    if args.pipeline:
        manager = PIPELINES[args.pipeline]()
        manager.verify_each = args.verify_each
    elif args.passes:
        passes = []
        for name in args.passes.split(","):
            name = name.strip()
            factory = PASS_REGISTRY.get(name)
            if factory is None:
                print(f"qir-opt: error: unknown pass {name!r}", file=sys.stderr)
                return 1
            passes.append(factory())
        manager = PassManager(passes, verify_each=args.verify_each)
    else:
        manager = PassManager([], verify_each=False)

    if args.budget:
        try:
            manager.budgets.update(budgets_from_specs(args.budget))
        except ValueError as error:
            print(f"qir-opt: error: {error}", file=sys.stderr)
            return 1

    try:
        result = manager.run(module, observer=observer)
        verify_module(module)
    except ValueError as error:
        print(f"qir-opt: transform error: {error}", file=sys.stderr)
        return 2

    for bust in result.budget_busts:
        print(f"qir-opt: warning: {bust.render()}", file=sys.stderr)

    if args.stats:
        for pass_name, changed in result.per_pass.items():
            print(f"{pass_name}: {'changed' if changed else 'no change'}",
                  file=sys.stderr)

    if args.validate:
        try:
            profile = profile_by_name(args.validate)
        except KeyError as error:
            print(f"qir-opt: error: {error}", file=sys.stderr)
            return 1
        violations = validate_profile(module, profile)
        for violation in violations:
            print(f"qir-opt: {violation}", file=sys.stderr)
        if violations:
            return 3

    text = print_module(module)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
